//! Cross-validation of the two replan triggers (ISSUE 5).
//!
//! The detector trigger ([`ReplanTrigger::Detector`]) must be at least
//! as reactive as the deviation rule on injected drift — it watches
//! individual links, so one collapsed link shows up before aggregate
//! progress slips — and must never fire on a run that matches its plan:
//! with a frozen network the engine realizes exactly the modeled
//! `T + bits/B` durations, so every CUSUM input is identically zero.

use adaptcomm_core::algorithms::{OpenShop, Scheduler};
use adaptcomm_core::checkpointed::{CheckpointPolicy, RescheduleRule};
use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_directory::DirectoryService;
use adaptcomm_model::cost::LinkEstimate;
use adaptcomm_model::params::NetParams;
use adaptcomm_model::units::{Bandwidth, Bytes, Millis};
use adaptcomm_runtime::channel::FrozenNetwork;
use adaptcomm_runtime::transport::ChannelTransport;
use adaptcomm_runtime::{AdaptSettings, CheckpointedRun, DetectorSettings, ReplanTrigger};
use adaptcomm_sim::{Fault, ScriptedFaults};
use proptest::prelude::*;

fn hetero_net(p: usize) -> NetParams {
    NetParams::from_fn(p, |src, dst| {
        LinkEstimate::new(
            Millis::new(2.0 + (src * p + dst) as f64 * 0.41),
            Bandwidth::from_kbps(500.0 + (src * 29 + dst * 23) as f64 * 11.0),
        )
    })
}

fn sizes(p: usize) -> Vec<Vec<Bytes>> {
    (0..p)
        .map(|s| {
            (0..p)
                .map(|d| {
                    if s == d {
                        Bytes::ZERO
                    } else if (s * 7 + d) % 4 == 0 {
                        Bytes::from_kb(200)
                    } else {
                        Bytes::from_kb(20)
                    }
                })
                .collect()
        })
        .collect()
}

/// Runs the same drift scenario once under `trigger` and reports
/// `(first_replan_checkpoint, reschedules)`.
fn run_drift(p: usize, factor: f64, at: f64, trigger: ReplanTrigger) -> (Option<usize>, usize) {
    let net = hetero_net(p);
    let sz = sizes(p);
    let lists = OpenShop
        .send_order(&CommMatrix::from_model(&net, &sz))
        .order;
    // The same deterministic injection the CLI's `run --drift` uses:
    // a few links lose bandwidth at a fixed modeled instant.
    let script: Vec<Fault> = (0..p.div_ceil(3))
        .map(|k| Fault {
            at: Millis::new(at),
            src: k,
            dst: (k + 1) % p,
            factor,
        })
        .collect();
    let mut evolution = ScriptedFaults::new(net.clone(), script);
    let directory = DirectoryService::new(net);
    let transport = ChannelTransport::new(p);
    let driver = CheckpointedRun::new(
        &directory,
        &sz,
        AdaptSettings {
            policy: CheckpointPolicy::EveryEvent,
            trigger,
            payload_cap: Some(64),
            ..Default::default()
        },
    );
    let report = driver
        .execute(&lists, &mut evolution, &transport)
        .expect("drift without faults must complete");
    (report.first_replan_checkpoint, report.reschedules)
}

#[test]
fn detector_detects_injected_drift_no_later_than_the_deviation_rule() {
    // Defaults on both sides: the detector's SLIP_CUSUM is calibrated
    // against the default 15 % deviation rule. Scenarios mirror the
    // CLI's `run --adapt --drift` injection across P, severity, and
    // drift instant.
    for &(p, factor, at) in &[
        (6, 0.25, 0.0),
        (8, 0.25, 10.0),
        (8, 0.15, 10.0),
        (8, 0.4, 50.0),
        (10, 0.2, 10.0),
    ] {
        let deviation = ReplanTrigger::Deviation(RescheduleRule::default());
        let detector = ReplanTrigger::Detector(DetectorSettings::default());
        let (dev_first, _) = run_drift(p, factor, at, deviation);
        let (det_first, det_replans) = run_drift(p, factor, at, detector);
        let det_first = det_first.expect("the detector must notice this drift");
        assert!(det_replans >= 1);
        // "No later": at the same checkpoint or earlier — and a drift
        // the deviation rule misses entirely counts as earlier.
        if let Some(dev_first) = dev_first {
            assert!(
                det_first <= dev_first,
                "P={p} factor={factor} at={at}: detector first replanned at \
                 checkpoint {det_first}, after the deviation rule's {dev_first}"
            );
        }
    }
}

#[test]
fn detector_catches_a_late_single_link_collapse_the_deviation_rule_misses() {
    // Links that collapse mid-run at P=6 drag only the tail of the
    // exchange: aggregate progress never slips 15 %, so the deviation
    // rule stays silent, but the per-link CUSUM sees the slow transfers
    // themselves.
    let (dev_first, dev_replans) = run_drift(
        6,
        0.2,
        10.0,
        ReplanTrigger::Deviation(RescheduleRule::default()),
    );
    assert_eq!((dev_first, dev_replans), (None, 0));
    let (det_first, det_replans) = run_drift(
        6,
        0.2,
        10.0,
        ReplanTrigger::Detector(DetectorSettings::default()),
    );
    assert!(det_first.is_some() && det_replans >= 1);
}

#[test]
fn detector_is_quiet_on_the_drift_free_version_of_the_same_scenario() {
    let (first, replans) = run_drift(
        6,
        1.0,
        10.0,
        ReplanTrigger::Detector(DetectorSettings::default()),
    );
    assert_eq!(first, None);
    assert_eq!(replans, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Zero false fires: over random heterogeneous instances on a frozen
    /// network, the detector trigger never replans — realized durations
    /// equal their plan exactly, so no evidence can accumulate.
    #[test]
    fn detector_never_replans_a_stationary_run(
        p in 2usize..=8,
        entries in proptest::collection::vec((1.0f64..40.0, 100.0f64..4_000.0, 1u64..150), 64),
    ) {
        let net = NetParams::from_fn(p, |s, d| {
            let (t, b, _) = entries[s * 8 + d];
            LinkEstimate::new(Millis::new(t), Bandwidth::from_kbps(b))
        });
        let sz: Vec<Vec<Bytes>> = (0..p)
            .map(|s| {
                (0..p)
                    .map(|d| {
                        if s == d {
                            Bytes::ZERO
                        } else {
                            Bytes::from_kb(entries[s * 8 + d].2)
                        }
                    })
                    .collect()
            })
            .collect();
        let lists = OpenShop.send_order(&CommMatrix::from_model(&net, &sz)).order;
        let mut evolution = FrozenNetwork(net.clone());
        let directory = DirectoryService::new(net);
        let transport = ChannelTransport::new(p);
        let driver = CheckpointedRun::new(
            &directory,
            &sz,
            AdaptSettings {
                policy: CheckpointPolicy::EveryEvent,
                trigger: ReplanTrigger::Detector(DetectorSettings::default()),
                payload_cap: Some(64),
                ..Default::default()
            },
        );
        let report = driver
            .execute(&lists, &mut evolution, &transport)
            .expect("a frozen network cannot fault");
        prop_assert_eq!(report.reschedules, 0, "stationary run must never replan");
        prop_assert_eq!(report.first_replan_checkpoint, None);
        prop_assert!(report.checkpoints_evaluated > 0);
    }
}

//! Property test: for random communication matrices and every built-in
//! scheduler, the shaped-channel runtime realizes the same completion
//! time as the discrete-event simulator (the ISSUE bound is 5%; the
//! virtual-time fabric is designed to be bit-compatible, so the observed
//! error is ~1e-6).

use adaptcomm_core::algorithms::all_schedulers;
use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_model::cost::LinkEstimate;
use adaptcomm_model::params::NetParams;
use adaptcomm_model::units::{Bandwidth, Bytes, Millis};
use adaptcomm_runtime::channel::{run_shaped, CheckpointAction, FrozenNetwork, ShapedConfig};
use adaptcomm_runtime::transport::{expected_receipts, ChannelTransport, Transport};
use adaptcomm_sim::run_static;
use proptest::prelude::*;

/// Random instance: network and message sizes for `2 <= P <= 12`.
#[derive(Debug, Clone)]
struct Instance {
    net: NetParams,
    sizes: Vec<Vec<Bytes>>,
}

fn instance(max_p: usize) -> impl Strategy<Value = Instance> {
    (2..=max_p).prop_flat_map(|p| {
        let net_entries = proptest::collection::vec((1.0f64..50.0, 100.0f64..5_000.0), p * p);
        let size_entries = proptest::collection::vec(1u64..200, p * p);
        (net_entries, size_entries).prop_map(move |(nets, szs)| {
            let net = NetParams::from_fn(p, |s, d| {
                let (t, b) = nets[s * p + d];
                LinkEstimate::new(Millis::new(t), Bandwidth::from_kbps(b))
            });
            let sizes: Vec<Vec<Bytes>> = (0..p)
                .map(|s| {
                    (0..p)
                        .map(|d| {
                            if s == d {
                                Bytes::ZERO
                            } else {
                                Bytes::from_kb(szs[s * p + d])
                            }
                        })
                        .collect()
                })
                .collect();
            Instance { net, sizes }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every scheduler's order, executed over real threads and shaped
    /// channels, completes within 5% of the simulator's prediction, and
    /// every payload physically arrives.
    #[test]
    fn shaped_runtime_tracks_the_simulator_for_every_scheduler(inst in instance(12)) {
        let p = inst.net.len();
        let matrix = CommMatrix::from_model(&inst.net, &inst.sizes);
        // Cap physical copies: the property is about timing, not memory.
        let config = ShapedConfig {
            payload_cap: Some(256),
            ..Default::default()
        };
        for scheduler in all_schedulers() {
            let order = scheduler.send_order(&matrix);
            let sim = run_static(&order, &inst.net, &inst.sizes);
            let transport = ChannelTransport::new(p);
            let mut evo = FrozenNetwork(inst.net.clone());
            let out = run_shaped(
                &order.order,
                &inst.sizes,
                &mut evo,
                &transport,
                config,
                |_| CheckpointAction::Continue,
            )
            .expect("a frozen network cannot fault");

            prop_assert_eq!(out.records.len(), sim.records.len());
            let rel = (out.makespan.as_ms() - sim.makespan.as_ms()).abs()
                / sim.makespan.as_ms().max(1e-12);
            prop_assert!(
                rel < 0.05,
                "{}: shaped {} vs sim {} ({}% off)",
                scheduler.name(),
                out.makespan.as_ms(),
                sim.makespan.as_ms(),
                rel * 100.0
            );
            prop_assert_eq!(
                transport.receipts(),
                expected_receipts(&inst.sizes, config.payload_cap),
                "{}: physical delivery mismatch",
                scheduler.name()
            );
        }
    }
}

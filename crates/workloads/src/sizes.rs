//! Per-pair message-size matrices.

use adaptcomm_model::units::Bytes;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A `P×P` matrix of message sizes for a total exchange. The diagonal is
/// always zero (no self-messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeMatrix {
    p: usize,
    sizes: Vec<Bytes>,
}

impl SizeMatrix {
    /// Builds from a function of `(src, dst)`; the diagonal is forced to
    /// zero.
    pub fn from_fn(p: usize, mut f: impl FnMut(usize, usize) -> Bytes) -> Self {
        assert!(p >= 1, "need at least one processor");
        let mut sizes = Vec::with_capacity(p * p);
        for s in 0..p {
            for d in 0..p {
                sizes.push(if s == d { Bytes::ZERO } else { f(s, d) });
            }
        }
        SizeMatrix { p, sizes }
    }

    /// Every message has the same size (Figures 9 and 10).
    pub fn uniform(p: usize, size: Bytes) -> Self {
        Self::from_fn(p, |_, _| size)
    }

    /// Every message independently 1 kB or 1 MB with equal probability
    /// (Figure 11); deterministic in `seed`.
    pub fn mixed(p: usize, seed: u64) -> Self {
        Self::mixed_of(p, Bytes::KB, Bytes::MB, 0.5, seed)
    }

    /// Generalized mix: each message is `large` with probability
    /// `large_fraction`, else `small`.
    pub fn mixed_of(p: usize, small: Bytes, large: Bytes, large_fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&large_fraction),
            "fraction must be in [0,1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        Self::from_fn(p, |_, _| {
            if rng.random_range(0.0..1.0) < large_fraction {
                large
            } else {
                small
            }
        })
    }

    /// The Figure-12 multimedia scenario: the first
    /// `ceil(server_fraction · P)` processors are servers. Server→client
    /// messages are `large`; everything else (server↔server,
    /// client↔client, client→server) is `small`. "Data is also assumed to
    /// be partitioned over the servers, so that the load on the servers
    /// is balanced" — uniform large sizes model that balance.
    pub fn servers(p: usize, server_fraction: f64, small: Bytes, large: Bytes) -> Self {
        assert!(
            (0.0..=1.0).contains(&server_fraction),
            "fraction must be in [0,1]"
        );
        let n_servers = ((p as f64) * server_fraction).ceil() as usize;
        Self::from_fn(p, |src, dst| {
            if src < n_servers && dst >= n_servers {
                large
            } else {
                small
            }
        })
    }

    /// Number of server processors in a [`SizeMatrix::servers`] workload.
    pub fn server_count(p: usize, server_fraction: f64) -> usize {
        ((p as f64) * server_fraction).ceil() as usize
    }

    /// The §4.1 motivating example: an `n×n` matrix of `element_bytes`
    /// elements distributed by rows must be transposed to a distribution
    /// by columns. Processor `i` holds rows `[i·n/P, (i+1)·n/P)` and must
    /// ship to processor `j` the sub-block that lands in `j`'s columns —
    /// `rows(i) × cols(j)` elements. Remainder rows/columns go to the
    /// last processors, so messages are slightly non-uniform when
    /// `P ∤ n`.
    pub fn transpose(p: usize, n: usize, element_bytes: u64) -> Self {
        assert!(n >= p, "matrix must have at least one row per processor");
        let share = |k: usize| -> u64 {
            // Rows/cols owned by processor k under block distribution.
            let base = n / p;
            let extra = n % p;
            (base + usize::from(k < extra)) as u64
        };
        Self::from_fn(p, |src, dst| {
            Bytes::new(share(src) * share(dst) * element_bytes)
        })
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.p
    }

    /// Size of the message from `src` to `dst`.
    pub fn get(&self, src: usize, dst: usize) -> Bytes {
        self.sizes[src * self.p + dst]
    }

    /// Row-major nested representation (what
    /// [`adaptcomm_core::CommMatrix::from_model`] consumes).
    pub fn to_rows(&self) -> Vec<Vec<Bytes>> {
        (0..self.p)
            .map(|s| (0..self.p).map(|d| self.get(s, d)).collect())
            .collect()
    }

    /// Total bytes moved by the exchange.
    pub fn total_bytes(&self) -> u64 {
        self.sizes.iter().map(|b| b.as_u64()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sizes() {
        let m = SizeMatrix::uniform(4, Bytes::KB);
        assert_eq!(m.get(0, 1), Bytes::KB);
        assert_eq!(m.get(2, 2), Bytes::ZERO);
        assert_eq!(m.total_bytes(), 12 * 1_000);
    }

    #[test]
    fn mixed_contains_both_sizes_and_is_reproducible() {
        let a = SizeMatrix::mixed(10, 5);
        let b = SizeMatrix::mixed(10, 5);
        assert_eq!(a, b);
        let mut small = 0;
        let mut large = 0;
        for s in 0..10 {
            for d in 0..10 {
                if s == d {
                    continue;
                }
                match a.get(s, d) {
                    Bytes(1_000) => small += 1,
                    Bytes(1_000_000) => large += 1,
                    other => panic!("unexpected size {other}"),
                }
            }
        }
        assert!(small > 10 && large > 10, "mix should be roughly balanced");
    }

    #[test]
    fn server_workload_shape() {
        let m = SizeMatrix::servers(10, 0.2, Bytes::KB, Bytes::MB);
        assert_eq!(SizeMatrix::server_count(10, 0.2), 2);
        // Server → client: large.
        assert_eq!(m.get(0, 5), Bytes::MB);
        assert_eq!(m.get(1, 9), Bytes::MB);
        // Server ↔ server: small.
        assert_eq!(m.get(0, 1), Bytes::KB);
        // Client → anywhere: small.
        assert_eq!(m.get(5, 0), Bytes::KB);
        assert_eq!(m.get(5, 6), Bytes::KB);
    }

    #[test]
    fn server_fraction_rounds_up() {
        assert_eq!(SizeMatrix::server_count(7, 0.2), 2);
        assert_eq!(SizeMatrix::server_count(5, 0.2), 1);
    }

    #[test]
    fn transpose_even_division() {
        // 8x8 matrix of 8-byte doubles over 4 processors: each pair block
        // is 2x2 elements = 32 bytes.
        let m = SizeMatrix::transpose(4, 8, 8);
        for s in 0..4 {
            for d in 0..4 {
                if s != d {
                    assert_eq!(m.get(s, d), Bytes::new(32));
                }
            }
        }
    }

    #[test]
    fn transpose_with_remainder() {
        // 7 rows over 3 processors: shares 3, 2, 2.
        let m = SizeMatrix::transpose(3, 7, 1);
        assert_eq!(m.get(0, 1), Bytes::new(6)); // 3 × 2
        assert_eq!(m.get(1, 2), Bytes::new(4)); // 2 × 2
        assert_eq!(m.get(1, 0), Bytes::new(6)); // 2 × 3
    }

    #[test]
    fn mixed_of_extreme_fractions() {
        let all_small = SizeMatrix::mixed_of(5, Bytes::KB, Bytes::MB, 0.0, 1);
        let all_large = SizeMatrix::mixed_of(5, Bytes::KB, Bytes::MB, 1.0, 1);
        for s in 0..5 {
            for d in 0..5 {
                if s != d {
                    assert_eq!(all_small.get(s, d), Bytes::KB);
                    assert_eq!(all_large.get(s, d), Bytes::MB);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn transpose_too_small_rejected() {
        let _ = SizeMatrix::transpose(8, 4, 1);
    }
}

//! Reproducible experiment scenarios: workload × network → [`CommMatrix`].

use crate::sizes::SizeMatrix;
use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_model::generator::{GeneratorConfig, NetGenerator};
use adaptcomm_model::params::NetParams;
use adaptcomm_model::units::Bytes;

/// The paper's evaluation scenarios plus the §4.1 transpose workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario {
    /// Figure 9: uniform 1 kB messages.
    Small,
    /// Figure 10: uniform 1 MB messages.
    Large,
    /// Figure 11: random 1 kB / 1 MB mix.
    Mixed,
    /// Figure 12: 20 % servers sending 1 MB to clients, 1 kB elsewhere.
    Servers,
    /// Matrix transpose of an `n×n` double-precision matrix.
    Transpose {
        /// Matrix dimension.
        n: usize,
    },
}

impl Scenario {
    /// All figure scenarios in paper order.
    pub const FIGURES: [Scenario; 4] = [
        Scenario::Small,
        Scenario::Large,
        Scenario::Mixed,
        Scenario::Servers,
    ];

    /// Identifier used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Small => "fig09-small-1kB",
            Scenario::Large => "fig10-large-1MB",
            Scenario::Mixed => "fig11-mixed",
            Scenario::Servers => "fig12-servers",
            Scenario::Transpose { .. } => "transpose",
        }
    }

    /// The message-size matrix for `p` processors.
    pub fn sizes(&self, p: usize, seed: u64) -> SizeMatrix {
        match *self {
            Scenario::Small => SizeMatrix::uniform(p, Bytes::KB),
            Scenario::Large => SizeMatrix::uniform(p, Bytes::MB),
            Scenario::Mixed => SizeMatrix::mixed(p, seed),
            Scenario::Servers => SizeMatrix::servers(p, 0.20, Bytes::KB, Bytes::MB),
            Scenario::Transpose { n } => SizeMatrix::transpose(p, n, 8),
        }
    }

    /// Builds a full instance: GUSTO-guided random network + workload.
    /// `seed` controls both the network draw and any randomness in the
    /// workload, so an instance is fully reproducible from
    /// `(scenario, p, seed)`.
    pub fn instance(&self, p: usize, seed: u64) -> ScenarioInstance {
        self.instance_with(p, seed, GeneratorConfig::default())
    }

    /// Like [`Scenario::instance`] with a custom network generator
    /// configuration.
    pub fn instance_with(&self, p: usize, seed: u64, cfg: GeneratorConfig) -> ScenarioInstance {
        let mut gen = NetGenerator::new(cfg, seed);
        let network = gen.generate(p);
        // Decorrelate workload randomness from the network draw.
        let sizes = self.sizes(p, seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let matrix = CommMatrix::from_model(&network, &sizes.to_rows());
        ScenarioInstance {
            scenario: *self,
            seed,
            network,
            sizes,
            matrix,
        }
    }
}

/// A fully materialized experiment instance.
#[derive(Debug, Clone)]
pub struct ScenarioInstance {
    /// Which scenario generated this instance.
    pub scenario: Scenario,
    /// The seed it was generated from.
    pub seed: u64,
    /// The random network.
    pub network: NetParams,
    /// The per-pair message sizes.
    pub sizes: SizeMatrix,
    /// The resulting communication matrix handed to the schedulers.
    pub matrix: CommMatrix,
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptcomm_core::algorithms::all_schedulers;

    #[test]
    fn instances_are_reproducible() {
        for sc in Scenario::FIGURES {
            let a = sc.instance(10, 7);
            let b = sc.instance(10, 7);
            assert_eq!(a.matrix, b.matrix, "{} not reproducible", sc.name());
            let c = sc.instance(10, 8);
            assert_ne!(a.matrix, c.matrix, "{} ignores the seed", sc.name());
        }
    }

    #[test]
    fn small_and_large_differ_by_transfer_time_only() {
        let small = Scenario::Small.instance(6, 3);
        let large = Scenario::Large.instance(6, 3);
        // Same network (same seed): large costs strictly dominate.
        assert_eq!(small.network, large.network);
        for (s, d, c) in small.matrix.events() {
            assert!(large.matrix.cost(s, d).as_ms() > c.as_ms());
        }
    }

    #[test]
    fn servers_instance_has_heavy_rows() {
        let inst = Scenario::Servers.instance(10, 1);
        // Rows 0..2 (servers) carry far more send time than client rows.
        let server_send = inst.matrix.send_total(0).as_ms();
        let client_send = inst.matrix.send_total(9).as_ms();
        assert!(
            server_send > 10.0 * client_send,
            "server row {server_send} should dwarf client row {client_send}"
        );
    }

    #[test]
    fn transpose_instance_is_near_uniform() {
        let inst = Scenario::Transpose { n: 64 }.instance(8, 2);
        assert_eq!(inst.sizes.get(0, 1), Bytes::new(8 * 8 * 8));
        assert!(inst.matrix.lower_bound().as_ms() > 0.0);
    }

    #[test]
    fn schedulers_run_on_every_scenario() {
        for sc in Scenario::FIGURES {
            let inst = sc.instance(8, 11);
            for s in all_schedulers() {
                let sched = s.schedule(&inst.matrix);
                sched
                    .validate()
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", s.name(), sc.name()));
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Scenario::Small.name(), "fig09-small-1kB");
        assert_eq!(Scenario::Servers.name(), "fig12-servers");
        assert_eq!(Scenario::Transpose { n: 4 }.name(), "transpose");
    }
}

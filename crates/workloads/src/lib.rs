//! Workload generators for the HPDC '98 evaluation scenarios.
//!
//! The paper's §5 evaluates the schedulers on four total-exchange
//! workloads over GUSTO-guided random networks:
//!
//! * **Figure 9** — every message is 1 kB;
//! * **Figure 10** — every message is 1 MB;
//! * **Figure 11** — "a random mix of these two sizes";
//! * **Figure 12** — 20 % of the processors are servers that send large
//!   messages to their clients; server↔server and client↔client
//!   messages are small (the multimedia scenario).
//!
//! [`sizes`] generates per-pair message-size matrices for these (plus a
//! matrix-transpose workload from the paper's motivating example in
//! §4.1), and [`scenario`] packages workload + network generation into
//! reproducible experiment instances.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod scenario;
pub mod sizes;

pub use scenario::{Scenario, ScenarioInstance};
pub use sizes::SizeMatrix;

//! Strongly-typed units used throughout the model.
//!
//! The paper quotes start-up costs in **milliseconds** and bandwidths in
//! **kbit/s** (Tables 1 and 2), and evaluates message sizes of 1 kB and
//! 1 MB. We keep those units at the API boundary and convert explicitly,
//! so a bandwidth can never be silently mistaken for a latency.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A duration in milliseconds.
///
/// All schedule times, start-up costs and completion times in this
/// workspace are expressed in `Millis`. The inner value is non-negative
/// by convention; constructors of model types enforce it.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Millis(pub f64);

impl Millis {
    /// The zero duration.
    pub const ZERO: Millis = Millis(0.0);

    /// Creates a duration from a number of milliseconds.
    #[inline]
    pub fn new(ms: f64) -> Self {
        Millis(ms)
    }

    /// Creates a duration from seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        Millis(s * 1_000.0)
    }

    /// The duration in milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0
    }

    /// The duration in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Returns the larger of two durations.
    #[inline]
    pub fn max(self, other: Millis) -> Millis {
        Millis(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    #[inline]
    pub fn min(self, other: Millis) -> Millis {
        Millis(self.0.min(other.0))
    }

    /// True if the duration is finite (not NaN or infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Add for Millis {
    type Output = Millis;
    #[inline]
    fn add(self, rhs: Millis) -> Millis {
        Millis(self.0 + rhs.0)
    }
}

impl AddAssign for Millis {
    #[inline]
    fn add_assign(&mut self, rhs: Millis) {
        self.0 += rhs.0;
    }
}

impl Sub for Millis {
    type Output = Millis;
    #[inline]
    fn sub(self, rhs: Millis) -> Millis {
        Millis(self.0 - rhs.0)
    }
}

impl Mul<f64> for Millis {
    type Output = Millis;
    #[inline]
    fn mul(self, rhs: f64) -> Millis {
        Millis(self.0 * rhs)
    }
}

impl Div<f64> for Millis {
    type Output = Millis;
    #[inline]
    fn div(self, rhs: f64) -> Millis {
        Millis(self.0 / rhs)
    }
}

impl Div<Millis> for Millis {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Millis) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Millis {
    fn sum<I: Iterator<Item = Millis>>(iter: I) -> Millis {
        Millis(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for Millis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000.0 {
            write!(f, "{:.3} s", self.as_secs())
        } else {
            write!(f, "{:.3} ms", self.0)
        }
    }
}

/// A message size in bytes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes (a pure start-up-cost message).
    pub const ZERO: Bytes = Bytes(0);

    /// One kilobyte (10^3 bytes, as in the paper's "1kB" workload).
    pub const KB: Bytes = Bytes(1_000);

    /// One megabyte (10^6 bytes, as in the paper's "1MB" workload).
    pub const MB: Bytes = Bytes(1_000_000);

    /// Creates a size from a raw byte count.
    #[inline]
    pub fn new(b: u64) -> Self {
        Bytes(b)
    }

    /// Creates a size from kilobytes (10^3 bytes).
    #[inline]
    pub fn from_kb(kb: u64) -> Self {
        Bytes(kb * 1_000)
    }

    /// Creates a size from megabytes (10^6 bytes).
    #[inline]
    pub fn from_mb(mb: u64) -> Self {
        Bytes(mb * 1_000_000)
    }

    /// The raw byte count.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The size in bits.
    #[inline]
    pub fn bits(self) -> u64 {
        self.0 * 8
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000_000) {
            write!(f, "{} MB", self.0 / 1_000_000)
        } else if self.0 >= 1_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{} kB", self.0 / 1_000)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// A data transmission rate in kilobits per second, the unit used by the
/// GUSTO directory service (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth from kbit/s. Panics if non-positive or not finite:
    /// a zero-bandwidth link would make transfer times infinite and every
    /// downstream algorithm meaningless.
    #[inline]
    pub fn from_kbps(kbps: f64) -> Self {
        assert!(
            kbps.is_finite() && kbps > 0.0,
            "bandwidth must be positive and finite, got {kbps}"
        );
        Bandwidth(kbps)
    }

    /// Creates a bandwidth from Mbit/s.
    #[inline]
    pub fn from_mbps(mbps: f64) -> Self {
        Self::from_kbps(mbps * 1_000.0)
    }

    /// The bandwidth in kbit/s.
    #[inline]
    pub fn as_kbps(self) -> f64 {
        self.0
    }

    /// The bandwidth in Mbit/s.
    #[inline]
    pub fn as_mbps(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Time to push `m` bytes through this link at full rate, excluding
    /// start-up cost: `8·m / B` milliseconds for `B` in kbit/s.
    ///
    /// (1 kbit/s moves 1 bit per millisecond, so `m` bytes = `8m` bits
    /// take `8m / B_kbps` milliseconds.)
    #[inline]
    pub fn transfer_time(self, m: Bytes) -> Millis {
        Millis(m.bits() as f64 / self.0)
    }

    /// Scales the bandwidth by a positive factor (used by the load and
    /// variation models). Panics if the factor is non-positive.
    #[inline]
    pub fn scaled(self, factor: f64) -> Bandwidth {
        Bandwidth::from_kbps(self.0 * factor)
    }

    /// Divides the bandwidth among `n` simultaneous flows sharing the
    /// link, per the paper's directory-service semantics ("the bandwidth
    /// of the common link is divided among these communicating pairs").
    #[inline]
    pub fn shared(self, n: usize) -> Bandwidth {
        assert!(n > 0, "cannot share a link among zero flows");
        Bandwidth::from_kbps(self.0 / n as f64)
    }

    /// Returns the smaller of two bandwidths (the bottleneck of a path).
    #[inline]
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000.0 {
            write!(f, "{:.2} Mbit/s", self.as_mbps())
        } else {
            write!(f, "{:.1} kbit/s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millis_arithmetic() {
        let a = Millis::new(10.0);
        let b = Millis::new(2.5);
        assert_eq!((a + b).as_ms(), 12.5);
        assert_eq!((a - b).as_ms(), 7.5);
        assert_eq!((a * 2.0).as_ms(), 20.0);
        assert_eq!((a / 4.0).as_ms(), 2.5);
        assert_eq!(a / b, 4.0);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn millis_sum_and_display() {
        let total: Millis = [Millis::new(1.0), Millis::new(2.0), Millis::new(3.0)]
            .into_iter()
            .sum();
        assert_eq!(total.as_ms(), 6.0);
        assert_eq!(format!("{}", Millis::new(12.0)), "12.000 ms");
        assert_eq!(format!("{}", Millis::new(1_500.0)), "1.500 s");
    }

    #[test]
    fn millis_from_secs_roundtrip() {
        let m = Millis::from_secs(2.0);
        assert_eq!(m.as_ms(), 2_000.0);
        assert_eq!(m.as_secs(), 2.0);
    }

    #[test]
    fn bytes_constructors() {
        assert_eq!(Bytes::KB.as_u64(), 1_000);
        assert_eq!(Bytes::MB.as_u64(), 1_000_000);
        assert_eq!(Bytes::from_kb(3).as_u64(), 3_000);
        assert_eq!(Bytes::from_mb(2).as_u64(), 2_000_000);
        assert_eq!(Bytes::new(42).bits(), 336);
        assert_eq!(Bytes::new(1) + Bytes::new(2), Bytes::new(3));
    }

    #[test]
    fn bytes_display() {
        assert_eq!(format!("{}", Bytes::KB), "1 kB");
        assert_eq!(format!("{}", Bytes::MB), "1 MB");
        assert_eq!(format!("{}", Bytes::new(999)), "999 B");
        assert_eq!(format!("{}", Bytes::new(1_500)), "1500 B");
    }

    #[test]
    fn bandwidth_transfer_time_matches_hand_calculation() {
        // 1 MB over 512 kbit/s: 8e6 bits / 512 kbit/s = 15625 ms.
        let t = Bandwidth::from_kbps(512.0).transfer_time(Bytes::MB);
        assert!((t.as_ms() - 15_625.0).abs() < 1e-9);
        // 1 kB over 1000 kbit/s: 8000 bits / 1000 = 8 ms.
        let t = Bandwidth::from_kbps(1_000.0).transfer_time(Bytes::KB);
        assert!((t.as_ms() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_sharing_divides_rate() {
        let b = Bandwidth::from_kbps(900.0);
        assert_eq!(b.shared(3).as_kbps(), 300.0);
        assert_eq!(b.shared(1).as_kbps(), 900.0);
    }

    #[test]
    fn bandwidth_min_and_scale() {
        let a = Bandwidth::from_kbps(100.0);
        let b = Bandwidth::from_kbps(250.0);
        assert_eq!(a.min(b).as_kbps(), 100.0);
        assert_eq!(b.scaled(0.5).as_kbps(), 125.0);
        assert_eq!(Bandwidth::from_mbps(2.0).as_kbps(), 2_000.0);
        assert_eq!(Bandwidth::from_kbps(2_000.0).as_mbps(), 2.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::from_kbps(0.0);
    }

    #[test]
    #[should_panic(expected = "cannot share")]
    fn sharing_among_zero_flows_rejected() {
        let _ = Bandwidth::from_kbps(10.0).shared(0);
    }
}

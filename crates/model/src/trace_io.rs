//! Recording and replaying network-performance traces.
//!
//! A directory-service session — the sequence of `(time, NetParams)`
//! snapshots an application observed — fully determines a scheduling
//! experiment. [`TraceRecorder`] serializes such a session to a plain
//! text format; [`RecordedTrace`] replays it, interpolating
//! zero-order-hold between snapshots. This is what makes a "it was slow
//! on Tuesday" report reproducible: capture the trace once, replay it
//! against any scheduler version forever.
//!
//! Format (line-oriented, `#` comments):
//!
//! ```text
//! snapshot <t_ms> <P>
//! <src> <dst> <startup_ms> <bandwidth_kbps>
//! ...one line per ordered pair...
//! ```

use crate::cost::LinkEstimate;
use crate::params::NetParams;
use crate::units::{Bandwidth, Millis};
use std::fmt::Write as _;

/// Records a sequence of time-stamped snapshots.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    snapshots: Vec<(f64, NetParams)>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a snapshot observed at `t`. Times must be non-decreasing.
    pub fn record(&mut self, t: Millis, params: NetParams) -> &mut Self {
        if let Some(&(last, _)) = self.snapshots.last() {
            assert!(
                t.as_ms() >= last,
                "snapshots must be recorded in time order"
            );
            assert_eq!(
                self.snapshots[0].1.len(),
                params.len(),
                "snapshot covers a different system"
            );
        }
        self.snapshots.push((t.as_ms(), params));
        self
    }

    /// Number of recorded snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Serializes the trace.
    pub fn serialize(&self) -> String {
        let mut out = String::from("# adaptcomm network trace v1\n");
        for (t, params) in &self.snapshots {
            let p = params.len();
            let _ = writeln!(out, "snapshot {t} {p}");
            for (src, dst, e) in params.pairs() {
                let _ = writeln!(
                    out,
                    "{src} {dst} {} {}",
                    e.startup.as_ms(),
                    e.bandwidth.as_kbps()
                );
            }
        }
        out
    }

    /// Finishes recording, producing a replayable trace.
    pub fn finish(self) -> RecordedTrace {
        assert!(!self.snapshots.is_empty(), "cannot replay an empty trace");
        RecordedTrace {
            snapshots: self.snapshots,
        }
    }
}

/// A replayable recorded trace (zero-order hold between snapshots).
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrace {
    snapshots: Vec<(f64, NetParams)>,
}

impl RecordedTrace {
    /// Parses the [`TraceRecorder::serialize`] format.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut snapshots: Vec<(f64, NetParams)> = Vec::new();
        let mut lines = text.lines().enumerate().filter(|(_, l)| {
            let l = l.trim();
            !l.is_empty() && !l.starts_with('#')
        });
        while let Some((lineno, line)) = lines.next() {
            let mut parts = line.split_whitespace();
            if parts.next() != Some("snapshot") {
                return Err(format!("line {}: expected `snapshot`", lineno + 1));
            }
            let t: f64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("line {}: bad time", lineno + 1))?;
            let p: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("line {}: bad size", lineno + 1))?;
            let mut params = NetParams::uniform(p, Millis::ZERO, Bandwidth::from_kbps(1e12));
            for _ in 0..p * (p - 1) {
                let (lineno, line) = lines
                    .next()
                    .ok_or_else(|| "trace truncated mid-snapshot".to_string())?;
                let fields: Vec<&str> = line.split_whitespace().collect();
                if fields.len() != 4 {
                    return Err(format!("line {}: expected 4 fields", lineno + 1));
                }
                let parse = |s: &str| {
                    s.parse::<f64>()
                        .map_err(|_| format!("line {}: bad number", lineno + 1))
                };
                let src = fields[0]
                    .parse::<usize>()
                    .map_err(|_| format!("line {}: bad src", lineno + 1))?;
                let dst = fields[1]
                    .parse::<usize>()
                    .map_err(|_| format!("line {}: bad dst", lineno + 1))?;
                if src >= p || dst >= p || src == dst {
                    return Err(format!("line {}: pair ({src},{dst}) invalid", lineno + 1));
                }
                params.set_estimate(
                    src,
                    dst,
                    LinkEstimate::new(
                        Millis::new(parse(fields[2])?),
                        Bandwidth::from_kbps(parse(fields[3])?),
                    ),
                );
            }
            if let Some(&(last, _)) = snapshots.last() {
                if t < last {
                    return Err("snapshots out of time order".to_string());
                }
            }
            snapshots.push((t, params));
        }
        if snapshots.is_empty() {
            return Err("trace contains no snapshots".to_string());
        }
        Ok(RecordedTrace { snapshots })
    }

    /// Number of processors covered.
    pub fn processors(&self) -> usize {
        self.snapshots[0].1.len()
    }

    /// The first snapshot (scheduling-time estimates).
    pub fn initial(&self) -> &NetParams {
        &self.snapshots[0].1
    }

    /// The network state at time `t`: the latest snapshot at or before
    /// `t` (the first one for times before recording started).
    pub fn state_at(&self, t: Millis) -> &NetParams {
        let mut current = &self.snapshots[0].1;
        for (st, params) in &self.snapshots {
            if *st <= t.as_ms() + 1e-12 {
                current = params;
            } else {
                break;
            }
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Bandwidth;

    fn snap(bw: f64) -> NetParams {
        NetParams::uniform(3, Millis::new(7.5), Bandwidth::from_kbps(bw))
    }

    /// Off-diagonal equality: the diagonal is a never-consulted sentinel
    /// (local copies are free) and is not serialized.
    fn same(a: &NetParams, b: &NetParams) -> bool {
        a.len() == b.len() && a.pairs().all(|(s, d, e)| b.estimate(s, d) == e)
    }

    #[test]
    fn record_serialize_parse_round_trip() {
        let mut rec = TraceRecorder::new();
        rec.record(Millis::ZERO, snap(100.0))
            .record(Millis::new(1_000.0), snap(250.0))
            .record(Millis::new(5_000.0), snap(80.0));
        assert_eq!(rec.len(), 3);
        let text = rec.serialize();
        let trace = RecordedTrace::parse(&text).unwrap();
        assert_eq!(trace.processors(), 3);
        assert!(same(trace.initial(), &snap(100.0)));
        assert!(same(trace.state_at(Millis::new(999.0)), &snap(100.0)));
        assert!(same(trace.state_at(Millis::new(1_000.0)), &snap(250.0)));
        assert!(same(trace.state_at(Millis::new(4_999.9)), &snap(250.0)));
        assert!(same(trace.state_at(Millis::new(1e9)), &snap(80.0)));
    }

    #[test]
    fn zero_order_hold_before_first_snapshot() {
        let trace = TraceRecorder::new()
            .record(Millis::new(500.0), snap(42.0))
            .clone()
            .finish();
        assert!(same(trace.state_at(Millis::ZERO), &snap(42.0)));
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert!(RecordedTrace::parse("")
            .unwrap_err()
            .contains("no snapshots"));
        assert!(RecordedTrace::parse("bogus 1 2")
            .unwrap_err()
            .contains("expected `snapshot`"));
        assert!(RecordedTrace::parse("snapshot 0 2\n0 1 5")
            .unwrap_err()
            .contains("4 fields"));
        assert!(RecordedTrace::parse("snapshot 0 2\n0 0 5 100\n1 0 5 100")
            .unwrap_err()
            .contains("invalid"));
        let truncated = "snapshot 0 3\n0 1 5 100\n";
        assert!(RecordedTrace::parse(truncated)
            .unwrap_err()
            .contains("truncated"));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_recording_rejected() {
        let mut rec = TraceRecorder::new();
        rec.record(Millis::new(100.0), snap(1.0));
        rec.record(Millis::new(50.0), snap(1.0));
    }

    #[test]
    #[should_panic(expected = "different system")]
    fn size_change_rejected() {
        let mut rec = TraceRecorder::new();
        rec.record(Millis::ZERO, snap(1.0));
        rec.record(
            Millis::new(1.0),
            NetParams::uniform(4, Millis::ZERO, Bandwidth::from_kbps(1.0)),
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut rec = TraceRecorder::new();
        rec.record(Millis::ZERO, snap(10.0));
        let mut text = String::from("# header comment\n\n");
        text.push_str(&rec.serialize());
        let trace = RecordedTrace::parse(&text).unwrap();
        assert_eq!(trace.processors(), 3);
    }
}

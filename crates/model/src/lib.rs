//! Heterogeneous network performance model.
//!
//! This crate is the substrate beneath the scheduling algorithms of
//! *Adaptive Communication Algorithms for Distributed Heterogeneous
//! Systems* (HPDC 1998). It provides:
//!
//! * strongly-typed units ([`units`]) for time, message size and bandwidth,
//! * the paper's two-parameter analytic cost model ([`cost`]):
//!   `t(i→j, m) = T_ij + m / B_ij`,
//! * dense per-pair network parameter tables ([`params`]),
//! * the GUSTO testbed measurements from Tables 1 and 2 ([`gusto`]),
//! * a hierarchical site/link topology with shared-link bandwidth
//!   division ([`topology`]),
//! * GUSTO-guided random parameter generation ([`generator`]), and
//! * time-varying network performance traces ([`variation`]).
//!
//! Everything downstream (directory service, schedulers, simulator)
//! consumes network state exclusively through [`params::NetParams`] and
//! [`cost::CostModel`], mirroring the paper's assumption that applications
//! see only end-to-end send/receive performance, never topology details.

//!
//! # Example
//!
//! ```
//! use adaptcomm_model::{NetParams, Bandwidth, Bytes, Millis};
//! use adaptcomm_model::cost::CostModel;
//!
//! // A 4-node system: 10 ms start-up, 1 Mbit/s everywhere.
//! let net = NetParams::uniform(4, Millis::new(10.0), Bandwidth::from_kbps(1_000.0));
//! // t = T + m/B: 10 ms + 8e6 bits / 1000 kbit/s = 8010 ms for 1 MB.
//! let t = net.message_time(0, 1, Bytes::MB);
//! assert!((t.as_ms() - 8_010.0).abs() < 1e-9);
//! // Local copies are free by the paper's convention.
//! assert_eq!(net.message_time(2, 2, Bytes::MB), Millis::ZERO);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Index-based loops mirror the published pseudocode of the ported
// algorithms; iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]

pub mod cost;
pub mod generator;
pub mod gusto;
pub mod multinet;
pub mod params;
pub mod topology;
pub mod trace_io;
pub mod units;
pub mod variation;

pub use cost::CostModel;
pub use params::NetParams;
pub use units::{Bandwidth, Bytes, Millis};

//! Multiple heterogeneous networks between node pairs (§2).
//!
//! The paper surveys Kim & Lilja's work on clusters wired with several
//! networks at once (ATM + Ethernet + Fibre Channel) and two techniques
//! for exploiting them:
//!
//! * **PBPS (Performance Based Path Selection)** — per message, pick the
//!   single network minimizing `T + m/B` for that message size. Because
//!   networks trade start-up cost against bandwidth, the best choice
//!   *crosses over* as messages grow ([`MultiNetwork::crossover_size`]).
//! * **Aggregation** — split one message across all networks in
//!   parallel; the optimal split equalizes the finish times
//!   (water-filling over `(T_k, B_k)`).
//!
//! [`MultiNetwork::pbps_params`] flattens a multi-network system into
//! ordinary [`NetParams`] for a given message size, which plugs straight
//! into the scheduling framework — exactly how the paper positions this
//! related work ("these techniques can be incorporated").

use crate::cost::LinkEstimate;
use crate::params::NetParams;
use crate::units::{Bandwidth, Bytes, Millis};

/// A set of parallel networks covering the same `P` processors.
#[derive(Debug, Clone)]
pub struct MultiNetwork {
    names: Vec<String>,
    networks: Vec<NetParams>,
}

impl MultiNetwork {
    /// Builds from named parameter tables; all must cover the same `P`.
    pub fn new(networks: Vec<(String, NetParams)>) -> Self {
        assert!(!networks.is_empty(), "need at least one network");
        let p = networks[0].1.len();
        for (name, net) in &networks {
            assert_eq!(
                net.len(),
                p,
                "network {name} covers {} nodes, expected {p}",
                net.len()
            );
        }
        let (names, networks) = networks.into_iter().unzip();
        MultiNetwork { names, networks }
    }

    /// Number of parallel networks.
    pub fn count(&self) -> usize {
        self.networks.len()
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.networks[0].len()
    }

    /// Network names, in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// PBPS: the index and predicted time of the best single network for
    /// an `m`-byte message from `src` to `dst`.
    pub fn pbps_choice(&self, src: usize, dst: usize, m: Bytes) -> (usize, Millis) {
        self.networks
            .iter()
            .enumerate()
            .map(|(k, net)| (k, net.time(src, dst, m)))
            .min_by(|a, b| a.1.as_ms().total_cmp(&b.1.as_ms()).then(a.0.cmp(&b.0)))
            .expect("at least one network")
    }

    /// PBPS flattened to [`NetParams`] for a fixed message size: each
    /// pair is assigned its best network's parameters.
    pub fn pbps_params(&self, m: Bytes) -> NetParams {
        let p = self.processors();
        NetParams::from_fn(p, |src, dst| {
            if src == dst {
                LinkEstimate::new(Millis::ZERO, Bandwidth::from_kbps(1e12))
            } else {
                let (k, _) = self.pbps_choice(src, dst, m);
                self.networks[k].estimate(src, dst)
            }
        })
    }

    /// The message size at which network `b` becomes at least as fast as
    /// network `a` for the pair, if such a crossover exists:
    /// `T_a + m/B_a = T_b + m/B_b  ⇒  m = (T_b − T_a)·B_a·B_b/(B_b − B_a)`
    /// (in consistent units). Returns `None` when one network dominates
    /// at every size.
    pub fn crossover_size(&self, src: usize, dst: usize, a: usize, b: usize) -> Option<Bytes> {
        let ea = self.networks[a].estimate(src, dst);
        let eb = self.networks[b].estimate(src, dst);
        let (ta, tb) = (ea.startup.as_ms(), eb.startup.as_ms());
        // Times in ms for m bytes: t + 8m/B_kbps.
        let (ra, rb) = (8.0 / ea.bandwidth.as_kbps(), 8.0 / eb.bandwidth.as_kbps());
        if (ra - rb).abs() < 1e-15 {
            return None; // parallel lines: no crossover
        }
        let m = (tb - ta) / (ra - rb);
        if m.is_finite() && m > 0.0 {
            Some(Bytes::new(m.ceil() as u64))
        } else {
            None // one network dominates everywhere
        }
    }

    /// Aggregation: the time to move `m` bytes from `src` to `dst` using
    /// *all* networks in parallel with the optimal split, plus the split
    /// itself (bytes per network; zero for networks not worth starting).
    ///
    /// Water-filling: at finish time `t`, network `k` moves
    /// `max(0, (t − T_k))·B_k` bytes; find the smallest `t` with total
    /// ≥ `m`. Piecewise linear and increasing in `t`, solved exactly by
    /// sweeping the start-up costs in ascending order.
    pub fn aggregate(&self, src: usize, dst: usize, m: Bytes) -> (Millis, Vec<Bytes>) {
        let k = self.count();
        if m == Bytes::ZERO {
            return (Millis::ZERO, vec![Bytes::ZERO; k]);
        }
        // Per network: (startup ms, rate bytes/ms, original index).
        let mut nets: Vec<(f64, f64, usize)> = (0..k)
            .map(|i| {
                let e = self.networks[i].estimate(src, dst);
                (e.startup.as_ms(), e.bandwidth.as_kbps() / 8.0, i)
            })
            .collect();
        nets.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));

        let target = m.as_u64() as f64;
        // Sweep: with the first `used` networks active, capacity(t) =
        // Σ rate_i (t − T_i). Find the prefix for which the solution t
        // precedes the next network's startup.
        let mut rate_sum = 0.0;
        let mut weighted = 0.0; // Σ rate_i · T_i
        let mut best_t = f64::INFINITY;
        let mut best_used = 0;
        for used in 1..=nets.len() {
            let (t_k, r_k, _) = nets[used - 1];
            rate_sum += r_k;
            weighted += r_k * t_k;
            let t = (target + weighted) / rate_sum;
            let lower_ok = t >= t_k - 1e-12;
            let upper_ok = used == nets.len() || t <= nets[used].0 + 1e-12;
            if lower_ok && upper_ok {
                best_t = t;
                best_used = used;
                break;
            }
        }
        assert!(best_t.is_finite(), "water-filling must find a finish time");

        // Distribute bytes; round the split to integers conserving m.
        let mut split = vec![Bytes::ZERO; k];
        let mut assigned = 0u64;
        for (idx, &(t_i, r_i, orig)) in nets.iter().take(best_used).enumerate() {
            let exact = (best_t - t_i) * r_i;
            let bytes = if idx == best_used - 1 {
                m.as_u64() - assigned // remainder absorbs rounding
            } else {
                let b = exact.floor().max(0.0) as u64;
                let b = b.min(m.as_u64() - assigned);
                assigned += b;
                b
            };
            split[orig] = Bytes::new(bytes);
        }
        (Millis::new(best_t), split)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ethernet-like (cheap start-up, low bandwidth) vs ATM-like
    /// (expensive start-up, high bandwidth).
    fn two_nets() -> MultiNetwork {
        let ethernet = NetParams::uniform(3, Millis::new(1.0), Bandwidth::from_kbps(8_000.0));
        let atm = NetParams::uniform(3, Millis::new(20.0), Bandwidth::from_kbps(80_000.0));
        MultiNetwork::new(vec![("ethernet".into(), ethernet), ("atm".into(), atm)])
    }

    #[test]
    fn pbps_picks_by_message_size() {
        let mn = two_nets();
        // 1 kB: ethernet 1 + 1 = 2ms; atm 20 + 0.1 = 20.1ms.
        assert_eq!(mn.pbps_choice(0, 1, Bytes::KB).0, 0);
        // 1 MB: ethernet 1 + 1000 = 1001ms; atm 20 + 100 = 120ms.
        assert_eq!(mn.pbps_choice(0, 1, Bytes::MB).0, 1);
    }

    #[test]
    fn crossover_matches_hand_calculation() {
        let mn = two_nets();
        // T_a=1, r_a=8/8000=1e-3 ms/B; T_b=20, r_b=1e-4.
        // m* = (20-1)/(1e-3-1e-4) = 19/9e-4 ≈ 21_111 bytes.
        let m = mn.crossover_size(0, 1, 0, 1).unwrap();
        assert!((m.as_u64() as f64 - 21_111.0).abs() < 2.0, "got {m}");
        // Below the crossover ethernet wins, above ATM wins.
        assert_eq!(mn.pbps_choice(0, 1, Bytes::new(20_000)).0, 0);
        assert_eq!(mn.pbps_choice(0, 1, Bytes::new(22_000)).0, 1);
    }

    #[test]
    fn no_crossover_when_one_network_dominates() {
        let slow = NetParams::uniform(2, Millis::new(10.0), Bandwidth::from_kbps(100.0));
        let fast = NetParams::uniform(2, Millis::new(1.0), Bandwidth::from_kbps(10_000.0));
        let mn = MultiNetwork::new(vec![("slow".into(), slow), ("fast".into(), fast)]);
        assert!(mn.crossover_size(0, 1, 0, 1).is_none());
        assert_eq!(mn.pbps_choice(0, 1, Bytes::KB).0, 1);
        assert_eq!(mn.pbps_choice(0, 1, Bytes::MB).0, 1);
    }

    #[test]
    fn pbps_params_flatten_per_pair() {
        let mn = two_nets();
        let small = mn.pbps_params(Bytes::KB);
        let large = mn.pbps_params(Bytes::MB);
        assert_eq!(small.estimate(0, 1).startup.as_ms(), 1.0); // ethernet
        assert_eq!(large.estimate(0, 1).startup.as_ms(), 20.0); // atm
    }

    #[test]
    fn aggregation_beats_the_best_single_network() {
        let mn = two_nets();
        for m in [Bytes::new(50_000), Bytes::MB, Bytes::from_mb(5)] {
            let (t_agg, split) = mn.aggregate(0, 1, m);
            let (_, t_best) = mn.pbps_choice(0, 1, m);
            assert!(
                t_agg.as_ms() <= t_best.as_ms() + 1e-9,
                "aggregation {t_agg} worse than best single {t_best} for {m}"
            );
            assert_eq!(split.iter().map(|b| b.as_u64()).sum::<u64>(), m.as_u64());
        }
    }

    #[test]
    fn aggregation_skips_networks_not_worth_starting() {
        let mn = two_nets();
        // A tiny message finishes on ethernet before ATM even starts up.
        let (t, split) = mn.aggregate(0, 1, Bytes::new(1_000));
        assert!(t.as_ms() < 20.0, "finished before ATM's 20ms startup: {t}");
        assert_eq!(split[1], Bytes::ZERO, "ATM must carry nothing");
        assert_eq!(split[0], Bytes::new(1_000));
    }

    #[test]
    fn aggregation_split_equalizes_finish_times() {
        let mn = two_nets();
        let (t, split) = mn.aggregate(0, 1, Bytes::MB);
        // Each used network finishes within a byte-quantum of t.
        for (k, bytes) in split.iter().enumerate() {
            if bytes.as_u64() > 0 {
                let e = mn.networks[k].estimate(0, 1);
                let fin = e.message_time(*bytes).as_ms();
                assert!(
                    (fin - t.as_ms()).abs() < 0.01,
                    "network {k} finishes at {fin}, batch at {t}"
                );
            }
        }
    }

    #[test]
    fn zero_bytes_is_free() {
        let mn = two_nets();
        let (t, split) = mn.aggregate(0, 1, Bytes::ZERO);
        assert_eq!(t.as_ms(), 0.0);
        assert!(split.iter().all(|b| *b == Bytes::ZERO));
    }

    #[test]
    #[should_panic(expected = "covers")]
    fn mismatched_sizes_rejected() {
        let a = NetParams::uniform(2, Millis::new(1.0), Bandwidth::from_kbps(10.0));
        let b = NetParams::uniform(3, Millis::new(1.0), Bandwidth::from_kbps(10.0));
        let _ = MultiNetwork::new(vec![("a".into(), a), ("b".into(), b)]);
    }
}

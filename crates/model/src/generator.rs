//! GUSTO-guided random network parameter generation (paper §5).
//!
//! "The simulator generates random performance characteristics for
//! pairwise network performance, using information from the GUSTO
//! directory service as a guideline." We reproduce that: start-up costs
//! are drawn uniformly from the latency range of Table 1 and bandwidths
//! log-uniformly from the bandwidth range of Table 2 (log-uniform because
//! the table spans more than an order of magnitude — 246 to 4976 kbit/s —
//! and a linear draw would almost never produce slow links).

use crate::cost::LinkEstimate;
use crate::gusto;
use crate::params::NetParams;
use crate::units::{Bandwidth, Millis};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for random network generation.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Lower bound of the start-up cost range (ms).
    pub startup_min_ms: f64,
    /// Upper bound of the start-up cost range (ms).
    pub startup_max_ms: f64,
    /// Lower bound of the bandwidth range (kbit/s).
    pub bandwidth_min_kbps: f64,
    /// Upper bound of the bandwidth range (kbit/s).
    pub bandwidth_max_kbps: f64,
    /// If true, generated estimates are symmetric (`(i,j)` = `(j,i)`),
    /// matching the GUSTO tables; if false each direction is drawn
    /// independently.
    pub symmetric: bool,
}

impl Default for GeneratorConfig {
    /// The GUSTO-guided defaults: ranges exactly as spanned by Tables 1–2.
    fn default() -> Self {
        GeneratorConfig {
            startup_min_ms: gusto::MIN_LATENCY_MS,
            startup_max_ms: gusto::MAX_LATENCY_MS,
            bandwidth_min_kbps: gusto::MIN_BANDWIDTH_KBPS,
            bandwidth_max_kbps: gusto::MAX_BANDWIDTH_KBPS,
            symmetric: true,
        }
    }
}

impl GeneratorConfig {
    /// The paper also mentions metacomputing start-up costs of 10–50 ms;
    /// this preset uses that range with the GUSTO bandwidth range.
    pub fn metacomputing() -> Self {
        GeneratorConfig {
            startup_min_ms: 10.0,
            startup_max_ms: 50.0,
            ..Self::default()
        }
    }

    /// The §3.2 wide heterogeneity range: "typical values for the
    /// bandwidth could be in the range of kb/s to hundreds of Mb/s".
    /// 56 kbit/s (dial-up/ISDN-era slow links) to 155 Mbit/s (ATM OC-3)
    /// — a ~2800× spread, versus the ~20× of the GUSTO snapshot. Strong
    /// spread is what makes the oblivious baseline collapse (the paper's
    /// 2–5× Figure-12 gap needs it).
    pub fn wide_area() -> Self {
        GeneratorConfig {
            bandwidth_min_kbps: 56.0,
            bandwidth_max_kbps: 155_000.0,
            ..Self::default()
        }
    }

    fn validate(&self) {
        assert!(
            self.startup_min_ms >= 0.0 && self.startup_min_ms <= self.startup_max_ms,
            "invalid startup range"
        );
        assert!(
            self.bandwidth_min_kbps > 0.0 && self.bandwidth_min_kbps <= self.bandwidth_max_kbps,
            "invalid bandwidth range"
        );
    }
}

/// Deterministic random network generator.
#[derive(Debug)]
pub struct NetGenerator {
    config: GeneratorConfig,
    rng: StdRng,
}

impl NetGenerator {
    /// Creates a generator with the given configuration and seed.
    pub fn new(config: GeneratorConfig, seed: u64) -> Self {
        config.validate();
        NetGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a GUSTO-guided generator (the paper's §5 setup).
    pub fn gusto_guided(seed: u64) -> Self {
        Self::new(GeneratorConfig::default(), seed)
    }

    /// Draws one link estimate.
    fn draw(&mut self) -> LinkEstimate {
        let c = &self.config;
        let startup = self.rng.random_range(c.startup_min_ms..=c.startup_max_ms);
        let (lo, hi) = (c.bandwidth_min_kbps.ln(), c.bandwidth_max_kbps.ln());
        let bw = if lo == hi {
            c.bandwidth_min_kbps
        } else {
            self.rng.random_range(lo..=hi).exp()
        };
        LinkEstimate::new(Millis::new(startup), Bandwidth::from_kbps(bw))
    }

    /// Generates a full `P×P` parameter table.
    pub fn generate(&mut self, p: usize) -> NetParams {
        assert!(p >= 1, "need at least one processor");
        let diag = LinkEstimate::new(Millis::ZERO, Bandwidth::from_kbps(1e12));
        let mut params = NetParams::from_fn(p, |_, _| diag);
        if self.config.symmetric {
            for src in 0..p {
                for dst in (src + 1)..p {
                    let e = self.draw();
                    params.set_estimate(src, dst, e);
                    params.set_estimate(dst, src, e);
                }
            }
        } else {
            for src in 0..p {
                for dst in 0..p {
                    if src != dst {
                        let e = self.draw();
                        params.set_estimate(src, dst, e);
                    }
                }
            }
        }
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_values_stay_in_range() {
        let mut g = NetGenerator::gusto_guided(7);
        let p = g.generate(20);
        for (_, _, e) in p.pairs() {
            assert!(e.startup.as_ms() >= gusto::MIN_LATENCY_MS);
            assert!(e.startup.as_ms() <= gusto::MAX_LATENCY_MS);
            assert!(e.bandwidth.as_kbps() >= gusto::MIN_BANDWIDTH_KBPS - 1e-9);
            assert!(e.bandwidth.as_kbps() <= gusto::MAX_BANDWIDTH_KBPS + 1e-9);
        }
    }

    #[test]
    fn symmetric_generation_is_symmetric() {
        let mut g = NetGenerator::gusto_guided(11);
        let p = g.generate(8);
        for a in 0..8 {
            for b in 0..8 {
                if a != b {
                    assert_eq!(p.estimate(a, b), p.estimate(b, a));
                }
            }
        }
    }

    #[test]
    fn asymmetric_generation_differs_by_direction() {
        let cfg = GeneratorConfig {
            symmetric: false,
            ..GeneratorConfig::default()
        };
        let mut g = NetGenerator::new(cfg, 13);
        let p = g.generate(10);
        let asymmetric = p
            .pairs()
            .filter(|&(a, b, e)| a < b && e != p.estimate(b, a))
            .count();
        assert!(asymmetric > 0, "independent draws should differ somewhere");
    }

    #[test]
    fn same_seed_reproduces_same_network() {
        let a = NetGenerator::gusto_guided(42).generate(12);
        let b = NetGenerator::gusto_guided(42).generate(12);
        assert_eq!(a, b);
        let c = NetGenerator::gusto_guided(43).generate(12);
        assert_ne!(a, c);
    }

    #[test]
    fn metacomputing_preset_uses_10_to_50ms() {
        let mut g = NetGenerator::new(GeneratorConfig::metacomputing(), 3);
        let p = g.generate(15);
        for (_, _, e) in p.pairs() {
            assert!(e.startup.as_ms() >= 10.0 && e.startup.as_ms() <= 50.0);
        }
    }

    #[test]
    #[should_panic(expected = "invalid bandwidth range")]
    fn invalid_config_rejected() {
        let cfg = GeneratorConfig {
            bandwidth_min_kbps: 0.0,
            ..GeneratorConfig::default()
        };
        let _ = NetGenerator::new(cfg, 0);
    }
}

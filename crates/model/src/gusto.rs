//! The GUSTO testbed measurements from the paper (Tables 1 and 2).
//!
//! GUSTO was the Globus testbed; its Metacomputing Directory Service
//! published end-to-end latency and bandwidth between computing sites.
//! The paper reproduces a 5-site snapshot — NASA AMES, Argonne National
//! Lab, Indiana University, USC-ISI and NCSA — which we embed verbatim.
//! The simulation section (§5) generates random network characteristics
//! "using information from the GUSTO directory service as a guideline";
//! [`crate::generator`] samples within the ranges spanned by these tables.

use crate::cost::LinkEstimate;
use crate::params::NetParams;
use crate::units::{Bandwidth, Millis};

/// The five GUSTO sites of Tables 1 and 2, in table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// NASA Ames Research Center.
    Ames,
    /// Argonne National Laboratory.
    Anl,
    /// Indiana University.
    Indiana,
    /// USC Information Sciences Institute.
    UscIsi,
    /// National Center for Supercomputing Applications.
    Ncsa,
}

impl Site {
    /// All sites in table order.
    pub const ALL: [Site; 5] = [
        Site::Ames,
        Site::Anl,
        Site::Indiana,
        Site::UscIsi,
        Site::Ncsa,
    ];

    /// Table row/column index of the site.
    pub fn index(self) -> usize {
        match self {
            Site::Ames => 0,
            Site::Anl => 1,
            Site::Indiana => 2,
            Site::UscIsi => 3,
            Site::Ncsa => 4,
        }
    }

    /// The site's name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Site::Ames => "AMES",
            Site::Anl => "ANL",
            Site::Indiana => "IND",
            Site::UscIsi => "USC-ISI",
            Site::Ncsa => "NCSA",
        }
    }
}

/// Table 1: latency in milliseconds between the 5 GUSTO sites.
/// Diagonal entries (site to itself) are zero.
pub const LATENCY_MS: [[f64; 5]; 5] = [
    [0.0, 34.5, 89.5, 12.0, 42.0],
    [34.5, 0.0, 20.0, 26.5, 4.5],
    [89.5, 20.0, 0.0, 42.5, 21.5],
    [12.0, 26.5, 42.5, 0.0, 29.5],
    [42.0, 4.5, 21.5, 29.5, 0.0],
];

/// Table 2: bandwidth in kbit/s between the 5 GUSTO sites.
/// Diagonal entries are zero placeholders (local copies are free).
pub const BANDWIDTH_KBPS: [[f64; 5]; 5] = [
    [0.0, 512.0, 246.0, 2044.0, 391.0],
    [512.0, 0.0, 491.0, 693.0, 2402.0],
    [246.0, 491.0, 0.0, 311.0, 448.0],
    [2044.0, 693.0, 311.0, 0.0, 4976.0],
    [391.0, 2402.0, 448.0, 4976.0, 0.0],
];

/// Smallest off-diagonal latency in Table 1 (ms).
pub const MIN_LATENCY_MS: f64 = 4.5;
/// Largest off-diagonal latency in Table 1 (ms).
pub const MAX_LATENCY_MS: f64 = 89.5;
/// Smallest off-diagonal bandwidth in Table 2 (kbit/s).
pub const MIN_BANDWIDTH_KBPS: f64 = 246.0;
/// Largest off-diagonal bandwidth in Table 2 (kbit/s).
pub const MAX_BANDWIDTH_KBPS: f64 = 4976.0;

/// Returns the 5-site [`NetParams`] built from Tables 1 and 2.
pub fn gusto_params() -> NetParams {
    NetParams::from_fn(5, |src, dst| {
        if src == dst {
            LinkEstimate::new(Millis::ZERO, Bandwidth::from_kbps(1e12))
        } else {
            LinkEstimate::new(
                Millis::new(latency_ms(src, dst)),
                Bandwidth::from_kbps(bandwidth_kbps(src, dst)),
            )
        }
    })
}

/// Latency between two site indices, per Table 1 (symmetric).
pub fn latency_ms(a: usize, b: usize) -> f64 {
    LATENCY_MS[a][b]
}

/// Bandwidth between two site indices, per Table 2 (symmetric).
pub fn bandwidth_kbps(a: usize, b: usize) -> f64 {
    BANDWIDTH_KBPS[a][b]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::units::Bytes;

    #[test]
    fn tables_are_symmetric() {
        for a in 0..5 {
            for b in 0..5 {
                assert_eq!(latency_ms(a, b), latency_ms(b, a), "latency {a},{b}");
                assert_eq!(
                    bandwidth_kbps(a, b),
                    bandwidth_kbps(b, a),
                    "bandwidth {a},{b}"
                );
            }
        }
    }

    #[test]
    fn spot_check_paper_values() {
        // Table 1 spot checks.
        assert_eq!(latency_ms(Site::Ames.index(), Site::Indiana.index()), 89.5);
        assert_eq!(latency_ms(Site::Anl.index(), Site::Ncsa.index()), 4.5);
        assert_eq!(latency_ms(Site::Ames.index(), Site::UscIsi.index()), 12.0);
        // Table 2 spot checks.
        assert_eq!(
            bandwidth_kbps(Site::UscIsi.index(), Site::Ncsa.index()),
            4976.0
        );
        assert_eq!(
            bandwidth_kbps(Site::Ames.index(), Site::Indiana.index()),
            246.0
        );
        assert_eq!(
            bandwidth_kbps(Site::Anl.index(), Site::Ncsa.index()),
            2402.0
        );
    }

    #[test]
    fn ranges_match_tables() {
        let mut lat_min = f64::INFINITY;
        let mut lat_max = 0.0f64;
        let mut bw_min = f64::INFINITY;
        let mut bw_max = 0.0f64;
        for a in 0..5 {
            for b in 0..5 {
                if a == b {
                    continue;
                }
                lat_min = lat_min.min(latency_ms(a, b));
                lat_max = lat_max.max(latency_ms(a, b));
                bw_min = bw_min.min(bandwidth_kbps(a, b));
                bw_max = bw_max.max(bandwidth_kbps(a, b));
            }
        }
        assert_eq!(lat_min, MIN_LATENCY_MS);
        assert_eq!(lat_max, MAX_LATENCY_MS);
        assert_eq!(bw_min, MIN_BANDWIDTH_KBPS);
        assert_eq!(bw_max, MAX_BANDWIDTH_KBPS);
    }

    #[test]
    fn gusto_params_reflect_tables() {
        let p = gusto_params();
        assert_eq!(p.len(), 5);
        let e = p.estimate(Site::Ames.index(), Site::Anl.index());
        assert_eq!(e.startup.as_ms(), 34.5);
        assert_eq!(e.bandwidth.as_kbps(), 512.0);
        // Message time: 34.5 + 8e6/512 ms for 1 MB.
        let t = p.message_time(0, 1, Bytes::MB);
        assert!((t.as_ms() - (34.5 + 8e6 / 512.0)).abs() < 1e-6);
    }

    #[test]
    fn site_metadata() {
        assert_eq!(Site::ALL.len(), 5);
        for (i, s) in Site::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(Site::UscIsi.name(), "USC-ISI");
    }
}

//! The paper's two-parameter analytic communication model (§3.2).
//!
//! Network performance between a processor pair `(P_i, P_j)` is captured
//! by a start-up cost `T_ij` and a data transmission rate `B_ij`; the time
//! for an `m`-byte message is `T_ij + m / B_ij`. The two parameters
//! abstractly represent the total time for traversing *all* links on the
//! path between the nodes — topology, routing and flow control are
//! invisible at the application layer.

use crate::params::NetParams;
use crate::units::{Bandwidth, Bytes, Millis};
use serde::{Deserialize, Serialize};

/// The per-pair link estimate `(T_ij, B_ij)` as published by a directory
/// service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkEstimate {
    /// Start-up cost `T_ij` (paper: typically 10–50 ms in metacomputing
    /// systems).
    pub startup: Millis,
    /// End-to-end data transmission rate `B_ij` (paper: kb/s to hundreds
    /// of Mb/s).
    pub bandwidth: Bandwidth,
}

impl LinkEstimate {
    /// Creates an estimate from a start-up cost and bandwidth.
    pub fn new(startup: Millis, bandwidth: Bandwidth) -> Self {
        assert!(
            startup.as_ms().is_finite() && startup.as_ms() >= 0.0,
            "start-up cost must be finite and non-negative, got {}",
            startup.as_ms()
        );
        LinkEstimate { startup, bandwidth }
    }

    /// Time for an `m`-byte message over this link: `T + m/B`.
    #[inline]
    pub fn message_time(&self, m: Bytes) -> Millis {
        self.startup + self.bandwidth.transfer_time(m)
    }
}

/// A cost model maps `(sender, receiver, message size)` to a predicted
/// transfer time. The basic model is the paper's `T_ij + m/B_ij`;
/// decorated models implement the §6.1 extensions.
pub trait CostModel {
    /// Number of processors the model covers.
    fn len(&self) -> usize;

    /// True if the model covers zero processors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Predicted time for sending `m` bytes from `src` to `dst`.
    ///
    /// By the paper's convention, a local transfer (`src == dst`) is a
    /// memory copy with negligible cost and must return zero.
    fn message_time(&self, src: usize, dst: usize, m: Bytes) -> Millis;
}

impl CostModel for NetParams {
    fn len(&self) -> usize {
        self.len()
    }

    fn message_time(&self, src: usize, dst: usize, m: Bytes) -> Millis {
        if src == dst {
            return Millis::ZERO;
        }
        self.estimate(src, dst).message_time(m)
    }
}

/// §6.1 model extension: receivers multiplex up to `fan_in` simultaneous
/// incoming messages, paying a context-switching overhead `α` — receiving
/// two messages of times `t1`, `t2` together costs `(1+α)(t1+t2)`.
///
/// The decorated `message_time` is unchanged (the overhead applies only
/// when the *simulator* overlaps receives); this type carries the α
/// parameter alongside the base model so schedulers and simulators agree
/// on it.
#[derive(Debug, Clone)]
pub struct InterleavedModel<M> {
    /// The underlying pairwise model.
    pub base: M,
    /// Context-switch overhead fraction `α ≥ 0`.
    pub alpha: f64,
    /// Maximum simultaneous receives a node supports (≥ 1). A value of 1
    /// degenerates to the paper's base model.
    pub fan_in: usize,
}

impl<M: CostModel> InterleavedModel<M> {
    /// Wraps a base model with interleaving parameters.
    pub fn new(base: M, alpha: f64, fan_in: usize) -> Self {
        assert!(alpha >= 0.0 && alpha.is_finite(), "alpha must be ≥ 0");
        assert!(fan_in >= 1, "fan_in must be ≥ 1");
        InterleavedModel {
            base,
            alpha,
            fan_in,
        }
    }

    /// Cost of receiving a batch of messages concurrently:
    /// `(1+α)·Σ t_k` if the batch exceeds one message, `t_1` otherwise.
    pub fn batch_receive_time(&self, individual: &[Millis]) -> Millis {
        let sum: Millis = individual.iter().copied().sum();
        if individual.len() <= 1 {
            sum
        } else {
            sum * (1.0 + self.alpha)
        }
    }
}

impl<M: CostModel> CostModel for InterleavedModel<M> {
    fn len(&self) -> usize {
        self.base.len()
    }

    fn message_time(&self, src: usize, dst: usize, m: Bytes) -> Millis {
        self.base.message_time(src, dst, m)
    }
}

/// §6.1 model extension: each receiver has a finite staging buffer.
/// A sender completes as soon as its message is *stored* in the buffer;
/// the receive into the application drains the buffer later. A full
/// buffer blocks senders.
#[derive(Debug, Clone)]
pub struct BufferedModel<M> {
    /// The underlying pairwise model.
    pub base: M,
    /// Per-receiver staging buffer capacity in bytes.
    pub buffer_capacity: Bytes,
    /// Rate at which the application drains the buffer, as a bandwidth.
    pub drain_rate: Bandwidth,
}

impl<M: CostModel> BufferedModel<M> {
    /// Wraps a base model with receiver-buffer parameters.
    pub fn new(base: M, buffer_capacity: Bytes, drain_rate: Bandwidth) -> Self {
        BufferedModel {
            base,
            buffer_capacity,
            drain_rate,
        }
    }
}

impl<M: CostModel> CostModel for BufferedModel<M> {
    fn len(&self) -> usize {
        self.base.len()
    }

    fn message_time(&self, src: usize, dst: usize, m: Bytes) -> Millis {
        self.base.message_time(src, dst, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NetParams;

    fn two_node_params() -> NetParams {
        let mut p = NetParams::uniform(2, Millis::new(10.0), Bandwidth::from_kbps(800.0));
        p.set_estimate(
            0,
            1,
            LinkEstimate::new(Millis::new(5.0), Bandwidth::from_kbps(400.0)),
        );
        p
    }

    #[test]
    fn link_estimate_message_time_is_startup_plus_transfer() {
        let e = LinkEstimate::new(Millis::new(12.0), Bandwidth::from_kbps(1_000.0));
        // 1 kB = 8000 bits over 1000 kbit/s = 8 ms, plus 12 ms startup.
        assert!((e.message_time(Bytes::KB).as_ms() - 20.0).abs() < 1e-9);
        // Zero-byte message costs just the startup.
        assert_eq!(e.message_time(Bytes::ZERO).as_ms(), 12.0);
    }

    #[test]
    #[should_panic(expected = "start-up cost")]
    fn negative_startup_rejected() {
        let _ = LinkEstimate::new(Millis::new(-1.0), Bandwidth::from_kbps(1.0));
    }

    #[test]
    fn netparams_local_transfer_is_free() {
        let p = two_node_params();
        assert_eq!(p.message_time(0, 0, Bytes::MB), Millis::ZERO);
        assert_eq!(p.message_time(1, 1, Bytes::MB), Millis::ZERO);
    }

    #[test]
    fn netparams_uses_directional_estimate() {
        let p = two_node_params();
        // 0→1 overridden to 5ms + 8000/400 = 25 ms.
        assert!((p.message_time(0, 1, Bytes::KB).as_ms() - 25.0).abs() < 1e-9);
        // 1→0 keeps the uniform 10ms + 8000/800 = 20 ms.
        assert!((p.message_time(1, 0, Bytes::KB).as_ms() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn interleaved_batch_cost() {
        let m = InterleavedModel::new(two_node_params(), 0.25, 4);
        let t = m.batch_receive_time(&[Millis::new(8.0), Millis::new(12.0)]);
        assert!((t.as_ms() - 25.0).abs() < 1e-9); // (1+0.25)*(8+12)
        let single = m.batch_receive_time(&[Millis::new(8.0)]);
        assert_eq!(single.as_ms(), 8.0); // no overhead for a lone receive
        assert_eq!(m.batch_receive_time(&[]).as_ms(), 0.0);
    }

    #[test]
    fn decorated_models_delegate_point_cost() {
        let p = two_node_params();
        let want = p.message_time(0, 1, Bytes::KB);
        let inter = InterleavedModel::new(p.clone(), 0.1, 2);
        let buf = BufferedModel::new(p.clone(), Bytes::MB, Bandwidth::from_kbps(1e6));
        assert_eq!(inter.message_time(0, 1, Bytes::KB), want);
        assert_eq!(buf.message_time(0, 1, Bytes::KB), want);
        assert_eq!(inter.len(), 2);
        assert_eq!(buf.len(), 2);
        assert!(!inter.is_empty());
    }

    #[test]
    #[should_panic(expected = "fan_in")]
    fn interleaved_requires_fan_in() {
        let _ = InterleavedModel::new(two_node_params(), 0.1, 0);
    }
}

//! Time-varying network performance traces.
//!
//! "Network conditions change continuously, and run-time loads cannot be
//! determined apriori" (§1). This module models that drift: a
//! [`VariationTrace`] evolves per-pair bandwidth multipliers with a
//! bounded geometric random walk, producing a [`NetParams`] snapshot for
//! any query time. The directory service and the dynamic simulator both
//! consume traces, which is what makes the §6.3 checkpoint/rescheduling
//! experiments possible.

use crate::params::NetParams;
use crate::units::Millis;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the bandwidth drift process.
#[derive(Debug, Clone, Copy)]
pub struct VariationConfig {
    /// Interval between drift steps.
    pub step: Millis,
    /// Maximum multiplicative change per step (e.g. `0.1` = ±10 %).
    pub volatility: f64,
    /// Lower clamp on the cumulative multiplier.
    pub floor: f64,
    /// Upper clamp on the cumulative multiplier.
    pub ceil: f64,
}

impl Default for VariationConfig {
    fn default() -> Self {
        VariationConfig {
            step: Millis::new(1_000.0),
            volatility: 0.10,
            floor: 0.25,
            ceil: 4.0,
        }
    }
}

/// A deterministic, seedable drift process over a base [`NetParams`].
///
/// Snapshots are generated lazily and cached per step index, so queries
/// at increasing times are `O(ΔP²)` and queries within one step are free.
#[derive(Debug)]
pub struct VariationTrace {
    base: NetParams,
    config: VariationConfig,
    rng: StdRng,
    /// Cumulative multipliers per ordered pair, flattened row-major.
    multipliers: Vec<f64>,
    /// Index of the last materialized step.
    current_step: u64,
}

impl VariationTrace {
    /// Creates a trace starting from `base` at time zero.
    pub fn new(base: NetParams, config: VariationConfig, seed: u64) -> Self {
        assert!(config.step.as_ms() > 0.0, "step must be positive");
        assert!(
            config.volatility >= 0.0 && config.volatility < 1.0,
            "volatility must be in [0, 1)"
        );
        assert!(
            0.0 < config.floor && config.floor <= 1.0 && config.ceil >= 1.0,
            "clamps must bracket 1.0"
        );
        let n = base.len() * base.len();
        VariationTrace {
            base,
            config,
            rng: StdRng::seed_from_u64(seed),
            multipliers: vec![1.0; n],
            current_step: 0,
        }
    }

    /// The unperturbed base parameters.
    pub fn base(&self) -> &NetParams {
        &self.base
    }

    /// Number of processors covered.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// True if the trace covers zero processors (never constructible).
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    fn advance_to(&mut self, step: u64) {
        let p = self.base.len();
        while self.current_step < step {
            for src in 0..p {
                for dst in 0..p {
                    if src == dst {
                        continue;
                    }
                    let idx = src * p + dst;
                    let delta = self
                        .rng
                        .random_range(-self.config.volatility..=self.config.volatility);
                    let m = (self.multipliers[idx] * (1.0 + delta))
                        .clamp(self.config.floor, self.config.ceil);
                    self.multipliers[idx] = m;
                }
            }
            self.current_step += 1;
        }
    }

    /// The network state at time `t`. Times must be queried in
    /// non-decreasing order (the walk only moves forward); querying an
    /// earlier time returns the state at the latest time already reached.
    pub fn snapshot_at(&mut self, t: Millis) -> NetParams {
        let step = (t.as_ms() / self.config.step.as_ms()).floor().max(0.0) as u64;
        self.advance_to(step);
        let p = self.base.len();
        let mut out = self.base.clone();
        for src in 0..p {
            for dst in 0..p {
                if src != dst {
                    out.scale_bandwidth(src, dst, self.multipliers[src * p + dst]);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Bandwidth;

    fn base() -> NetParams {
        NetParams::uniform(4, Millis::new(10.0), Bandwidth::from_kbps(1_000.0))
    }

    #[test]
    fn time_zero_returns_base() {
        let mut tr = VariationTrace::new(base(), VariationConfig::default(), 1);
        let s = tr.snapshot_at(Millis::ZERO);
        assert_eq!(s, base());
    }

    #[test]
    fn drift_changes_bandwidth_but_not_startup() {
        let mut tr = VariationTrace::new(base(), VariationConfig::default(), 2);
        let s = tr.snapshot_at(Millis::new(10_000.0));
        let mut changed = 0;
        for (src, dst, e) in s.pairs() {
            assert_eq!(e.startup.as_ms(), 10.0, "startup must not drift");
            if (e.bandwidth.as_kbps() - 1_000.0).abs() > 1e-9 {
                changed += 1;
            }
            let _ = (src, dst);
        }
        assert!(changed > 0, "ten steps of ±10% drift should move something");
    }

    #[test]
    fn multipliers_respect_clamps() {
        let cfg = VariationConfig {
            volatility: 0.5,
            floor: 0.5,
            ceil: 2.0,
            ..Default::default()
        };
        let mut tr = VariationTrace::new(base(), cfg, 3);
        let s = tr.snapshot_at(Millis::new(1_000_000.0)); // 1000 steps
        for (_, _, e) in s.pairs() {
            let m = e.bandwidth.as_kbps() / 1_000.0;
            assert!(
                (0.5 - 1e-9..=2.0 + 1e-9).contains(&m),
                "multiplier {m} escaped clamp"
            );
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let mut a = VariationTrace::new(base(), VariationConfig::default(), 9);
        let mut b = VariationTrace::new(base(), VariationConfig::default(), 9);
        assert_eq!(
            a.snapshot_at(Millis::new(5_500.0)),
            b.snapshot_at(Millis::new(5_500.0))
        );
    }

    #[test]
    fn queries_within_a_step_are_stable() {
        let mut tr = VariationTrace::new(base(), VariationConfig::default(), 4);
        let s1 = tr.snapshot_at(Millis::new(3_000.0));
        let s2 = tr.snapshot_at(Millis::new(3_999.0));
        assert_eq!(s1, s2);
    }

    #[test]
    fn earlier_query_does_not_rewind() {
        let mut tr = VariationTrace::new(base(), VariationConfig::default(), 5);
        let late = tr.snapshot_at(Millis::new(20_000.0));
        let earlier = tr.snapshot_at(Millis::new(1_000.0));
        assert_eq!(late, earlier, "walk is forward-only");
    }

    #[test]
    #[should_panic(expected = "volatility")]
    fn bad_volatility_rejected() {
        let cfg = VariationConfig {
            volatility: 1.5,
            ..Default::default()
        };
        let _ = VariationTrace::new(base(), cfg, 0);
    }
}

//! Hierarchical metacomputing topology (paper Figure 1).
//!
//! A metacomputing system is a collection of *sites* (each with a local
//! network) joined by long-haul links. A message between nodes at
//! different sites traverses the sender's local network, the long-haul
//! link, and the receiver's local network. Applications never see this
//! structure — the directory service flattens it into per-pair
//! [`NetParams`] — but the directory needs it to account for *shared
//! links*: "If the paths between two distinct node pairs share a common
//! link, the bandwidth of the common link is divided among these
//! communicating pairs" (§3.1).

use crate::cost::LinkEstimate;
use crate::params::NetParams;
use crate::units::{Bandwidth, Millis};
use std::collections::HashMap;

/// Identifier of a link within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// A physical link: a site's local network or a long-haul connection.
#[derive(Debug, Clone)]
pub struct Link {
    /// Human-readable label ("site0-lan", "site0<->site1").
    pub name: String,
    /// One-way traversal latency.
    pub latency: Millis,
    /// Raw capacity of the link.
    pub capacity: Bandwidth,
}

/// A compute site holding `nodes` processors behind one local network.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Number of processor nodes at the site.
    pub nodes: usize,
    /// Local-network latency contribution (one traversal).
    pub lan_latency: Millis,
    /// Local-network capacity.
    pub lan_capacity: Bandwidth,
}

/// A two-level metacomputing topology: sites with LANs, fully connected
/// by long-haul links.
#[derive(Debug, Clone)]
pub struct Topology {
    links: Vec<Link>,
    /// `site_of[node]` = site index.
    site_of: Vec<usize>,
    /// LAN link of each site.
    lan: Vec<LinkId>,
    /// Long-haul link between each unordered site pair.
    wan: HashMap<(usize, usize), LinkId>,
}

impl Topology {
    /// Builds a topology from site specifications and a function giving
    /// the long-haul link between each site pair (`a < b`).
    pub fn new(
        sites: &[SiteSpec],
        mut wan_link: impl FnMut(usize, usize) -> (Millis, Bandwidth),
    ) -> Self {
        assert!(!sites.is_empty(), "need at least one site");
        let mut links = Vec::new();
        let mut site_of = Vec::new();
        let mut lan = Vec::new();
        for (s, spec) in sites.iter().enumerate() {
            assert!(spec.nodes > 0, "site {s} has no nodes");
            let id = LinkId(links.len());
            links.push(Link {
                name: format!("site{s}-lan"),
                latency: spec.lan_latency,
                capacity: spec.lan_capacity,
            });
            lan.push(id);
            for _ in 0..spec.nodes {
                site_of.push(s);
            }
        }
        let mut wan = HashMap::new();
        for a in 0..sites.len() {
            for b in (a + 1)..sites.len() {
                let (latency, capacity) = wan_link(a, b);
                let id = LinkId(links.len());
                links.push(Link {
                    name: format!("site{a}<->site{b}"),
                    latency,
                    capacity,
                });
                wan.insert((a, b), id);
            }
        }
        Topology {
            links,
            site_of,
            lan,
            wan,
        }
    }

    /// A convenient uniform topology: `n_sites` sites of `nodes_per_site`
    /// nodes, identical fast LANs and identical long-haul links.
    pub fn uniform(
        n_sites: usize,
        nodes_per_site: usize,
        lan: (Millis, Bandwidth),
        wan: (Millis, Bandwidth),
    ) -> Self {
        let spec = SiteSpec {
            nodes: nodes_per_site,
            lan_latency: lan.0,
            lan_capacity: lan.1,
        };
        Topology::new(&vec![spec; n_sites], |_, _| wan)
    }

    /// Total number of processor nodes.
    pub fn nodes(&self) -> usize {
        self.site_of.len()
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.lan.len()
    }

    /// Site of a node.
    pub fn site_of(&self, node: usize) -> usize {
        self.site_of[node]
    }

    /// The link objects, indexable by [`LinkId`].
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// The sequence of links traversed by a message from `src` to `dst`.
    /// Intra-site messages use only the LAN; an intra-node transfer uses
    /// no links at all.
    pub fn path(&self, src: usize, dst: usize) -> Vec<LinkId> {
        if src == dst {
            return Vec::new();
        }
        let (sa, sb) = (self.site_of[src], self.site_of[dst]);
        if sa == sb {
            return vec![self.lan[sa]];
        }
        let key = if sa < sb { (sa, sb) } else { (sb, sa) };
        vec![self.lan[sa], self.wan[&key], self.lan[sb]]
    }

    /// End-to-end estimate for a path with no competing traffic:
    /// latencies add, the bottleneck capacity limits bandwidth.
    pub fn end_to_end(&self, src: usize, dst: usize) -> Option<LinkEstimate> {
        let path = self.path(src, dst);
        let mut latency = Millis::ZERO;
        let mut bw: Option<Bandwidth> = None;
        for id in &path {
            let l = self.link(*id);
            latency += l.latency;
            bw = Some(match bw {
                None => l.capacity,
                Some(b) => b.min(l.capacity),
            });
        }
        bw.map(|bandwidth| LinkEstimate::new(latency, bandwidth))
    }

    /// Flattens the topology into per-pair [`NetParams`] assuming no
    /// competing traffic.
    pub fn to_net_params(&self) -> NetParams {
        let diag = LinkEstimate::new(Millis::ZERO, Bandwidth::from_kbps(1e12));
        NetParams::from_fn(self.nodes(), |src, dst| {
            self.end_to_end(src, dst).unwrap_or(diag)
        })
    }

    /// Flattens the topology into [`NetParams`] while a set of flows
    /// (`(src, dst)` pairs) is active, dividing each link's capacity
    /// among the flows that traverse it (§3.1 directory semantics).
    ///
    /// Each flow's effective bandwidth is the minimum over its links of
    /// `capacity / flows_on_link`. Flows not in `active` see the same
    /// shared capacities (they would join the existing load).
    pub fn to_net_params_with_flows(&self, active: &[(usize, usize)]) -> NetParams {
        let mut load: HashMap<LinkId, usize> = HashMap::new();
        for &(s, d) in active {
            for id in self.path(s, d) {
                *load.entry(id).or_insert(0) += 1;
            }
        }
        let diag = LinkEstimate::new(Millis::ZERO, Bandwidth::from_kbps(1e12));
        NetParams::from_fn(self.nodes(), |src, dst| {
            if src == dst {
                return diag;
            }
            let mut latency = Millis::ZERO;
            let mut bw: Option<Bandwidth> = None;
            for id in self.path(src, dst) {
                let l = self.link(id);
                latency += l.latency;
                let shared = l
                    .capacity
                    .shared(load.get(&id).copied().unwrap_or(0).max(1));
                bw = Some(match bw {
                    None => shared,
                    Some(b) => b.min(shared),
                });
            }
            LinkEstimate::new(latency, bw.expect("off-diagonal path is non-empty"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Topology {
        // Two sites of 2 nodes: fast LANs (1 ms, 100 Mbit/s), slow WAN
        // (30 ms, 2 Mbit/s).
        Topology::uniform(
            2,
            2,
            (Millis::new(1.0), Bandwidth::from_mbps(100.0)),
            (Millis::new(30.0), Bandwidth::from_mbps(2.0)),
        )
    }

    #[test]
    fn path_shapes() {
        let t = sample();
        assert_eq!(t.nodes(), 4);
        assert_eq!(t.sites(), 2);
        assert!(t.path(0, 0).is_empty());
        assert_eq!(t.path(0, 1).len(), 1, "intra-site is LAN only");
        assert_eq!(t.path(0, 2).len(), 3, "inter-site is LAN+WAN+LAN");
        assert_eq!(t.site_of(0), 0);
        assert_eq!(t.site_of(3), 1);
    }

    #[test]
    fn end_to_end_latency_adds_and_bandwidth_bottlenecks() {
        let t = sample();
        let e = t.end_to_end(0, 2).unwrap();
        assert!((e.startup.as_ms() - 32.0).abs() < 1e-9); // 1 + 30 + 1
        assert_eq!(e.bandwidth.as_mbps(), 2.0); // WAN is the bottleneck
        let local = t.end_to_end(0, 1).unwrap();
        assert_eq!(local.startup.as_ms(), 1.0);
        assert_eq!(local.bandwidth.as_mbps(), 100.0);
        assert!(t.end_to_end(0, 0).is_none());
    }

    #[test]
    fn flattened_params_cover_all_pairs() {
        let t = sample();
        let p = t.to_net_params();
        assert_eq!(p.len(), 4);
        assert_eq!(p.estimate(1, 3).startup.as_ms(), 32.0);
        assert_eq!(p.estimate(2, 3).startup.as_ms(), 1.0);
    }

    #[test]
    fn shared_wan_divides_bandwidth() {
        let t = sample();
        // Two simultaneous cross-site flows share the single WAN link.
        let p = t.to_net_params_with_flows(&[(0, 2), (1, 3)]);
        let e = p.estimate(0, 2);
        assert_eq!(e.bandwidth.as_mbps(), 1.0); // 2 Mbit/s ÷ 2 flows
                                                // LAN also carries both flows at site 0: 100/2 = 50 Mbit/s, still
                                                // not the bottleneck.
        let intra = p.estimate(0, 1);
        assert_eq!(intra.bandwidth.as_mbps(), 50.0);
    }

    #[test]
    fn unloaded_links_keep_full_capacity() {
        let t = sample();
        let p = t.to_net_params_with_flows(&[]);
        assert_eq!(p.estimate(0, 2).bandwidth.as_mbps(), 2.0);
    }

    #[test]
    fn heterogeneous_sites() {
        let sites = [
            SiteSpec {
                nodes: 1,
                lan_latency: Millis::new(0.5),
                lan_capacity: Bandwidth::from_mbps(622.0),
            },
            SiteSpec {
                nodes: 3,
                lan_latency: Millis::new(2.0),
                lan_capacity: Bandwidth::from_mbps(10.0),
            },
        ];
        let t = Topology::new(&sites, |_, _| {
            (Millis::new(20.0), Bandwidth::from_mbps(45.0))
        });
        assert_eq!(t.nodes(), 4);
        let e = t.end_to_end(0, 1).unwrap();
        assert!((e.startup.as_ms() - 22.5).abs() < 1e-9);
        assert_eq!(e.bandwidth.as_mbps(), 10.0); // slow LAN bottleneck
    }

    #[test]
    #[should_panic(expected = "no nodes")]
    fn empty_site_rejected() {
        let _ = Topology::new(
            &[SiteSpec {
                nodes: 0,
                lan_latency: Millis::ZERO,
                lan_capacity: Bandwidth::from_kbps(1.0),
            }],
            |_, _| (Millis::ZERO, Bandwidth::from_kbps(1.0)),
        );
    }
}

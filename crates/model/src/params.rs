//! Dense per-pair network parameter tables.
//!
//! [`NetParams`] is the exchange format between the directory service and
//! the schedulers: for every ordered processor pair `(i, j)` it stores the
//! current estimate `(T_ij, B_ij)`. Diagonal entries are local memory
//! copies and are never consulted (the cost model short-circuits them to
//! zero, per the paper's §4.2 assumption).

use crate::cost::LinkEstimate;
use crate::units::{Bandwidth, Bytes, Millis};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense `P×P` table of link estimates.
///
/// Storage is row-major over *senders*: `estimate(src, dst)` is the
/// performance of the path used by messages from `src` to `dst`.
/// Estimates need not be symmetric (WAN routes rarely are).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetParams {
    p: usize,
    entries: Vec<LinkEstimate>,
}

impl NetParams {
    /// Builds a table where every off-diagonal pair shares one estimate.
    pub fn uniform(p: usize, startup: Millis, bandwidth: Bandwidth) -> Self {
        assert!(p >= 1, "need at least one processor");
        let e = LinkEstimate::new(startup, bandwidth);
        NetParams {
            p,
            entries: vec![e; p * p],
        }
    }

    /// Builds a table from a function of `(src, dst)`. The function is
    /// also invoked for the diagonal so callers can keep it total, but
    /// diagonal values are never used by the cost model.
    pub fn from_fn(p: usize, mut f: impl FnMut(usize, usize) -> LinkEstimate) -> Self {
        assert!(p >= 1, "need at least one processor");
        let mut entries = Vec::with_capacity(p * p);
        for src in 0..p {
            for dst in 0..p {
                entries.push(f(src, dst));
            }
        }
        NetParams { p, entries }
    }

    /// Builds a table from explicit startup (ms) and bandwidth (kbit/s)
    /// matrices, as published by a directory like GUSTO's.
    ///
    /// Diagonal bandwidth entries may be zero in the source tables (the
    /// GUSTO tables leave them blank); they are replaced by a large
    /// sentinel since local copies are free anyway.
    pub fn from_matrices(startup_ms: &[Vec<f64>], bandwidth_kbps: &[Vec<f64>]) -> Self {
        let p = startup_ms.len();
        assert!(p >= 1, "need at least one processor");
        assert_eq!(bandwidth_kbps.len(), p, "matrix sizes differ");
        for r in 0..p {
            assert_eq!(startup_ms[r].len(), p, "startup matrix is not square");
            assert_eq!(bandwidth_kbps[r].len(), p, "bandwidth matrix is not square");
        }
        Self::from_fn(p, |src, dst| {
            if src == dst {
                LinkEstimate::new(Millis::ZERO, Bandwidth::from_kbps(1e12))
            } else {
                LinkEstimate::new(
                    Millis::new(startup_ms[src][dst]),
                    Bandwidth::from_kbps(bandwidth_kbps[src][dst]),
                )
            }
        })
    }

    /// Number of processors.
    #[inline]
    pub fn len(&self) -> usize {
        self.p
    }

    /// True if the table is empty (never constructible; kept for API
    /// symmetry with collections).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.p == 0
    }

    /// The estimate for the ordered pair `(src, dst)`.
    #[inline]
    pub fn estimate(&self, src: usize, dst: usize) -> LinkEstimate {
        self.entries[src * self.p + dst]
    }

    /// Overwrites the estimate for `(src, dst)`.
    #[inline]
    pub fn set_estimate(&mut self, src: usize, dst: usize, e: LinkEstimate) {
        self.entries[src * self.p + dst] = e;
    }

    /// Applies a multiplicative factor to the bandwidth of a single
    /// directed pair (load injection / variation).
    pub fn scale_bandwidth(&mut self, src: usize, dst: usize, factor: f64) {
        let e = self.estimate(src, dst);
        self.set_estimate(
            src,
            dst,
            LinkEstimate::new(e.startup, e.bandwidth.scaled(factor)),
        );
    }

    /// Applies a multiplicative factor to every off-diagonal bandwidth.
    pub fn scale_all_bandwidths(&mut self, factor: f64) {
        for src in 0..self.p {
            for dst in 0..self.p {
                if src != dst {
                    self.scale_bandwidth(src, dst, factor);
                }
            }
        }
    }

    /// Predicted message time for `m` bytes from `src` to `dst`
    /// (zero on the diagonal).
    #[inline]
    pub fn time(&self, src: usize, dst: usize, m: Bytes) -> Millis {
        if src == dst {
            Millis::ZERO
        } else {
            self.estimate(src, dst).message_time(m)
        }
    }

    /// Iterates over all ordered off-diagonal pairs with their estimates.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize, LinkEstimate)> + '_ {
        (0..self.p).flat_map(move |src| {
            (0..self.p)
                .filter(move |&dst| dst != src)
                .map(move |dst| (src, dst, self.estimate(src, dst)))
        })
    }

    /// Largest relative bandwidth change between two snapshots of the same
    /// system, e.g. to decide whether rescheduling is worthwhile (§6.3).
    pub fn max_relative_bandwidth_delta(&self, other: &NetParams) -> f64 {
        assert_eq!(self.p, other.p, "snapshots cover different systems");
        let mut worst = 0.0f64;
        for (src, dst, e) in self.pairs() {
            let b0 = e.bandwidth.as_kbps();
            let b1 = other.estimate(src, dst).bandwidth.as_kbps();
            worst = worst.max((b1 - b0).abs() / b0);
        }
        worst
    }
}

impl fmt::Display for NetParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "NetParams over {} processors:", self.p)?;
        for src in 0..self.p {
            for dst in 0..self.p {
                if src == dst {
                    write!(f, "      --      ")?;
                } else {
                    let e = self.estimate(src, dst);
                    write!(
                        f,
                        " {:5.1}ms/{:7.0}k",
                        e.startup.as_ms(),
                        e.bandwidth.as_kbps()
                    )?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_table_is_uniform() {
        let p = NetParams::uniform(4, Millis::new(10.0), Bandwidth::from_kbps(500.0));
        assert_eq!(p.len(), 4);
        for (_, _, e) in p.pairs() {
            assert_eq!(e.startup.as_ms(), 10.0);
            assert_eq!(e.bandwidth.as_kbps(), 500.0);
        }
        assert_eq!(p.pairs().count(), 12); // 4*3 off-diagonal pairs
    }

    #[test]
    fn from_fn_is_directional() {
        let p = NetParams::from_fn(3, |src, dst| {
            LinkEstimate::new(
                Millis::new((src * 10 + dst) as f64 + 1.0),
                Bandwidth::from_kbps(100.0),
            )
        });
        assert_eq!(p.estimate(2, 1).startup.as_ms(), 22.0);
        assert_eq!(p.estimate(1, 2).startup.as_ms(), 13.0);
    }

    #[test]
    fn from_matrices_roundtrip() {
        let s = vec![vec![0.0, 5.0], vec![7.0, 0.0]];
        let b = vec![vec![0.0, 100.0], vec![200.0, 0.0]];
        let p = NetParams::from_matrices(&s, &b);
        assert_eq!(p.estimate(0, 1).startup.as_ms(), 5.0);
        assert_eq!(p.estimate(1, 0).bandwidth.as_kbps(), 200.0);
        // Diagonal is free regardless of sentinel.
        assert_eq!(p.time(0, 0, Bytes::MB), Millis::ZERO);
    }

    #[test]
    fn scaling_affects_only_target_pair() {
        let mut p = NetParams::uniform(3, Millis::new(1.0), Bandwidth::from_kbps(100.0));
        p.scale_bandwidth(0, 2, 0.5);
        assert_eq!(p.estimate(0, 2).bandwidth.as_kbps(), 50.0);
        assert_eq!(p.estimate(2, 0).bandwidth.as_kbps(), 100.0);
        assert_eq!(p.estimate(0, 1).bandwidth.as_kbps(), 100.0);
    }

    #[test]
    fn scale_all_bandwidths_scales_everything() {
        let mut p = NetParams::uniform(3, Millis::new(1.0), Bandwidth::from_kbps(100.0));
        p.scale_all_bandwidths(2.0);
        for (_, _, e) in p.pairs() {
            assert_eq!(e.bandwidth.as_kbps(), 200.0);
        }
    }

    #[test]
    fn max_relative_delta_detects_change() {
        let a = NetParams::uniform(3, Millis::new(1.0), Bandwidth::from_kbps(100.0));
        let mut b = a.clone();
        assert_eq!(a.max_relative_bandwidth_delta(&b), 0.0);
        b.scale_bandwidth(1, 2, 1.5);
        assert!((a.max_relative_bandwidth_delta(&b) - 0.5).abs() < 1e-12);
        b.scale_bandwidth(2, 0, 0.2);
        assert!((a.max_relative_bandwidth_delta(&b) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn display_renders_without_panic() {
        let p = NetParams::uniform(2, Millis::new(1.0), Bandwidth::from_kbps(100.0));
        let s = format!("{p}");
        assert!(s.contains("2 processors"));
    }
}

//! The six classic mapping heuristics.

use crate::etc::EtcMatrix;

/// Which mapping rule to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Heuristic {
    /// Opportunistic load balancing.
    Olb,
    /// Minimum execution time (load-oblivious).
    Met,
    /// Minimum completion time.
    Mct,
    /// Min-min batch heuristic.
    MinMin,
    /// Max-min batch heuristic.
    MaxMin,
    /// Sufferage batch heuristic.
    Sufferage,
}

impl Heuristic {
    /// All heuristics, for sweeps.
    pub const ALL: [Heuristic; 6] = [
        Heuristic::Olb,
        Heuristic::Met,
        Heuristic::Mct,
        Heuristic::MinMin,
        Heuristic::MaxMin,
        Heuristic::Sufferage,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Heuristic::Olb => "olb",
            Heuristic::Met => "met",
            Heuristic::Mct => "mct",
            Heuristic::MinMin => "min-min",
            Heuristic::MaxMin => "max-min",
            Heuristic::Sufferage => "sufferage",
        }
    }
}

/// The result of mapping every task.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// `assignment[task]` = machine.
    pub assignment: Vec<usize>,
    /// Per-machine finish time.
    pub machine_finish: Vec<f64>,
    /// Overall makespan.
    pub makespan: f64,
}

impl Mapping {
    fn from_assignment(etc: &EtcMatrix, assignment: Vec<usize>) -> Self {
        let mut machine_finish = vec![0.0; etc.machines()];
        for (t, &m) in assignment.iter().enumerate() {
            machine_finish[m] += etc.time(t, m);
        }
        let makespan = machine_finish.iter().copied().fold(0.0, f64::max);
        Mapping {
            assignment,
            machine_finish,
            makespan,
        }
    }

    /// Ratio to the ETC lower bound (≥ 1).
    pub fn lb_ratio(&self, etc: &EtcMatrix) -> f64 {
        self.makespan / etc.lower_bound()
    }
}

/// Maps all tasks with the chosen heuristic.
///
/// Immediate-mode rules (OLB/MET/MCT) process tasks in index order —
/// "the relative performance of various mapping algorithms is independent
/// of sizable variances in runtime predictions" \[1\] used arrival order
/// the same way. Batch rules (min-min/max-min/sufferage) re-evaluate the
/// whole unmapped set each commit.
pub fn map_tasks(etc: &EtcMatrix, heuristic: Heuristic) -> Mapping {
    let tasks = etc.tasks();
    let machines = etc.machines();
    let mut avail = vec![0.0f64; machines];
    let mut assignment = vec![usize::MAX; tasks];

    let commit = |t: usize, m: usize, avail: &mut Vec<f64>, assignment: &mut Vec<usize>| {
        avail[m] += etc.time(t, m);
        assignment[t] = m;
    };

    match heuristic {
        Heuristic::Olb => {
            for t in 0..tasks {
                let m = (0..machines)
                    .min_by(|&a, &b| avail[a].total_cmp(&avail[b]).then(a.cmp(&b)))
                    .expect("machines");
                commit(t, m, &mut avail, &mut assignment);
            }
        }
        Heuristic::Met => {
            for t in 0..tasks {
                commit(t, etc.best_machine(t), &mut avail, &mut assignment);
            }
        }
        Heuristic::Mct => {
            for t in 0..tasks {
                let m = (0..machines)
                    .min_by(|&a, &b| {
                        (avail[a] + etc.time(t, a))
                            .total_cmp(&(avail[b] + etc.time(t, b)))
                            .then(a.cmp(&b))
                    })
                    .expect("machines");
                commit(t, m, &mut avail, &mut assignment);
            }
        }
        Heuristic::MinMin | Heuristic::MaxMin | Heuristic::Sufferage => {
            let mut unmapped: Vec<usize> = (0..tasks).collect();
            while !unmapped.is_empty() {
                // For each unmapped task: best and second-best completion.
                let mut pick: Option<(f64, usize, usize)> = None; // (key, task, machine)
                for &t in &unmapped {
                    let mut best = (f64::INFINITY, 0usize);
                    let mut second = f64::INFINITY;
                    for m in 0..machines {
                        let c = avail[m] + etc.time(t, m);
                        if c < best.0 {
                            second = best.0;
                            best = (c, m);
                        } else if c < second {
                            second = c;
                        }
                    }
                    let key = match heuristic {
                        Heuristic::MinMin => best.0,  // smallest best first
                        Heuristic::MaxMin => -best.0, // largest best first
                        Heuristic::Sufferage => {
                            if second.is_finite() {
                                -(second - best.0) // largest sufferage first
                            } else {
                                f64::NEG_INFINITY // single machine: any order
                            }
                        }
                        _ => unreachable!(),
                    };
                    let cand = (key, t, best.1);
                    pick = Some(match pick {
                        None => cand,
                        Some(p) => {
                            if (cand.0, cand.1) < (p.0, p.1) {
                                cand
                            } else {
                                p
                            }
                        }
                    });
                }
                let (_, t, m) = pick.expect("unmapped is non-empty");
                commit(t, m, &mut avail, &mut assignment);
                unmapped.retain(|&x| x != t);
            }
        }
    }

    debug_assert!(assignment.iter().all(|&m| m != usize::MAX));
    Mapping::from_assignment(etc, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etc::{generate, HeterogeneityClass};

    fn sample() -> EtcMatrix {
        generate(40, 6, HeterogeneityClass::Inconsistent, 20.0, 10.0, 11)
    }

    #[test]
    fn every_heuristic_maps_every_task() {
        let etc = sample();
        for h in Heuristic::ALL {
            let m = map_tasks(&etc, h);
            assert_eq!(m.assignment.len(), 40, "{}", h.name());
            assert!(m.assignment.iter().all(|&x| x < 6));
            assert!(m.makespan >= etc.lower_bound() - 1e-9, "{}", h.name());
            // Machine finish times are consistent with the assignment.
            let recomputed = Mapping::from_assignment(&etc, m.assignment.clone());
            assert_eq!(m, recomputed);
        }
    }

    #[test]
    fn met_ignores_load_and_pays_for_it_on_consistent_etc() {
        // On a consistent matrix MET piles everything on the globally
        // fastest machine — textbook pathology.
        let etc = generate(30, 5, HeterogeneityClass::Consistent, 5.0, 6.0, 3);
        let met = map_tasks(&etc, Heuristic::Met);
        assert!(
            met.assignment.iter().all(|&m| m == met.assignment[0]),
            "MET on consistent ETC uses one machine"
        );
        let mct = map_tasks(&etc, Heuristic::Mct);
        assert!(mct.makespan < met.makespan, "MCT must beat MET here");
    }

    #[test]
    fn batch_heuristics_beat_olb_on_average() {
        let mut olb_total = 0.0;
        let mut minmin_total = 0.0;
        let mut suff_total = 0.0;
        for seed in 0..10 {
            let etc = generate(50, 8, HeterogeneityClass::Inconsistent, 30.0, 10.0, seed);
            olb_total += map_tasks(&etc, Heuristic::Olb).makespan;
            minmin_total += map_tasks(&etc, Heuristic::MinMin).makespan;
            suff_total += map_tasks(&etc, Heuristic::Sufferage).makespan;
        }
        assert!(
            minmin_total < olb_total,
            "min-min {minmin_total} vs OLB {olb_total}"
        );
        assert!(
            suff_total < olb_total,
            "sufferage {suff_total} vs OLB {olb_total}"
        );
    }

    #[test]
    fn min_min_known_small_instance() {
        // 3 tasks, 2 machines.
        //        m0   m1
        // t0:     2    4
        // t1:     3    1
        // t2:    10   10
        let etc = EtcMatrix::from_fn(3, 2, |t, m| [[2.0, 4.0], [3.0, 1.0], [10.0, 10.0]][t][m]);
        let mm = map_tasks(&etc, Heuristic::MinMin);
        // Min-min commits t1→m1 (1), then t0→m0 (2), then t2→m0 or m1:
        // completions 12 vs 11 → m1. Makespan 11.
        assert_eq!(mm.assignment, vec![0, 1, 1]);
        assert_eq!(mm.makespan, 11.0);
        // Max-min commits t2 first (best 10), then fills the other
        // machine: t0→m0(2), t1: m0 → 2+3=5 vs m1 → 11: picks m0.
        let xm = map_tasks(&etc, Heuristic::MaxMin);
        assert_eq!(xm.assignment[2], 0);
        assert_eq!(xm.makespan, 10.0, "max-min wins when one task dominates");
    }

    #[test]
    fn sufferage_prefers_tasks_with_most_to_lose() {
        // t0 is nearly indifferent; t1 suffers hugely off its best
        // machine. Both prefer m0. Sufferage must give m0 to t1.
        let etc = EtcMatrix::from_fn(2, 2, |t, m| [[5.0, 6.0], [5.0, 50.0]][t][m]);
        let s = map_tasks(&etc, Heuristic::Sufferage);
        assert_eq!(s.assignment[1], 0, "the sufferer gets its machine");
        assert_eq!(s.assignment[0], 1);
        assert_eq!(s.makespan, 6.0);
        // Min-min (tie on completion 5, lower task id first) gives m0 to
        // t0; t1 then still prefers m0 (5+5=10 beats 50) and stacks on
        // it — worse than sufferage's 6, the heuristic's known weakness.
        let mm = map_tasks(&etc, Heuristic::MinMin);
        assert_eq!(mm.assignment, vec![0, 0]);
        assert_eq!(mm.makespan, 10.0);
    }

    #[test]
    fn single_machine_degenerates() {
        let etc = EtcMatrix::from_fn(4, 1, |t, _| (t + 1) as f64);
        for h in Heuristic::ALL {
            let m = map_tasks(&etc, h);
            assert_eq!(m.makespan, 10.0, "{}", h.name());
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = Heuristic::ALL.iter().map(|h| h.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}

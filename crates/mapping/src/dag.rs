//! Task-graph (DAG) scheduling onto heterogeneous machines.
//!
//! The paper's §2 describes VDCE, where "a GUI allows library routines or
//! user developed routines to be combined into an application task
//! graph. The task graph is then interpreted and configured to execute on
//! currently available resources." This module implements that
//! configuration step: list scheduling of a precedence DAG onto
//! heterogeneous machines with inter-machine communication costs — the
//! classic heterogeneous list-scheduling recipe (upward-rank priorities +
//! earliest-finish-time placement, as in DLS/HEFT).
//!
//! Communication: if task `u` (on machine `a`) feeds task `v` (on
//! machine `b`), the edge's data must cross the network — priced with
//! the paper's `T_ab + bytes/B_ab` model via any
//! [`adaptcomm_model::cost::CostModel`]. Same-machine edges are free.

use crate::etc::EtcMatrix;
use adaptcomm_model::cost::CostModel;
use adaptcomm_model::units::Bytes;

/// A directed acyclic task graph with data volumes on edges.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    /// `edges[v]` = (predecessor, bytes shipped from it to `v`).
    preds: Vec<Vec<(usize, Bytes)>>,
    succs: Vec<Vec<(usize, Bytes)>>,
}

impl TaskGraph {
    /// An edgeless graph over `n` tasks.
    pub fn new(n: usize) -> Self {
        TaskGraph {
            preds: vec![Vec::new(); n],
            succs: vec![Vec::new(); n],
        }
    }

    /// Number of tasks.
    pub fn tasks(&self) -> usize {
        self.preds.len()
    }

    /// Adds a dependency `u → v` shipping `bytes`.
    pub fn add_edge(&mut self, u: usize, v: usize, bytes: Bytes) -> &mut Self {
        let n = self.tasks();
        assert!(u < n && v < n, "edge ({u},{v}) out of range");
        assert_ne!(u, v, "self-dependency");
        self.preds[v].push((u, bytes));
        self.succs[u].push((v, bytes));
        self
    }

    /// The predecessors of `v`.
    pub fn preds(&self, v: usize) -> &[(usize, Bytes)] {
        &self.preds[v]
    }

    /// A topological order; panics if the graph has a cycle.
    pub fn topological_order(&self) -> Vec<usize> {
        let n = self.tasks();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.preds[v].len()).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &(w, _) in &self.succs[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        assert_eq!(order.len(), n, "task graph contains a cycle");
        order
    }

    /// Upward ranks: `rank(v) = w̄(v) + max over successors of
    /// (c̄(v,w) + rank(w))` with mean execution and communication costs —
    /// the standard heterogeneous list-scheduling priority.
    pub fn upward_ranks<M: CostModel>(&self, etc: &EtcMatrix, net: &M) -> Vec<f64> {
        let n = self.tasks();
        assert_eq!(etc.tasks(), n, "ETC does not match the graph");
        let machines = etc.machines();
        let mean_exec = |v: usize| -> f64 {
            (0..machines).map(|m| etc.time(v, m)).sum::<f64>() / machines as f64
        };
        // Mean communication cost per byte volume: average over distinct
        // machine pairs.
        let mean_comm = |bytes: Bytes| -> f64 {
            if machines < 2 {
                return 0.0;
            }
            let mut total = 0.0;
            let mut count = 0usize;
            for a in 0..machines {
                for b in 0..machines {
                    if a != b {
                        total += net.message_time(a, b, bytes).as_ms();
                        count += 1;
                    }
                }
            }
            total / count as f64
        };
        let order = self.topological_order();
        let mut rank = vec![0.0f64; n];
        for &v in order.iter().rev() {
            let tail = self.succs[v]
                .iter()
                .map(|&(w, bytes)| mean_comm(bytes) + rank[w])
                .fold(0.0f64, f64::max);
            rank[v] = mean_exec(v) + tail;
        }
        rank
    }
}

/// One placed task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacedTask {
    /// The machine it runs on.
    pub machine: usize,
    /// Execution start.
    pub start: f64,
    /// Execution finish.
    pub finish: f64,
}

/// A complete DAG schedule.
#[derive(Debug, Clone)]
pub struct DagSchedule {
    /// Placement per task.
    pub placement: Vec<PlacedTask>,
    /// Overall makespan.
    pub makespan: f64,
}

/// List-schedules the DAG: tasks in decreasing upward rank, each placed
/// on the machine minimizing its earliest finish time, accounting for
/// machine availability and cross-machine data arrival.
///
/// (Insertion-free variant: each machine runs its tasks back to back in
/// assignment order; simpler than gap insertion and within the same
/// approximation family.)
pub fn schedule_dag<M: CostModel>(graph: &TaskGraph, etc: &EtcMatrix, net: &M) -> DagSchedule {
    let n = graph.tasks();
    let machines = etc.machines();
    assert_eq!(net.len(), machines, "network does not match machine count");
    let ranks = graph.upward_ranks(etc, net);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| ranks[b].total_cmp(&ranks[a]).then(a.cmp(&b)));

    let mut machine_avail = vec![0.0f64; machines];
    let mut placement: Vec<Option<PlacedTask>> = vec![None; n];
    for &v in &order {
        // All predecessors are placed first: upward rank strictly
        // decreases along edges (rank(u) ≥ exec(u) + comm + rank(v)).
        let mut best: Option<(f64, f64, usize)> = None; // (finish, start, machine)
        for m in 0..machines {
            let mut ready = machine_avail[m];
            for &(u, bytes) in graph.preds(v) {
                let pu = placement[u].expect("predecessors are ranked higher");
                let arrival = if pu.machine == m {
                    pu.finish
                } else {
                    pu.finish + net.message_time(pu.machine, m, bytes).as_ms()
                };
                ready = ready.max(arrival);
            }
            let finish = ready + etc.time(v, m);
            let cand = (finish, ready, m);
            best = Some(match best {
                None => cand,
                Some(b) => {
                    if (cand.0, cand.2) < (b.0, b.2) {
                        cand
                    } else {
                        b
                    }
                }
            });
        }
        let (finish, start, m) = best.expect("at least one machine");
        machine_avail[m] = finish;
        placement[v] = Some(PlacedTask {
            machine: m,
            start,
            finish,
        });
    }

    let placement: Vec<PlacedTask> = placement
        .into_iter()
        .map(|p| p.expect("all tasks placed"))
        .collect();
    let makespan = placement.iter().map(|p| p.finish).fold(0.0, f64::max);
    DagSchedule {
        placement,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptcomm_model::params::NetParams;
    use adaptcomm_model::units::{Bandwidth, Millis};

    fn net(machines: usize, startup_ms: f64) -> NetParams {
        NetParams::uniform(
            machines,
            Millis::new(startup_ms),
            Bandwidth::from_kbps(8_000.0),
        )
    }

    /// Diamond: 0 → {1, 2} → 3.
    fn diamond(bytes: u64) -> TaskGraph {
        let mut g = TaskGraph::new(4);
        g.add_edge(0, 1, Bytes::new(bytes))
            .add_edge(0, 2, Bytes::new(bytes))
            .add_edge(1, 3, Bytes::new(bytes))
            .add_edge(2, 3, Bytes::new(bytes));
        g
    }

    #[test]
    fn topological_order_is_valid() {
        let g = diamond(1_000);
        let order = g.topological_order();
        let pos = |v: usize| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(0) < pos(1) && pos(0) < pos(2));
        assert!(pos(1) < pos(3) && pos(2) < pos(3));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycles_detected() {
        let mut g = TaskGraph::new(2);
        g.add_edge(0, 1, Bytes::ZERO).add_edge(1, 0, Bytes::ZERO);
        let _ = g.topological_order();
    }

    #[test]
    fn schedule_respects_dependencies_and_communication() {
        let g = diamond(8_000); // 8 kB edges: 8ms transfer + startup
        let etc = EtcMatrix::from_fn(4, 2, |_, _| 10.0);
        let s = schedule_dag(&g, &etc, &net(2, 2.0));
        // Dependencies: each task starts after its preds' data arrives.
        for v in 0..4 {
            for &(u, bytes) in g.preds(v) {
                let (pu, pv) = (s.placement[u], s.placement[v]);
                let arrival = if pu.machine == pv.machine {
                    pu.finish
                } else {
                    pu.finish + net(2, 2.0).time(pu.machine, pv.machine, bytes).as_ms()
                };
                assert!(
                    pv.start >= arrival - 1e-9,
                    "task {v} started before its input"
                );
            }
        }
        // Machines never run two tasks at once.
        for m in 0..2 {
            let mut on_m: Vec<_> = s.placement.iter().filter(|p| p.machine == m).collect();
            on_m.sort_by(|a, b| a.start.total_cmp(&b.start));
            for w in on_m.windows(2) {
                assert!(w[0].finish <= w[1].start + 1e-9);
            }
        }
    }

    #[test]
    fn expensive_communication_serializes_on_one_machine() {
        // With brutal comm costs, the scheduler should keep the chain on
        // one machine even though a second is idle.
        let g = diamond(1_000_000); // 1MB edges over slow startup-heavy net
        let etc = EtcMatrix::from_fn(4, 2, |_, _| 5.0);
        let slow = NetParams::uniform(2, Millis::new(500.0), Bandwidth::from_kbps(100.0));
        let s = schedule_dag(&g, &etc, &slow);
        let m0 = s.placement[0].machine;
        assert!(
            s.placement.iter().all(|p| p.machine == m0),
            "huge comm costs must keep the diamond on one machine"
        );
        assert_eq!(s.makespan, 20.0); // 4 × 5ms, zero comm
    }

    #[test]
    fn free_communication_exploits_parallelism() {
        let g = diamond(0); // zero-byte edges
        let etc = EtcMatrix::from_fn(4, 2, |_, _| 10.0);
        let free = NetParams::uniform(2, Millis::ZERO, Bandwidth::from_kbps(1e9));
        let s = schedule_dag(&g, &etc, &free);
        // 0, then 1 ∥ 2, then 3: makespan 30 (not 40).
        assert_eq!(s.makespan, 30.0);
        assert_ne!(s.placement[1].machine, s.placement[2].machine);
    }

    #[test]
    fn heterogeneous_machines_attract_their_specialists() {
        // Task 1 is 10× faster on machine 1; no dependencies.
        let mut g = TaskGraph::new(2);
        let _ = &mut g; // no edges
        let etc = EtcMatrix::from_fn(2, 2, |t, m| if t == 1 && m == 1 { 2.0 } else { 20.0 });
        let s = schedule_dag(&g, &etc, &net(2, 1.0));
        assert_eq!(s.placement[1].machine, 1);
        assert_eq!(s.makespan, 20.0);
    }

    #[test]
    fn upward_ranks_decrease_along_edges() {
        let g = diamond(10_000);
        let etc = EtcMatrix::from_fn(4, 3, |t, m| ((t + m) % 5 + 1) as f64 * 3.0);
        let ranks = g.upward_ranks(&etc, &net(3, 5.0));
        for v in 0..4 {
            for &(u, _) in g.preds(v) {
                assert!(ranks[u] > ranks[v], "rank({u}) must exceed rank({v})");
            }
        }
    }
}

//! MSHN-style task mapping onto heterogeneous machines.
//!
//! "The Management System for Heterogeneous Networks (MSHN) project …
//! is designing and implementing a Resource Management System for
//! distributed heterogeneous and shared environments. … Various task
//! mapping and scheduling algorithms are being developed [1, 20]. Our
//! research is a part of the MSHN effort." (paper §2)
//!
//! This crate implements that sister problem: map a bag of independent
//! tasks onto heterogeneous machines given an **ETC** (expected time to
//! compute) matrix, minimizing makespan. It provides the six classic
//! heuristics evaluated in the MSHN literature (Maheswaran/Siegel,
//! Armstrong/Hensgen/Kidd; later canonized in the Braun benchmark):
//!
//! | Heuristic | Rule |
//! |---|---|
//! | OLB | next task → machine that becomes *available* first |
//! | MET | next task → machine with minimum execution time (ignores load) |
//! | MCT | next task → machine with minimum *completion* time |
//! | Min-min | among all unmapped tasks, commit the (task, machine) pair with smallest best completion |
//! | Max-min | like min-min, but commit the task whose *best* completion is largest |
//! | Sufferage | commit the task that would *suffer* most if denied its best machine |
//!
//! [`etc`] generates the classic consistent / semi-consistent /
//! inconsistent ETC heterogeneity classes.

//!
//! # Example
//!
//! ```
//! use adaptcomm_mapping::{etc, map_tasks, Heuristic, HeterogeneityClass};
//!
//! let matrix = etc::generate(30, 5, HeterogeneityClass::Inconsistent, 20.0, 8.0, 42);
//! let minmin = map_tasks(&matrix, Heuristic::MinMin);
//! let olb = map_tasks(&matrix, Heuristic::Olb);
//! assert!(minmin.makespan >= matrix.lower_bound());
//! // The batch heuristic typically beats opportunistic load balancing.
//! assert!(minmin.makespan <= olb.makespan * 1.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Index-based loops mirror the published pseudocode of the ported
// algorithms; iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]

pub mod dag;
pub mod etc;
pub mod heuristics;

pub use dag::{schedule_dag, DagSchedule, TaskGraph};
pub use etc::{EtcMatrix, HeterogeneityClass};
pub use heuristics::{map_tasks, Heuristic, Mapping};

//! Expected-time-to-compute (ETC) matrices and their generators.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A `tasks × machines` matrix of expected execution times (ms).
#[derive(Debug, Clone, PartialEq)]
pub struct EtcMatrix {
    tasks: usize,
    machines: usize,
    /// Row-major: `etc[t * machines + m]`.
    etc: Vec<f64>,
}

impl EtcMatrix {
    /// Builds from a function of `(task, machine)`.
    pub fn from_fn(tasks: usize, machines: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        assert!(
            tasks >= 1 && machines >= 1,
            "need at least one task and machine"
        );
        let mut etc = Vec::with_capacity(tasks * machines);
        for t in 0..tasks {
            for m in 0..machines {
                let v = f(t, m);
                assert!(
                    v.is_finite() && v > 0.0,
                    "etc[{t}][{m}] = {v} must be positive"
                );
                etc.push(v);
            }
        }
        EtcMatrix {
            tasks,
            machines,
            etc,
        }
    }

    /// Number of tasks.
    pub fn tasks(&self) -> usize {
        self.tasks
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Execution time of `task` on `machine`.
    #[inline]
    pub fn time(&self, task: usize, machine: usize) -> f64 {
        self.etc[task * self.machines + machine]
    }

    /// The machine with minimum execution time for `task` (ties to the
    /// lower index).
    pub fn best_machine(&self, task: usize) -> usize {
        (0..self.machines)
            .min_by(|&a, &b| self.time(task, a).total_cmp(&self.time(task, b)))
            .expect("at least one machine")
    }

    /// A crude makespan lower bound: the larger of (a) the most
    /// demanding single task on its best machine, and (b) ideal work
    /// sharing — total best-machine work divided by machine count.
    pub fn lower_bound(&self) -> f64 {
        let mut max_single: f64 = 0.0;
        let mut total_best = 0.0;
        for t in 0..self.tasks {
            let best = self.time(t, self.best_machine(t));
            max_single = max_single.max(best);
            total_best += best;
        }
        max_single.max(total_best / self.machines as f64)
    }
}

/// The classic ETC heterogeneity classes (Braun et al. structure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeterogeneityClass {
    /// Machine rankings agree for every task (machine A faster than B
    /// for one task ⇒ faster for all).
    Consistent,
    /// Rankings are independent per task.
    Inconsistent,
    /// Even-indexed machine columns are consistent, odd ones random.
    SemiConsistent,
}

/// Generates an ETC matrix: `base[t] · mult[t][m]` where `base` models
/// task heterogeneity and `mult` machine heterogeneity, arranged per the
/// requested class. Deterministic in `seed`.
pub fn generate(
    tasks: usize,
    machines: usize,
    class: HeterogeneityClass,
    task_spread: f64,
    machine_spread: f64,
    seed: u64,
) -> EtcMatrix {
    assert!(
        task_spread >= 1.0 && machine_spread >= 1.0,
        "spreads are ≥ 1 multipliers"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<f64> = (0..tasks)
        .map(|_| rng.random_range(10.0..10.0 * task_spread))
        .collect();
    // Per-machine global speed factors for the consistent component.
    let mut machine_factor: Vec<f64> = (0..machines)
        .map(|_| rng.random_range(1.0..machine_spread))
        .collect();
    machine_factor.sort_by(f64::total_cmp);

    EtcMatrix::from_fn(tasks, machines, |t, m| {
        let consistent = base[t] * machine_factor[m];
        match class {
            HeterogeneityClass::Consistent => consistent,
            HeterogeneityClass::Inconsistent => {
                // Fresh multiplier per cell, reproducible via hashing.
                let h = hash2(seed, (t * machines + m) as u64);
                base[t] * (1.0 + (h % 1_000) as f64 / 1_000.0 * (machine_spread - 1.0))
            }
            HeterogeneityClass::SemiConsistent => {
                if m % 2 == 0 {
                    consistent
                } else {
                    let h = hash2(seed ^ 0xABCD, (t * machines + m) as u64);
                    base[t] * (1.0 + (h % 1_000) as f64 / 1_000.0 * (machine_spread - 1.0))
                }
            }
        }
    })
}

fn hash2(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E3779B97F4A7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_best_machine() {
        let e = EtcMatrix::from_fn(2, 3, |t, m| (t * 3 + m + 1) as f64);
        assert_eq!(e.tasks(), 2);
        assert_eq!(e.machines(), 3);
        assert_eq!(e.time(1, 2), 6.0);
        assert_eq!(e.best_machine(0), 0);
        assert_eq!(e.best_machine(1), 0);
    }

    #[test]
    fn lower_bound_components() {
        // One dominant task.
        let e = EtcMatrix::from_fn(2, 2, |t, _| if t == 0 { 100.0 } else { 1.0 });
        assert_eq!(e.lower_bound(), 100.0);
        // Many equal tasks: sharing bound dominates.
        let e = EtcMatrix::from_fn(10, 2, |_, _| 4.0);
        assert_eq!(e.lower_bound(), 20.0); // 40 total / 2 machines
    }

    #[test]
    fn consistent_class_preserves_machine_ranking() {
        let e = generate(20, 5, HeterogeneityClass::Consistent, 10.0, 8.0, 42);
        for t in 0..20 {
            for m in 0..4 {
                assert!(
                    e.time(t, m) <= e.time(t, m + 1) + 1e-9,
                    "consistent ETC must rank machines identically for every task"
                );
            }
        }
    }

    #[test]
    fn inconsistent_class_breaks_ranking_somewhere() {
        let e = generate(30, 6, HeterogeneityClass::Inconsistent, 10.0, 8.0, 42);
        let ranking_of = |t: usize| {
            let mut idx: Vec<usize> = (0..6).collect();
            idx.sort_by(|&a, &b| e.time(t, a).total_cmp(&e.time(t, b)));
            idx
        };
        let first = ranking_of(0);
        assert!(
            (1..30).any(|t| ranking_of(t) != first),
            "30 tasks with identical machine rankings is not inconsistent"
        );
    }

    #[test]
    fn generation_is_reproducible() {
        let a = generate(8, 4, HeterogeneityClass::SemiConsistent, 5.0, 5.0, 7);
        let b = generate(8, 4, HeterogeneityClass::SemiConsistent, 5.0, 5.0, 7);
        assert_eq!(a, b);
        let c = generate(8, 4, HeterogeneityClass::SemiConsistent, 5.0, 5.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_etc_rejected() {
        let _ = EtcMatrix::from_fn(1, 1, |_, _| 0.0);
    }
}

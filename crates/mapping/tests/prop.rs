//! Property tests for the mapping heuristics.

use adaptcomm_mapping::{etc, map_tasks, EtcMatrix, HeterogeneityClass, Heuristic};
use proptest::prelude::*;

fn etc_matrix() -> impl Strategy<Value = EtcMatrix> {
    (
        1usize..30,
        1usize..8,
        0u64..1000,
        prop_oneof![
            Just(HeterogeneityClass::Consistent),
            Just(HeterogeneityClass::Inconsistent),
            Just(HeterogeneityClass::SemiConsistent),
        ],
    )
        .prop_map(|(t, m, seed, class)| etc::generate(t, m, class, 15.0, 8.0, seed))
}

proptest! {
    /// Every heuristic produces a complete assignment whose makespan is
    /// at least the lower bound and (except load-oblivious MET) within a
    /// generous sanity ceiling.
    #[test]
    fn mappings_are_complete_and_bounded(e in etc_matrix()) {
        // Universal ceiling: every task on its *worst* machine, all on
        // one node. No assignment can exceed it.
        let worst_serial: f64 = (0..e.tasks())
            .map(|t| (0..e.machines()).map(|m| e.time(t, m)).fold(0.0f64, f64::max))
            .sum();
        for h in Heuristic::ALL {
            let m = map_tasks(&e, h);
            prop_assert_eq!(m.assignment.len(), e.tasks());
            prop_assert!(m.assignment.iter().all(|&x| x < e.machines()));
            prop_assert!(m.makespan >= e.lower_bound() - 1e-9, "{}", h.name());
            prop_assert!(m.makespan <= worst_serial + 1e-6, "{}", h.name());
        }
    }

    /// Mapping is deterministic.
    #[test]
    fn mct_is_deterministically_reproducible(e in etc_matrix()) {
        let a = map_tasks(&e, Heuristic::Mct);
        let b = map_tasks(&e, Heuristic::Mct);
        prop_assert_eq!(a, b);
    }

    /// Min-min stays within a loose universal list-scheduling bound.
    #[test]
    fn minmin_within_list_scheduling_bound(e in etc_matrix()) {
        let m = map_tasks(&e, Heuristic::MinMin);
        prop_assert!(m.makespan <= 2.0 * e.machines() as f64 * e.lower_bound() + 1e-6);
    }
}

//! Wire protocol: length-prefixed frames carrying hand-rolled JSON.
//!
//! # Frame grammar
//!
//! Every message travels in one frame sharing the runtime transport's
//! layout ([`adaptcomm_runtime::tcp::write_frame`]): a 16-byte header —
//! two little-endian `u64`s, here `(PROTO_VERSION, payload length)` —
//! followed by the payload. The reader rejects unknown versions and
//! payloads over [`MAX_FRAME`] *before* allocating, so a corrupt or
//! hostile header cannot balloon memory.
//!
//! # Payload grammar
//!
//! The payload is a single-line JSON object, written by hand (the
//! perfgate writer idiom: `{:?}` formatting for `f64`, which
//! round-trips exactly) and parsed with the obs crate's
//! recursive-descent [`adaptcomm_obs::json::Value`] parser — no serde
//! anywhere. Requests:
//!
//! ```json
//! {"type":"plan","tenant":"alice","algorithm":"matching-max",
//!  "fingerprint":"<16 hex digits>", "matrix":[[0.0,1.5],[2.0,0.0]],
//!  "qos":{"deadline_ms":5.0,"priority":3,"critical":[[0,1]]},
//!  "trace":{"id":"<16 hex>","span":"<16 hex>"}}
//! {"type":"shutdown"}
//! ```
//!
//! `matrix` and `fingerprint` are each optional (a fingerprint-only
//! request probes the cache without shipping `P²` cells; the server
//! answers `need-matrix` on a miss). Fingerprints are hex *strings*
//! because JSON numbers are `f64` and lose `u64` precision; trace and
//! span ids follow the same convention. `trace` is optional and
//! version-tolerant both ways: parsers ignore unknown fields, so an
//! old client's request simply has no trace (the server starts a
//! fresh root) and an old client never sees the echoed `trace_id`.
//! Responses:
//!
//! ```json
//! {"type":"plan","status":"ok","cache":"cold|hit|warm","epoch":1,
//!  "served_seq":3,"plan":{"order":[[1,2],[0,2],[0,1]],"completion_ms":12.5},
//!  "stats":{"round1_warm":false,"round1_col_scans":96,
//!           "total_col_scans":480,"service_ms":3.25},
//!  "trace_id":"<16 hex>"}
//! {"type":"plan","status":"need-matrix"}
//! {"type":"plan","status":"rejected","retry_after_ms":10.5,"detail":"..."}
//! {"type":"plan","status":"error","detail":"..."}
//! {"type":"bye"}
//! ```
//!
//! Every decode failure is a typed [`ProtocolError`]; no input —
//! truncated, oversized, garbage, or split at any byte — panics.

use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_core::schedule::SendOrder;
use adaptcomm_obs::json::Value;
use adaptcomm_obs::trace::{id_from_hex, id_to_hex};
use adaptcomm_obs::TraceContext;
use std::fmt;

/// Protocol version carried in every frame header's tag slot.
pub const PROTO_VERSION: u64 = 1;

/// Ceiling on one payload: 16 MiB holds a P≈1000 matrix with room.
pub const MAX_FRAME: u64 = 16 << 20;

/// Every way a frame or payload can fail to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// Claimed payload length.
        len: u64,
        /// The enforced ceiling.
        max: u64,
    },
    /// The frame header's version tag is not [`PROTO_VERSION`].
    BadVersion {
        /// The tag that was received.
        tag: u64,
    },
    /// The stream ended mid-frame.
    Truncated {
        /// Bytes still buffered.
        have: usize,
        /// Bytes the pending frame needs.
        need: usize,
    },
    /// The payload is not a well-formed message.
    Malformed {
        /// What failed to parse.
        detail: String,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            ProtocolError::BadVersion { tag } => {
                write!(
                    f,
                    "unknown protocol version {tag} (expected {PROTO_VERSION})"
                )
            }
            ProtocolError::Truncated { have, need } => {
                write!(f, "stream ended mid-frame ({have} of {need} bytes)")
            }
            ProtocolError::Malformed { detail } => write!(f, "malformed payload: {detail}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

fn malformed(detail: impl Into<String>) -> ProtocolError {
    ProtocolError::Malformed {
        detail: detail.into(),
    }
}

/// Incremental frame decoder: feed arbitrary byte chunks with
/// [`FrameReader::push`], drain whole payloads with
/// [`FrameReader::next_frame`]. Split reads are the normal case — a
/// frame only emerges once every byte has arrived.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a chunk of received bytes.
    pub fn push(&mut self, chunk: &[u8]) {
        // Compact lazily so long sessions don't grow without bound.
        if self.start > 0 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// The next complete payload, `Ok(None)` while one is still
    /// partial, or a typed error on a bad header.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ProtocolError> {
        let pending = &self.buf[self.start..];
        if pending.len() < 16 {
            return Ok(None);
        }
        let tag = u64::from_le_bytes(pending[..8].try_into().expect("8 bytes"));
        let len = u64::from_le_bytes(pending[8..16].try_into().expect("8 bytes"));
        if tag != PROTO_VERSION {
            return Err(ProtocolError::BadVersion { tag });
        }
        if len > MAX_FRAME {
            return Err(ProtocolError::Oversized {
                len,
                max: MAX_FRAME,
            });
        }
        let total = 16 + len as usize;
        if pending.len() < total {
            return Ok(None);
        }
        let payload = pending[16..total].to_vec();
        self.start += total;
        Ok(Some(payload))
    }

    /// Call at end-of-stream: leftover bytes mean a truncated frame.
    pub fn finish(&self) -> Result<(), ProtocolError> {
        let pending = &self.buf[self.start..];
        if pending.is_empty() {
            return Ok(());
        }
        let need = if pending.len() >= 16 {
            16 + u64::from_le_bytes(pending[8..16].try_into().expect("8 bytes")) as usize
        } else {
            16
        };
        Err(ProtocolError::Truncated {
            have: pending.len(),
            need,
        })
    }
}

/// Builds one complete frame around a payload (the pure counterpart of
/// the socket-writing [`adaptcomm_runtime::tcp::write_frame`]).
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The §6 QoS envelope on a plan request.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QosSpec {
    /// Deadline for the *response*, in milliseconds from arrival.
    pub deadline_ms: Option<f64>,
    /// Priority tier, higher served first (default 0).
    pub priority: u8,
    /// `(src, dst)` links this tenant declares critical: their
    /// transfers are pinned to the front of the sender's order.
    pub critical_links: Vec<(usize, usize)>,
}

/// A plan request as carried on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRequest {
    /// Tenant name (shards the directory, labels the metrics).
    pub tenant: String,
    /// Scheduler name, e.g. `matching-max` (see `all_schedulers`).
    pub algorithm: String,
    /// The cost matrix; may be omitted for a fingerprint-only probe.
    pub matrix: Option<CommMatrix>,
    /// Exact cost-matrix fingerprint, for matrix-free cache probes.
    pub fingerprint: Option<u64>,
    /// QoS envelope.
    pub qos: QosSpec,
    /// The caller's trace context (`None` from old clients — the
    /// server then starts a fresh root).
    pub trace: Option<TraceContext>,
}

/// Everything a client can send.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Ask for a plan.
    Plan(PlanRequest),
    /// Control frame: drain and stop the server.
    Shutdown,
}

/// How the cache participated in an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Full scheduler run, nothing reused.
    Cold,
    /// Exact fingerprint hit: cached plan replayed verbatim.
    Hit,
    /// Near-hit: new solve warm-started from a cached job's duals.
    Warm,
    /// Near-hit served by §6 incremental rescheduling: the cached
    /// job's retained matching plan was patched in place and only the
    /// rounds the perturbation invalidated were re-solved; certified
    /// rounds were spliced verbatim.
    Incremental,
}

impl CacheDisposition {
    /// Stable wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheDisposition::Cold => "cold",
            CacheDisposition::Hit => "hit",
            CacheDisposition::Warm => "warm",
            CacheDisposition::Incremental => "incremental",
        }
    }

    fn parse(s: &str) -> Result<Self, ProtocolError> {
        match s {
            "cold" => Ok(CacheDisposition::Cold),
            "hit" => Ok(CacheDisposition::Hit),
            "warm" => Ok(CacheDisposition::Warm),
            "incremental" => Ok(CacheDisposition::Incremental),
            other => Err(malformed(format!("unknown cache disposition {other:?}"))),
        }
    }
}

/// Solver-side counters returned with every plan, so clients can see
/// what warm starts actually saved (`lap::SolveStats` over the wire).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlanStats {
    /// Whether round 1 of the construction ran warm.
    pub round1_warm: bool,
    /// Column scans in round 1 (the cross-job savings live here).
    pub round1_col_scans: u64,
    /// Column scans across the whole construction.
    pub total_col_scans: u64,
    /// Wall time the server spent producing this answer.
    pub service_ms: f64,
}

/// Predicted schedule quality attached to a plan, so clients see *how
/// good* the plan is, not just its completion time. Optional on the
/// wire: answers from older servers parse to `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanQuality {
    /// The plan's predicted critical path as `(src, dst)` hops, source
    /// to sink — where to look first when the exchange runs slow.
    pub critical_path: Vec<(usize, usize)>,
    /// Completion gap above the matrix lower bound `t_lb`, percent
    /// (0 means provably optimal).
    pub lb_gap_pct: f64,
}

/// A successful plan answer.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanOk {
    /// Per-sender destination order (the schedule, minus timing).
    pub order: SendOrder,
    /// Predicted completion time of the plan on the request matrix.
    pub completion_ms: f64,
    /// How the cache participated.
    pub cache: CacheDisposition,
    /// The tenant's directory snapshot epoch the plan was computed at.
    pub epoch: u64,
    /// Global completion sequence number (serving order, for QoS
    /// assertions and debugging).
    pub served_seq: u64,
    /// Solver counters.
    pub stats: PlanStats,
    /// Echo of the request's trace id (`None` when the request carried
    /// no trace, or the answer came from an old server).
    pub trace_id: Option<u64>,
    /// Predicted critical path + lower-bound gap (`None` from old
    /// servers).
    pub quality: Option<PlanQuality>,
}

/// Everything the server can answer.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanResponse {
    /// A plan.
    Ok(Box<PlanOk>),
    /// Fingerprint-only probe missed; resend with the matrix.
    NeedMatrix,
    /// Admission control refused the request.
    Rejected {
        /// When to try again: the projected queue drain time.
        retry_after_ms: f64,
        /// Human-readable reason.
        detail: String,
    },
    /// The request was understood but could not be served.
    Error {
        /// What went wrong.
        detail: String,
    },
    /// Acknowledges a shutdown control frame.
    Bye,
}

// ---------------------------------------------------------------------
// Writers (hand-rolled, perfgate idiom).

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `{x:?}` round-trips every finite `f64` exactly.
fn json_number(x: f64) -> String {
    format!("{x:?}")
}

fn write_qos(qos: &QosSpec) -> String {
    let mut parts = Vec::new();
    if let Some(d) = qos.deadline_ms {
        parts.push(format!("\"deadline_ms\":{}", json_number(d)));
    }
    parts.push(format!("\"priority\":{}", qos.priority));
    if !qos.critical_links.is_empty() {
        let links: Vec<String> = qos
            .critical_links
            .iter()
            .map(|(s, d)| format!("[{s},{d}]"))
            .collect();
        parts.push(format!("\"critical\":[{}]", links.join(",")));
    }
    format!("{{{}}}", parts.join(","))
}

fn write_matrix(m: &CommMatrix) -> String {
    let rows: Vec<String> = (0..m.len())
        .map(|src| {
            let cells: Vec<String> = m.row(src).iter().map(|&c| json_number(c)).collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// Serializes a request payload (no frame header).
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Shutdown => b"{\"type\":\"shutdown\"}".to_vec(),
        Request::Plan(plan) => {
            let mut out = String::from("{\"type\":\"plan\"");
            out.push_str(&format!(",\"tenant\":{}", json_string(&plan.tenant)));
            out.push_str(&format!(",\"algorithm\":{}", json_string(&plan.algorithm)));
            if let Some(fp) = plan.fingerprint {
                out.push_str(&format!(",\"fingerprint\":\"{fp:016x}\""));
            }
            if let Some(m) = &plan.matrix {
                out.push_str(&format!(",\"matrix\":{}", write_matrix(m)));
            }
            out.push_str(&format!(",\"qos\":{}", write_qos(&plan.qos)));
            if let Some(trace) = &plan.trace {
                out.push_str(&format!(
                    ",\"trace\":{{\"id\":\"{}\",\"span\":\"{}\"}}",
                    id_to_hex(trace.trace_id),
                    id_to_hex(trace.span_id)
                ));
            }
            out.push('}');
            out.into_bytes()
        }
    }
}

/// Serializes a response payload (no frame header).
pub fn encode_response(resp: &PlanResponse) -> Vec<u8> {
    match resp {
        PlanResponse::Bye => b"{\"type\":\"bye\"}".to_vec(),
        PlanResponse::NeedMatrix => b"{\"type\":\"plan\",\"status\":\"need-matrix\"}".to_vec(),
        PlanResponse::Rejected {
            retry_after_ms,
            detail,
        } => format!(
            "{{\"type\":\"plan\",\"status\":\"rejected\",\"retry_after_ms\":{},\"detail\":{}}}",
            json_number(*retry_after_ms),
            json_string(detail)
        )
        .into_bytes(),
        PlanResponse::Error { detail } => format!(
            "{{\"type\":\"plan\",\"status\":\"error\",\"detail\":{}}}",
            json_string(detail)
        )
        .into_bytes(),
        PlanResponse::Ok(ok) => {
            let rows: Vec<String> = ok
                .order
                .order
                .iter()
                .map(|dsts| {
                    let cells: Vec<String> = dsts.iter().map(|d| d.to_string()).collect();
                    format!("[{}]", cells.join(","))
                })
                .collect();
            let trace_echo = ok
                .trace_id
                .map(|id| format!(",\"trace_id\":\"{}\"", id_to_hex(id)))
                .unwrap_or_default();
            let quality = ok
                .quality
                .as_ref()
                .map(|q| {
                    let hops: Vec<String> = q
                        .critical_path
                        .iter()
                        .map(|(s, d)| format!("[{s},{d}]"))
                        .collect();
                    format!(
                        ",\"quality\":{{\"lb_gap_pct\":{},\"critical_path\":[{}]}}",
                        json_number(q.lb_gap_pct),
                        hops.join(",")
                    )
                })
                .unwrap_or_default();
            format!(
                "{{\"type\":\"plan\",\"status\":\"ok\",\"cache\":\"{}\",\"epoch\":{},\
                 \"served_seq\":{},\"plan\":{{\"order\":[{}],\"completion_ms\":{}}},\
                 \"stats\":{{\"round1_warm\":{},\"round1_col_scans\":{},\
                 \"total_col_scans\":{},\"service_ms\":{}}}{quality}{trace_echo}}}",
                ok.cache.as_str(),
                ok.epoch,
                ok.served_seq,
                rows.join(","),
                json_number(ok.completion_ms),
                ok.stats.round1_warm,
                ok.stats.round1_col_scans,
                ok.stats.total_col_scans,
                json_number(ok.stats.service_ms),
            )
            .into_bytes()
        }
    }
}

// ---------------------------------------------------------------------
// Parsers (obs `json::Value` recursive descent underneath).

fn parse_value(payload: &[u8]) -> Result<Value, ProtocolError> {
    let text = std::str::from_utf8(payload).map_err(|e| malformed(format!("not UTF-8: {e}")))?;
    Value::parse(text).map_err(malformed)
}

fn str_field<'v>(v: &'v Value, key: &str) -> Result<&'v str, ProtocolError> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| malformed(format!("missing string field {key:?}")))
}

fn num_field(v: &Value, key: &str) -> Result<f64, ProtocolError> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| malformed(format!("missing numeric field {key:?}")))
}

fn index_field(v: &Value, what: &str) -> Result<usize, ProtocolError> {
    let x = v
        .as_f64()
        .ok_or_else(|| malformed(format!("{what} must be a number")))?;
    if x.fract() != 0.0 || !(0.0..=u32::MAX as f64).contains(&x) {
        return Err(malformed(format!(
            "{what} must be a small non-negative integer, got {x}"
        )));
    }
    Ok(x as usize)
}

fn parse_matrix(v: &Value) -> Result<CommMatrix, ProtocolError> {
    let rows = v
        .as_arr()
        .ok_or_else(|| malformed("matrix must be an array of rows"))?;
    let p = rows.len();
    if p == 0 {
        return Err(malformed("matrix must have at least one row"));
    }
    let mut out: Vec<Vec<f64>> = Vec::with_capacity(p);
    for (i, row) in rows.iter().enumerate() {
        let cells = row
            .as_arr()
            .ok_or_else(|| malformed(format!("matrix row {i} must be an array")))?;
        if cells.len() != p {
            return Err(malformed(format!(
                "matrix row {i} has {} cells, expected {p}",
                cells.len()
            )));
        }
        let mut parsed = Vec::with_capacity(p);
        for (j, cell) in cells.iter().enumerate() {
            let x = cell
                .as_f64()
                .ok_or_else(|| malformed(format!("matrix cell ({i},{j}) must be a number")))?;
            if !x.is_finite() || x < 0.0 {
                return Err(malformed(format!(
                    "matrix cell ({i},{j}) must be finite and non-negative, got {x}"
                )));
            }
            parsed.push(x);
        }
        out.push(parsed);
    }
    Ok(CommMatrix::from_rows(&out))
}

fn parse_qos(v: &Value) -> Result<QosSpec, ProtocolError> {
    let mut qos = QosSpec::default();
    if let Some(d) = v.get("deadline_ms") {
        let d = d
            .as_f64()
            .ok_or_else(|| malformed("deadline_ms must be a number"))?;
        if !d.is_finite() || d < 0.0 {
            return Err(malformed(format!(
                "deadline_ms must be finite and non-negative, got {d}"
            )));
        }
        qos.deadline_ms = Some(d);
    }
    if let Some(p) = v.get("priority") {
        let p = index_field(p, "priority")?;
        if p > u8::MAX as usize {
            return Err(malformed(format!("priority must fit in a u8, got {p}")));
        }
        qos.priority = p as u8;
    }
    if let Some(links) = v.get("critical") {
        let links = links
            .as_arr()
            .ok_or_else(|| malformed("critical must be an array of [src,dst] pairs"))?;
        for link in links {
            let pair = link
                .as_arr()
                .ok_or_else(|| malformed("critical entries must be [src,dst] pairs"))?;
            if pair.len() != 2 {
                return Err(malformed("critical entries must have exactly two elements"));
            }
            qos.critical_links.push((
                index_field(&pair[0], "critical src")?,
                index_field(&pair[1], "critical dst")?,
            ));
        }
    }
    Ok(qos)
}

fn parse_fingerprint(s: &str) -> Result<u64, ProtocolError> {
    if s.len() != 16 {
        return Err(malformed(format!(
            "fingerprint must be 16 hex digits, got {s:?}"
        )));
    }
    u64::from_str_radix(s, 16).map_err(|e| malformed(format!("bad fingerprint {s:?}: {e}")))
}

/// Parses the optional `trace` object (`{"id","span"}`, 16-hex ids).
fn parse_trace(v: &Value) -> Result<Option<TraceContext>, ProtocolError> {
    let Some(t) = v.get("trace") else {
        return Ok(None);
    };
    let id = |key: &str| -> Result<u64, ProtocolError> {
        t.get(key)
            .and_then(Value::as_str)
            .and_then(id_from_hex)
            .ok_or_else(|| malformed(format!("trace.{key} must be 16 hex digits")))
    };
    Ok(Some(TraceContext::from_wire(id("id")?, id("span")?)))
}

/// Parses a request payload.
pub fn parse_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    let v = parse_value(payload)?;
    match str_field(&v, "type")? {
        "shutdown" => Ok(Request::Shutdown),
        "plan" => {
            let tenant = str_field(&v, "tenant")?.to_string();
            if tenant.is_empty() {
                return Err(malformed("tenant must be non-empty"));
            }
            let algorithm = str_field(&v, "algorithm")?.to_string();
            let fingerprint = match v.get("fingerprint") {
                None => None,
                Some(f) => {
                    Some(parse_fingerprint(f.as_str().ok_or_else(|| {
                        malformed("fingerprint must be a hex string")
                    })?)?)
                }
            };
            let matrix = v.get("matrix").map(parse_matrix).transpose()?;
            if matrix.is_none() && fingerprint.is_none() {
                return Err(malformed("a plan request needs a matrix or a fingerprint"));
            }
            let qos = match v.get("qos") {
                None => QosSpec::default(),
                Some(q) => parse_qos(q)?,
            };
            Ok(Request::Plan(PlanRequest {
                tenant,
                algorithm,
                matrix,
                fingerprint,
                qos,
                trace: parse_trace(&v)?,
            }))
        }
        other => Err(malformed(format!("unknown request type {other:?}"))),
    }
}

fn parse_order(v: &Value) -> Result<SendOrder, ProtocolError> {
    let rows = v
        .as_arr()
        .ok_or_else(|| malformed("plan order must be an array"))?;
    let p = rows.len();
    let mut order = Vec::with_capacity(p);
    for (src, row) in rows.iter().enumerate() {
        let dsts = row
            .as_arr()
            .ok_or_else(|| malformed(format!("order row {src} must be an array")))?;
        let mut list = Vec::with_capacity(dsts.len());
        let mut seen = vec![false; p];
        for d in dsts {
            let d = index_field(d, "order destination")?;
            if d >= p || d == src || seen[d] {
                return Err(malformed(format!(
                    "order row {src} is not a permutation of the other processors"
                )));
            }
            seen[d] = true;
            list.push(d);
        }
        if list.len() != p.saturating_sub(1) {
            return Err(malformed(format!(
                "order row {src} has {} destinations, expected {}",
                list.len(),
                p.saturating_sub(1)
            )));
        }
        order.push(list);
    }
    Ok(SendOrder::new(order))
}

/// Parses a response payload.
pub fn parse_response(payload: &[u8]) -> Result<PlanResponse, ProtocolError> {
    let v = parse_value(payload)?;
    match str_field(&v, "type")? {
        "bye" => Ok(PlanResponse::Bye),
        "plan" => match str_field(&v, "status")? {
            "need-matrix" => Ok(PlanResponse::NeedMatrix),
            "rejected" => Ok(PlanResponse::Rejected {
                retry_after_ms: num_field(&v, "retry_after_ms")?,
                detail: str_field(&v, "detail")?.to_string(),
            }),
            "error" => Ok(PlanResponse::Error {
                detail: str_field(&v, "detail")?.to_string(),
            }),
            "ok" => {
                let plan = v
                    .get("plan")
                    .ok_or_else(|| malformed("missing plan object"))?;
                let stats = v
                    .get("stats")
                    .ok_or_else(|| malformed("missing stats object"))?;
                Ok(PlanResponse::Ok(Box::new(PlanOk {
                    order: parse_order(
                        plan.get("order")
                            .ok_or_else(|| malformed("missing plan.order"))?,
                    )?,
                    completion_ms: num_field(plan, "completion_ms")?,
                    cache: CacheDisposition::parse(str_field(&v, "cache")?)?,
                    epoch: num_field(&v, "epoch")? as u64,
                    served_seq: num_field(&v, "served_seq")? as u64,
                    stats: PlanStats {
                        round1_warm: matches!(stats.get("round1_warm"), Some(Value::Bool(true))),
                        round1_col_scans: num_field(stats, "round1_col_scans")? as u64,
                        total_col_scans: num_field(stats, "total_col_scans")? as u64,
                        service_ms: num_field(stats, "service_ms")?,
                    },
                    trace_id: match v.get("trace_id") {
                        None => None,
                        Some(t) => Some(
                            t.as_str()
                                .and_then(id_from_hex)
                                .ok_or_else(|| malformed("trace_id must be 16 hex digits"))?,
                        ),
                    },
                    quality: match v.get("quality") {
                        None => None,
                        Some(q) => {
                            let hops = q
                                .get("critical_path")
                                .and_then(Value::as_arr)
                                .ok_or_else(|| malformed("quality.critical_path must be an array"))?
                                .iter()
                                .map(|hop| {
                                    let pair =
                                        hop.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                                            malformed("critical-path hops must be [src,dst] pairs")
                                        })?;
                                    Ok((
                                        index_field(&pair[0], "critical-path src")?,
                                        index_field(&pair[1], "critical-path dst")?,
                                    ))
                                })
                                .collect::<Result<Vec<(usize, usize)>, ProtocolError>>()?;
                            Some(PlanQuality {
                                critical_path: hops,
                                lb_gap_pct: num_field(q, "lb_gap_pct")?,
                            })
                        }
                    },
                })))
            }
            other => Err(malformed(format!("unknown response status {other:?}"))),
        },
        other => Err(malformed(format!("unknown response type {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request::Plan(PlanRequest {
            tenant: "alice \"a\"".into(),
            algorithm: "matching-max".into(),
            matrix: Some(CommMatrix::from_rows(&[
                vec![0.0, 1.25, 3.5],
                vec![2.0, 0.0, 0.125],
                vec![9.75, 4.5, 0.0],
            ])),
            fingerprint: Some(0xdead_beef_0123_4567),
            qos: QosSpec {
                deadline_ms: Some(12.5),
                priority: 7,
                critical_links: vec![(0, 2), (1, 0)],
            },
            trace: Some(TraceContext::root("alice \"a\"", 0)),
        })
    }

    #[test]
    fn requests_round_trip() {
        for req in [sample_request(), Request::Shutdown] {
            let bytes = encode_request(&req);
            assert_eq!(parse_request(&bytes).unwrap(), req);
        }
        // Fingerprint-only probe round-trips without a matrix.
        let probe = Request::Plan(PlanRequest {
            tenant: "t".into(),
            algorithm: "greedy".into(),
            matrix: None,
            fingerprint: Some(3),
            qos: QosSpec::default(),
            trace: None,
        });
        assert_eq!(parse_request(&encode_request(&probe)).unwrap(), probe);
    }

    #[test]
    fn trace_field_is_version_tolerant() {
        // An old client's request — no trace field — still parses, and
        // parses to `trace: None` (the server will start a fresh root).
        let old = br#"{"type":"plan","tenant":"t","algorithm":"greedy","fingerprint":"0000000000000003"}"#;
        match parse_request(old).unwrap() {
            Request::Plan(plan) => assert_eq!(plan.trace, None),
            other => panic!("{other:?}"),
        }
        // A traced request round-trips its wire ids (the parent is a
        // client-local detail and intentionally does not travel).
        let ctx = TraceContext::root("tenant-x", 42);
        let req = Request::Plan(PlanRequest {
            tenant: "tenant-x".into(),
            algorithm: "greedy".into(),
            matrix: None,
            fingerprint: Some(9),
            qos: QosSpec::default(),
            trace: Some(ctx),
        });
        match parse_request(&encode_request(&req)).unwrap() {
            Request::Plan(plan) => {
                let got = plan.trace.unwrap();
                assert_eq!(got.trace_id, ctx.trace_id);
                assert_eq!(got.span_id, ctx.span_id);
            }
            other => panic!("{other:?}"),
        }
        // Corrupt trace ids are typed protocol errors, not panics.
        let bad = br#"{"type":"plan","tenant":"t","algorithm":"a","fingerprint":"0000000000000003","trace":{"id":"xyz","span":"0000000000000001"}}"#;
        assert!(matches!(
            parse_request(bad).unwrap_err(),
            ProtocolError::Malformed { .. }
        ));
        // Old-server responses (no trace_id) parse to None.
        let resp = parse_response(
            br#"{"type":"plan","status":"ok","cache":"cold","epoch":1,"served_seq":1,"plan":{"order":[[1],[0]],"completion_ms":1.0},"stats":{"round1_warm":false,"round1_col_scans":0,"total_col_scans":0,"service_ms":0.5}}"#,
        )
        .unwrap();
        match resp {
            PlanResponse::Ok(ok) => assert_eq!(ok.trace_id, None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            PlanResponse::Bye,
            PlanResponse::NeedMatrix,
            PlanResponse::Rejected {
                retry_after_ms: 41.75,
                detail: "deadline 1 ms unmeetable".into(),
            },
            PlanResponse::Error {
                detail: "unknown algorithm \"frobnicate\"".into(),
            },
            PlanResponse::Ok(Box::new(PlanOk {
                order: SendOrder::new(vec![vec![1, 2], vec![2, 0], vec![0, 1]]),
                completion_ms: 123.0625,
                cache: CacheDisposition::Warm,
                epoch: 5,
                served_seq: 17,
                stats: PlanStats {
                    round1_warm: true,
                    round1_col_scans: 42,
                    total_col_scans: 512,
                    service_ms: 1.5,
                },
                trace_id: Some(0x0123_4567_89ab_cdef),
                quality: Some(PlanQuality {
                    critical_path: vec![(0, 2), (1, 2), (1, 0)],
                    lb_gap_pct: 6.25,
                }),
            })),
        ];
        for resp in responses {
            let bytes = encode_response(&resp);
            assert_eq!(parse_response(&bytes).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn quality_field_is_version_tolerant() {
        // Old-server responses (no quality object) parse to None — the
        // same tolerance rule as trace_id.
        let resp = parse_response(
            br#"{"type":"plan","status":"ok","cache":"cold","epoch":1,"served_seq":1,"plan":{"order":[[1],[0]],"completion_ms":1.0},"stats":{"round1_warm":false,"round1_col_scans":0,"total_col_scans":0,"service_ms":0.5}}"#,
        )
        .unwrap();
        match resp {
            PlanResponse::Ok(ok) => assert_eq!(ok.quality, None),
            other => panic!("{other:?}"),
        }
        // A malformed quality object is a typed error, not a silent None.
        let bad = parse_response(
            br#"{"type":"plan","status":"ok","cache":"cold","epoch":1,"served_seq":1,"plan":{"order":[[1],[0]],"completion_ms":1.0},"stats":{"round1_warm":false,"round1_col_scans":0,"total_col_scans":0,"service_ms":0.5},"quality":{"lb_gap_pct":1.0,"critical_path":[[0]]}}"#,
        );
        assert!(matches!(bad, Err(ProtocolError::Malformed { .. })));
    }

    #[test]
    fn frames_round_trip_through_the_reader() {
        let payloads: Vec<Vec<u8>> = vec![
            encode_request(&sample_request()),
            encode_request(&Request::Shutdown),
            Vec::new(),
        ];
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&frame(p));
        }
        let mut reader = FrameReader::new();
        reader.push(&stream);
        for p in &payloads {
            assert_eq!(reader.next_frame().unwrap().as_deref(), Some(p.as_slice()));
        }
        assert_eq!(reader.next_frame().unwrap(), None);
        reader.finish().unwrap();
    }

    #[test]
    fn bad_headers_are_typed_errors() {
        // Oversized length prefix.
        let mut reader = FrameReader::new();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&PROTO_VERSION.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        reader.push(&bytes);
        assert!(matches!(
            reader.next_frame(),
            Err(ProtocolError::Oversized { .. })
        ));
        // Wrong version tag.
        let mut reader = FrameReader::new();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        reader.push(&bytes);
        assert!(matches!(
            reader.next_frame(),
            Err(ProtocolError::BadVersion { tag: 7 })
        ));
        // Truncation is only an error at end-of-stream.
        let mut reader = FrameReader::new();
        reader.push(&frame(b"{}")[..10]);
        assert_eq!(reader.next_frame().unwrap(), None);
        assert!(matches!(
            reader.finish(),
            Err(ProtocolError::Truncated { have: 10, need: 16 })
        ));
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        for bad in [
            &b"not json at all"[..],
            br#"{"type":"plan"}"#,
            br#"{"type":"plan","tenant":"t","algorithm":"a"}"#,
            br#"{"type":"plan","tenant":"","algorithm":"a","fingerprint":"0000000000000000"}"#,
            br#"{"type":"plan","tenant":"t","algorithm":"a","matrix":[[0,1],[2]]}"#,
            br#"{"type":"plan","tenant":"t","algorithm":"a","matrix":[[0,-1],[2,0]]}"#,
            br#"{"type":"plan","tenant":"t","algorithm":"a","fingerprint":"xyz"}"#,
            br#"{"type":"wat"}"#,
        ] {
            let err = parse_request(bad).unwrap_err();
            assert!(matches!(err, ProtocolError::Malformed { .. }), "{err}");
        }
        assert!(parse_response(br#"{"type":"plan","status":"wat"}"#).is_err());
    }
}

//! Scheduling-as-a-service: a multi-tenant TCP plan server with a
//! fingerprint-keyed plan cache and §6 QoS admission control.
//!
//! The paper's framework computes a schedule inside the application.
//! This crate lifts that scheduler behind a long-running network
//! service, which is where the paper's §6 quality-of-service story
//! actually lives: many applications (tenants) share one scheduling
//! brain, and that brain must husband its own compute — replaying
//! plans it has already computed, warm-starting plans it has *almost*
//! computed, and refusing work it cannot finish in time.
//!
//! Four layers, front to back:
//!
//! * [`proto`] — the framed wire protocol: 16-byte length-prefixed
//!   headers (shared with the runtime transport) around hand-rolled
//!   single-line JSON; every decode failure is a typed
//!   [`proto::ProtocolError`].
//! * [`admission`] — §6 QoS at the door: priority tiers, EDF within a
//!   tier, projected-completion deadline tests, reject-with-retry-after.
//! * [`cache`] — the fingerprint-keyed plan cache: exact keys replay
//!   plans verbatim; quantized-bucket near-keys nominate cross-job
//!   warm starts confirmed by direct deviation measurement and seeded
//!   from retained LAP dual potentials.
//! * [`server`] / [`client`] — the TCP service (sharded per-tenant
//!   directory, worker pool, graceful drain) and its blocking client.
//!
//! # Example
//!
//! ```
//! use adaptcomm_plansrv::{PlanClient, PlanServer, PlanServerConfig};
//! use adaptcomm_plansrv::proto::{PlanResponse, QosSpec};
//! use adaptcomm_core::matrix::CommMatrix;
//!
//! let server = PlanServer::bind("127.0.0.1:0", PlanServerConfig::default()).unwrap();
//! let mut client = PlanClient::connect(server.local_addr()).unwrap();
//! let m = CommMatrix::from_fn(4, |s, d| if s == d { 0.0 } else { (s * 3 + d + 1) as f64 });
//! let first = client.plan("tenant-a", "greedy", &m, QosSpec::default()).unwrap();
//! assert!(matches!(first, PlanResponse::Ok(_)));
//! // The identical request is now served from the plan cache.
//! match client.plan("tenant-a", "greedy", &m, QosSpec::default()).unwrap() {
//!     PlanResponse::Ok(ok) => assert_eq!(ok.cache.as_str(), "hit"),
//!     other => panic!("{other:?}"),
//! }
//! client.shutdown().unwrap();
//! server.join();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod cache;
pub mod client;
pub mod proto;
pub mod server;

pub use admission::{AdmissionError, AdmissionQueue};
pub use cache::{CacheLookup, CacheStats, PlanCache};
pub use client::{ClientError, PlanClient};
pub use proto::{CacheDisposition, PlanRequest, PlanResponse, ProtocolError, QosSpec};
pub use server::{PlanServer, PlanServerConfig, PlanService};

//! Client library: a thin blocking wrapper over the framed protocol,
//! sharing the runtime transport's socket plumbing
//! ([`adaptcomm_runtime::tcp::write_frame`] / `read_frame`).
//!
//! Every plan/probe request carries a deterministic [`TraceContext`]
//! root (derived from `(tenant, per-client request seq)`) and records a
//! client-side `plansrv.client` span under it, so a client capture can
//! be merged with the server's into one cross-process request tree.

use crate::proto::{
    self, PlanRequest, PlanResponse, ProtocolError, QosSpec, Request, MAX_FRAME, PROTO_VERSION,
};
use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_obs::trace::TraceContext;
use adaptcomm_runtime::tcp::{read_frame, write_frame};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Anything that can go wrong talking to a plan server.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write).
    Io(String),
    /// The server's bytes did not decode.
    Protocol(ProtocolError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(detail) => write!(f, "plan server I/O: {detail}"),
            ClientError::Protocol(e) => write!(f, "plan server protocol: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// A blocking connection to a plan server. One request in flight at a
/// time; the connection persists across requests.
pub struct PlanClient {
    stream: TcpStream,
    /// Per-connection request counter seeding each request's trace
    /// root — deterministic, so a test can recompute every id.
    next_seq: u64,
}

impl PlanClient {
    /// Connects to a plan server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        // Frames go out as two writes (header, payload); Nagle would
        // hold the payload for the delayed ACK, ~40 ms per request.
        let _ = stream.set_nodelay(true);
        Ok(PlanClient {
            stream,
            next_seq: 0,
        })
    }

    /// Connects, retrying until `deadline` elapses — for racing a
    /// server that is still binding (CI smoke, tests).
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        deadline: Duration,
    ) -> Result<Self, ClientError> {
        let t0 = Instant::now();
        loop {
            match Self::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) if t0.elapsed() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    fn roundtrip(&mut self, request: &Request) -> Result<PlanResponse, ClientError> {
        let payload = proto::encode_request(request);
        write_frame(&mut self.stream, PROTO_VERSION, &payload)
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let (tag, payload) =
            read_frame(&mut self.stream, MAX_FRAME).map_err(|e| ClientError::Io(e.to_string()))?;
        if tag != PROTO_VERSION {
            return Err(ClientError::Protocol(ProtocolError::BadVersion { tag }));
        }
        Ok(proto::parse_response(&payload)?)
    }

    /// The next request's root context, advancing the counter.
    fn next_trace(&mut self, tenant: &str) -> TraceContext {
        let ctx = TraceContext::root(tenant, self.next_seq);
        self.next_seq += 1;
        ctx
    }

    /// One traced request: a `plansrv.client` span (recorded into the
    /// global registry, a no-op while observability is disabled) brackets
    /// the wire roundtrip under the request's root context.
    fn traced_roundtrip(
        &mut self,
        ctx: TraceContext,
        request: &Request,
    ) -> Result<PlanResponse, ClientError> {
        let obs = adaptcomm_obs::global();
        let tenant = match request {
            Request::Plan(p) => p.tenant.as_str(),
            Request::Shutdown => "",
        };
        let _span = obs.span("plansrv.client").attr("tenant", tenant).trace(ctx);
        self.roundtrip(request)
    }

    /// Requests a plan for a full cost matrix.
    pub fn plan(
        &mut self,
        tenant: &str,
        algorithm: &str,
        matrix: &CommMatrix,
        qos: QosSpec,
    ) -> Result<PlanResponse, ClientError> {
        let ctx = self.next_trace(tenant);
        self.traced_roundtrip(
            ctx,
            &Request::Plan(PlanRequest {
                tenant: tenant.to_string(),
                algorithm: algorithm.to_string(),
                matrix: Some(matrix.clone()),
                fingerprint: Some(matrix.fingerprint()),
                qos,
                trace: Some(ctx),
            }),
        )
    }

    /// Fingerprint-only probe: asks whether the server can replay a
    /// cached plan without shipping the `P²` matrix. Answers
    /// [`PlanResponse::NeedMatrix`] on a miss.
    pub fn probe(
        &mut self,
        tenant: &str,
        algorithm: &str,
        fingerprint: u64,
        qos: QosSpec,
    ) -> Result<PlanResponse, ClientError> {
        let ctx = self.next_trace(tenant);
        self.traced_roundtrip(
            ctx,
            &Request::Plan(PlanRequest {
                tenant: tenant.to_string(),
                algorithm: algorithm.to_string(),
                matrix: None,
                fingerprint: Some(fingerprint),
                qos,
                trace: Some(ctx),
            }),
        )
    }

    /// Sends the shutdown control frame; the server acknowledges with
    /// [`PlanResponse::Bye`], finishes in-flight requests, and stops.
    pub fn shutdown(mut self) -> Result<PlanResponse, ClientError> {
        self.roundtrip(&Request::Shutdown)
    }
}

//! The plan server: admission control in front of a worker pool in
//! front of a sharded directory and a shared plan cache.
//!
//! One accept thread hands connections to per-connection handler
//! threads; handlers parse frames with the property-tested
//! [`crate::proto::FrameReader`], run admission, and block on a reply
//! channel while a worker-pool thread computes (or replays) the plan.
//! Shutdown is graceful by construction: the control frame stops the
//! accept loop, handlers drain their in-flight requests against a
//! still-running worker pool, and only then does the queue close and
//! the pool join (the regression test in `tests/lifecycle.rs` pins
//! this ordering).

use crate::admission::{AdmissionError, AdmissionQueue};
use crate::cache::{CacheLookup, PlanCache};
use crate::proto::{
    self, CacheDisposition, PlanOk, PlanQuality, PlanRequest, PlanResponse, PlanStats,
    ProtocolError, Request,
};
use adaptcomm_core::algorithms::{
    all_schedulers, MatchingKind, MatchingPlan, MatchingScheduler, Scheduler,
};
use adaptcomm_core::execution::execute_listed;
use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_core::schedule::SendOrder;
use adaptcomm_directory::ShardedDirectory;
use adaptcomm_model::cost::LinkEstimate;
use adaptcomm_model::{Bandwidth, Millis, NetParams};
use adaptcomm_obs::json::Value;
use adaptcomm_obs::trace::TraceContext;
use std::collections::BTreeMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Estimated cost of replaying a cached plan (milliseconds). Replays
/// skip the solver entirely, which is what lets a warm cache admit
/// deadlines a cold solve could never meet.
const REPLAY_EST_MS: f64 = 0.05;

/// EWMA smoothing for per-`(algorithm, P)` service-time estimates.
const EWMA_ALPHA: f64 = 0.3;

/// Consecutive deadline rejections (no admit in between) that trigger a
/// flight-recorder dump: one reject is load, a streak is an incident.
const REJECT_STREAK_DUMP: u64 = 3;

/// Trace-tree slots (see [`TraceContext::child`]): the client's root
/// span forks admission and worker children; the worker forks cache
/// and solve grandchildren. Fixed slots keep the ids recomputable.
const SLOT_ADMISSION: u64 = 1;
const SLOT_WORKER: u64 = 2;
const SLOT_CACHE: u64 = 1;
const SLOT_SOLVE: u64 = 2;

/// Per-tenant metric key. The tenant segment goes through
/// [`adaptcomm_obs::prom_name`] so a hostile tenant name cannot smuggle
/// dots or control characters into the metric namespace — which also
/// makes the key parseable again: [`tenants_json`] splits on the dots
/// *around* the sanitized segment.
fn tenant_metric(tenant: &str, aspect: &str) -> String {
    format!(
        "plansrv.tenant.{}.{aspect}",
        adaptcomm_obs::prom_name(tenant)
    )
}

/// Tuning knobs for [`PlanServer`].
#[derive(Debug, Clone)]
pub struct PlanServerConfig {
    /// Directory shard count (tenants hash across shards).
    pub shards: usize,
    /// Worker-pool size draining the admission queue.
    pub workers: usize,
    /// Plan-cache capacity (entries, FIFO eviction).
    pub cache_capacity: usize,
    /// Near-hit confirmation tolerance (max relative deviation).
    pub near_tolerance: f64,
    /// Service-time prior for an `(algorithm, P)` pair never seen.
    pub default_est_ms: f64,
    /// Artificial per-solve service time: workers sleep this long on
    /// every cold or warm solve (replays are exempt). The determinism
    /// knob for QoS tests and the CI smoke run; `None` in production.
    pub pace: Option<Duration>,
    /// LAP solver threads per solve (see
    /// [`adaptcomm_lap::solve_min_par`]) — bit-identical results at any
    /// value, so this is purely a latency knob.
    pub threads: usize,
}

impl Default for PlanServerConfig {
    fn default() -> Self {
        PlanServerConfig {
            shards: 4,
            workers: 2,
            cache_capacity: 256,
            near_tolerance: 0.10,
            default_est_ms: 10.0,
            pace: None,
            threads: 1,
        }
    }
}

/// What admission resolved a request into before queueing.
enum Work {
    /// Exact cache hit (possibly via fingerprint-only probe): replay.
    Replay {
        order: SendOrder,
        matrix: CommMatrix,
    },
    /// Run the scheduler (the cache may still warm-start it).
    Solve { matrix: CommMatrix },
}

struct Job {
    request: PlanRequest,
    work: Work,
    reply: mpsc::Sender<WorkerReply>,
    /// When admission queued the job — the deadline verdict measures
    /// queue wait plus service, which is what the client experiences.
    submitted: Instant,
}

struct WorkerReply {
    outcome: Result<ComputedPlan, String>,
    served_seq: u64,
    service_ms: f64,
}

struct ComputedPlan {
    order: SendOrder,
    completion_ms: f64,
    quality: PlanQuality,
    cache: CacheDisposition,
    epoch: u64,
    round1_warm: bool,
    round1_col_scans: u64,
    total_col_scans: u64,
}

/// The shared service state behind the listener: sharded directory,
/// plan cache, service-time estimates, admission queue.
pub struct PlanService {
    config: PlanServerConfig,
    directory: ShardedDirectory,
    cache: Mutex<PlanCache>,
    estimates: Mutex<BTreeMap<(String, usize), f64>>,
    tenant_fp: Mutex<BTreeMap<String, u64>>,
    queue: AdmissionQueue<Job>,
    /// Consecutive deadline rejections since the last admit; at
    /// [`REJECT_STREAK_DUMP`] the flight recorder auto-dumps.
    reject_streak: AtomicU64,
}

impl PlanService {
    fn new(config: PlanServerConfig) -> Self {
        PlanService {
            directory: ShardedDirectory::new(config.shards),
            cache: Mutex::new(PlanCache::new(config.cache_capacity, config.near_tolerance)),
            estimates: Mutex::new(BTreeMap::new()),
            tenant_fp: Mutex::new(BTreeMap::new()),
            queue: AdmissionQueue::new(),
            reject_streak: AtomicU64::new(0),
            config,
        }
    }

    /// The sharded per-tenant directory (per-tenant epochs and stats).
    pub fn directory(&self) -> &ShardedDirectory {
        &self.directory
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.lock().expect("cache poisoned").stats()
    }

    fn pace_ms(&self) -> f64 {
        self.config.pace.map_or(0.0, |d| d.as_secs_f64() * 1e3)
    }

    /// The service-time estimate admission will use for a solve.
    fn solve_estimate(&self, algorithm: &str, p: usize) -> f64 {
        let default = self.config.default_est_ms.max(self.pace_ms());
        self.estimates
            .lock()
            .expect("estimates poisoned")
            .get(&(algorithm.to_string(), p))
            .copied()
            .unwrap_or(default)
    }

    fn learn_estimate(&self, algorithm: &str, p: usize, measured_ms: f64) {
        let mut est = self.estimates.lock().expect("estimates poisoned");
        let slot = est.entry((algorithm.to_string(), p)).or_insert(measured_ms);
        *slot = (1.0 - EWMA_ALPHA) * *slot + EWMA_ALPHA * measured_ms;
    }

    /// Admission: resolve the request into work, estimate it, and
    /// queue it (or answer immediately when no queueing is needed).
    /// On `Ok`, the response arrives later on `reply`'s receiver.
    fn admit(
        &self,
        request: PlanRequest,
        reply: mpsc::Sender<WorkerReply>,
    ) -> Result<(), PlanResponse> {
        if !all_schedulers()
            .iter()
            .any(|s| s.name() == request.algorithm)
        {
            return Err(PlanResponse::Error {
                detail: format!("unknown algorithm {:?}", request.algorithm),
            });
        }
        let obs = adaptcomm_obs::global();
        obs.add(&tenant_metric(&request.tenant, "requests"), 1);
        let _admission_span = {
            let mut s = obs
                .span("plansrv.admission")
                .attr("tenant", request.tenant.as_str())
                .attr("algorithm", request.algorithm.as_str());
            if let Some(ctx) = request.trace {
                s = s.trace(ctx.child(SLOT_ADMISSION));
            }
            s
        };

        // Resolve into replay-vs-solve and estimate the service time.
        let (work, est_ms) = match (&request.matrix, request.fingerprint) {
            (Some(matrix), _) => {
                let fp = matrix.fingerprint();
                let would_hit = self
                    .cache
                    .lock()
                    .expect("cache poisoned")
                    .contains(&request.algorithm, fp);
                let est = if would_hit {
                    REPLAY_EST_MS
                } else {
                    self.solve_estimate(&request.algorithm, matrix.len())
                };
                (
                    Work::Solve {
                        matrix: matrix.clone(),
                    },
                    est,
                )
            }
            (None, Some(fp)) => {
                let probe = self
                    .cache
                    .lock()
                    .expect("cache poisoned")
                    .probe(&request.algorithm, fp);
                match probe {
                    Some((order, matrix)) => (Work::Replay { order, matrix }, REPLAY_EST_MS),
                    None => return Err(PlanResponse::NeedMatrix),
                }
            }
            (None, None) => {
                return Err(PlanResponse::Error {
                    detail: "a plan request needs a matrix or a fingerprint".into(),
                })
            }
        };

        let qos = &request.qos;
        let submitted = self.queue.submit(
            qos.priority,
            qos.deadline_ms,
            est_ms,
            Job {
                request: request.clone(),
                work,
                reply,
                submitted: Instant::now(),
            },
        );
        match submitted {
            Ok(_seq) => {
                self.reject_streak.store(0, Ordering::Relaxed);
                obs.gauge_set("plansrv.queue_depth", self.queue.depth() as f64);
                Ok(())
            }
            Err(AdmissionError::Rejected {
                retry_after_ms,
                projected_ms,
            }) => {
                obs.add(&tenant_metric(&request.tenant, "rejected"), 1);
                adaptcomm_obs::flight()
                    .note("plansrv.reject")
                    .attr("tenant", request.tenant.as_str())
                    .attr("projected_ms", projected_ms)
                    .attr("retry_after_ms", retry_after_ms)
                    .emit();
                // A lone rejection is load shedding doing its job; a
                // streak with no admit in between is an incident worth
                // a black-box dump (no-op unless a driver armed it).
                let streak = self.reject_streak.fetch_add(1, Ordering::Relaxed) + 1;
                if streak == REJECT_STREAK_DUMP {
                    adaptcomm_obs::flight().auto_dump("plansrv-reject-streak");
                }
                Err(PlanResponse::Rejected {
                    retry_after_ms,
                    detail: format!(
                        "projected completion {projected_ms:.3} ms blows the {:.3} ms deadline",
                        qos.deadline_ms.unwrap_or(f64::INFINITY)
                    ),
                })
            }
            Err(AdmissionError::Closed) => Err(PlanResponse::Error {
                detail: "server is shutting down".into(),
            }),
        }
    }

    /// Publishes the tenant's matrix into its directory shard when the
    /// fingerprint changed; returns the tenant's snapshot epoch.
    fn tenant_epoch(&self, tenant: &str, matrix: &CommMatrix) -> u64 {
        let fp = matrix.fingerprint();
        let dir = self
            .directory
            .tenant_or_create(tenant, || net_params_from(matrix));
        let mut fps = self.tenant_fp.lock().expect("tenant fingerprints poisoned");
        match fps.get(tenant) {
            Some(&prev) if prev == fp => {}
            Some(_) => {
                dir.publish(net_params_from(matrix));
                fps.insert(tenant.to_string(), fp);
            }
            None => {
                fps.insert(tenant.to_string(), fp);
            }
        }
        drop(fps);
        self.directory.epoch(tenant)
    }

    /// Executes one claimed job on a worker thread. `ctx` is the
    /// worker's trace context (the request root's [`SLOT_WORKER`]
    /// child); cache lookups and solves record as its children.
    fn compute(
        &self,
        request: &PlanRequest,
        work: &Work,
        ctx: Option<TraceContext>,
    ) -> Result<ComputedPlan, String> {
        let obs = adaptcomm_obs::global();
        let (matrix, order, cache, round1_warm, round1_col_scans, total_col_scans) = match work {
            Work::Replay { order, matrix } => {
                obs.add(&tenant_metric(&request.tenant, "cache_hit"), 1);
                (matrix, order.clone(), CacheDisposition::Hit, false, 0, 0)
            }
            Work::Solve { matrix } => {
                let lookup = {
                    let mut s = obs
                        .span("plansrv.cache_lookup")
                        .attr("algorithm", request.algorithm.as_str());
                    if let Some(c) = ctx {
                        s = s.trace(c.child(SLOT_CACHE));
                    }
                    let _guard = s;
                    self.cache
                        .lock()
                        .expect("cache poisoned")
                        .lookup(&request.algorithm, matrix)
                };
                match lookup {
                    CacheLookup::Hit(order) => {
                        obs.add(&tenant_metric(&request.tenant, "cache_hit"), 1);
                        (matrix, order, CacheDisposition::Hit, false, 0, 0)
                    }
                    other => {
                        let (seed, prev) = match other {
                            CacheLookup::Warm { seed, .. } => (Some(seed), None),
                            CacheLookup::Incremental { plan, .. } => (None, Some(plan)),
                            _ => (None, None),
                        };
                        let solve_span = {
                            let mut s = obs
                                .span("plansrv.solve")
                                .attr("algorithm", request.algorithm.as_str())
                                .attr("p", matrix.len());
                            if let Some(c) = ctx {
                                s = s.trace(c.child(SLOT_SOLVE));
                            }
                            s
                        };
                        if let Some(pace) = self.config.pace {
                            std::thread::sleep(pace);
                        }
                        let solved = solve(
                            &request.algorithm,
                            matrix,
                            seed.as_deref(),
                            prev.as_deref(),
                            self.config.threads,
                        );
                        drop(solve_span);
                        let solved = solved?;
                        // The wire disposition reports what the solver
                        // actually did: a retained plan whose hi/dims
                        // drifted falls back to a warm full build and
                        // is reported as such.
                        let cache = match solved.disposition {
                            "incremental" | "hit" => CacheDisposition::Incremental,
                            "warm" => CacheDisposition::Warm,
                            _ => CacheDisposition::Cold,
                        };
                        let name = match cache {
                            CacheDisposition::Incremental => "cache_incremental",
                            CacheDisposition::Warm => "cache_warm",
                            _ => "cache_miss",
                        };
                        obs.add(&tenant_metric(&request.tenant, name), 1);
                        self.cache.lock().expect("cache poisoned").insert(
                            &request.algorithm,
                            matrix,
                            solved.order.clone(),
                            solved.seed,
                            solved.plan,
                        );
                        (
                            matrix,
                            solved.order,
                            cache,
                            solved.round1_warm,
                            solved.round1_col_scans,
                            solved.total_col_scans,
                        )
                    }
                }
            }
        };

        let epoch = self.tenant_epoch(&request.tenant, matrix);
        let order = if request.qos.critical_links.is_empty() {
            order
        } else {
            pin_critical(&order, &request.qos.critical_links)
        };
        let schedule = execute_listed(&order, matrix);
        let completion_ms = schedule.completion_time().as_ms();
        // Explain-plane quality: the plan's predicted critical path and
        // its gap above `t_lb`, so clients see *how good* the plan is,
        // not just how long it takes.
        let q = adaptcomm_core::analyze::quality_of(&schedule);
        let quality = PlanQuality {
            lb_gap_pct: q.gap_pct(),
            critical_path: q.critical_path,
        };
        Ok(ComputedPlan {
            order,
            completion_ms,
            quality,
            cache,
            epoch,
            round1_warm,
            round1_col_scans,
            total_col_scans,
        })
    }

    fn worker_loop(self: &Arc<Self>) {
        let obs = adaptcomm_obs::global();
        while let Some(claimed) = self.queue.pop() {
            let t0 = Instant::now();
            let job = claimed.payload;
            let ctx = job.request.trace.map(|t| t.child(SLOT_WORKER));
            let worker_span = {
                let mut s = obs
                    .span("plansrv.worker")
                    .attr("tenant", job.request.tenant.as_str())
                    .attr("algorithm", job.request.algorithm.as_str());
                if let Some(c) = ctx {
                    s = s.trace(c);
                }
                s
            };
            let outcome = self.compute(&job.request, &job.work, ctx);
            drop(worker_span);
            let service_ms = t0.elapsed().as_secs_f64() * 1e3;
            let served_seq = self.queue.complete(claimed.est_ms);
            obs.gauge_set("plansrv.queue_depth", self.queue.depth() as f64);
            obs.observe(
                &tenant_metric(&job.request.tenant, "latency_ms"),
                adaptcomm_obs::MS_BUCKETS,
                service_ms,
            );
            // The deadline verdict is queue wait + service — what the
            // client experiences — not service time alone.
            if let Some(deadline) = job.request.qos.deadline_ms {
                let total_ms = job.submitted.elapsed().as_secs_f64() * 1e3;
                let aspect = if total_ms <= deadline {
                    "deadline_hit"
                } else {
                    "deadline_miss"
                };
                obs.add(&tenant_metric(&job.request.tenant, aspect), 1);
            }
            if let (Ok(plan), Work::Solve { matrix }) = (&outcome, &job.work) {
                if plan.cache != CacheDisposition::Hit {
                    self.learn_estimate(&job.request.algorithm, matrix.len(), service_ms);
                }
            }
            // A dropped receiver means the connection died mid-request;
            // the work is still done (and cached), so just move on.
            let _ = job.reply.send(WorkerReply {
                outcome,
                served_seq,
                service_ms,
            });
        }
    }
}

/// What one scheduler run produced, plus the reuse surface to retain.
struct Solved {
    order: SendOrder,
    round1_warm: bool,
    round1_col_scans: u64,
    total_col_scans: u64,
    /// Round-1 duals to retain (empty for non-matching algorithms).
    seed: Vec<f64>,
    /// The whole matching plan to retain for §6 incremental replans.
    plan: Option<Box<MatchingPlan>>,
    /// The matching construction's own disposition; `"cold"` for
    /// algorithms without a reuse surface.
    disposition: &'static str,
}

/// Runs the requested scheduler: incrementally replanned from `prev`
/// when a retained plan is given, warm-started from `seed` otherwise.
fn solve(
    algorithm: &str,
    matrix: &CommMatrix,
    seed: Option<&[f64]>,
    prev: Option<&MatchingPlan>,
    threads: usize,
) -> Result<Solved, String> {
    let kind = [MatchingKind::Max, MatchingKind::Min]
        .into_iter()
        .find(|&k| MatchingScheduler::new(k).name() == algorithm);
    if let Some(kind) = kind {
        let sched = MatchingScheduler::with_threads(kind, threads);
        let plan = match prev {
            Some(prev) => sched.replan_incremental(prev, matrix),
            None => sched.plan_seeded(matrix, seed),
        };
        let order = SendOrder::from_steps(matrix.len(), &plan.steps);
        return Ok(Solved {
            order,
            round1_warm: plan.round1.warm,
            round1_col_scans: plan.round1.col_scans,
            total_col_scans: plan.total_col_scans,
            seed: plan.seed_potentials.clone(),
            disposition: plan.disposition,
            plan: Some(Box::new(plan)),
        });
    }
    let scheduler = all_schedulers()
        .into_iter()
        .find(|s| s.name() == algorithm)
        .ok_or_else(|| format!("unknown algorithm {algorithm:?}"))?;
    Ok(Solved {
        order: scheduler.send_order(matrix),
        round1_warm: false,
        round1_col_scans: 0,
        total_col_scans: 0,
        seed: Vec::new(),
        plan: None,
        disposition: "cold",
    })
}

/// Moves each sender's critical destinations to the front of its
/// order, preserving relative order within both groups. Links with
/// out-of-range endpoints are ignored.
fn pin_critical(order: &SendOrder, links: &[(usize, usize)]) -> SendOrder {
    let p = order.processors();
    let mut critical = vec![false; p * p];
    for &(s, d) in links {
        if s < p && d < p {
            critical[s * p + d] = true;
        }
    }
    SendOrder::new(
        order
            .order
            .iter()
            .enumerate()
            .map(|(s, dsts)| {
                let (mut front, back): (Vec<usize>, Vec<usize>) =
                    dsts.iter().partition(|&&d| critical[s * p + d]);
                front.extend(back);
                front
            })
            .collect(),
    )
}

/// Builds per-tenant directory params from a cost matrix: the cell is
/// the pair's start-up cost, bandwidth is effectively infinite (the
/// request matrix is already end-to-end milliseconds).
fn net_params_from(matrix: &CommMatrix) -> NetParams {
    let p = matrix.len().max(1);
    let mut params = NetParams::uniform(p, Millis::new(0.0), Bandwidth::from_kbps(1e12));
    for src in 0..matrix.len() {
        for (dst, &cell) in matrix.row(src).iter().enumerate() {
            params.set_estimate(
                src,
                dst,
                LinkEstimate::new(Millis::new(cell), Bandwidth::from_kbps(1e12)),
            );
        }
    }
    params
}

/// The listening plan server. Bind with [`PlanServer::bind`], stop
/// with [`PlanServer::shutdown`] (or a client's shutdown frame
/// followed by [`PlanServer::join`]).
pub struct PlanServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    service: Arc<PlanService>,
}

impl PlanServer {
    /// Binds (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// the accept loop and worker pool.
    pub fn bind(addr: &str, config: PlanServerConfig) -> std::io::Result<PlanServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let service = Arc::new(PlanService::new(config.clone()));

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let service = Arc::clone(&service);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("plansrv-worker-{i}"))
                    .spawn(move || service.worker_loop())?,
            );
        }

        let accept = {
            let stop = Arc::clone(&stop);
            let service = Arc::clone(&service);
            std::thread::Builder::new()
                .name("plansrv-accept".into())
                .spawn(move || accept_loop(listener, addr, stop, service, workers))?
        };

        Ok(PlanServer {
            addr,
            stop,
            accept: Some(accept),
            service,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (stats, directory) — primarily for
    /// tests and benches.
    pub fn service(&self) -> &Arc<PlanService> {
        &self.service
    }

    /// Waits for the server to stop (a client's shutdown frame, or a
    /// concurrent [`PlanServer::shutdown`]).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Stops the server: no new connections, in-flight requests
    /// complete, workers drain, everything joins.
    pub fn shutdown(self) {
        trigger_stop(&self.stop, self.addr);
        self.join();
    }
}

/// Sets the stop flag and pokes the accept loop awake.
fn trigger_stop(stop: &AtomicBool, addr: SocketAddr) {
    stop.store(true, Ordering::SeqCst);
    // A throwaway connection unblocks the blocking accept().
    let _ = TcpStream::connect(addr);
}

fn accept_loop(
    listener: TcpListener,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    service: Arc<PlanService>,
    workers: Vec<JoinHandle<()>>,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let Ok((stream, _)) = listener.accept() else {
            break;
        };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // Responses are header + payload writes; without NODELAY the
        // payload waits out the client's delayed ACK (~40 ms each).
        let _ = stream.set_nodelay(true);
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        if let Ok(h) = std::thread::Builder::new()
            .name("plansrv-conn".into())
            .spawn(move || handle_connection(stream, addr, stop, service))
        {
            handlers.push(h);
        }
        // Opportunistically reap finished handlers so a long-lived
        // server doesn't accumulate joined-but-unreaped threads.
        handlers.retain(|h| !h.is_finished());
    }
    // Graceful drain: handlers finish their in-flight requests against
    // a still-running worker pool, *then* the queue closes and the
    // pool joins.
    for h in handlers {
        let _ = h.join();
    }
    service.queue.close();
    for w in workers {
        let _ = w.join();
    }
}

fn handle_connection(
    mut stream: TcpStream,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    service: Arc<PlanService>,
) {
    // Short read timeouts let an idle connection notice the stop flag;
    // the FrameReader makes partially-read frames safe to resume.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = proto::FrameReader::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return, // client closed
            Ok(n) => {
                reader.push(&buf[..n]);
                loop {
                    match reader.next_frame() {
                        Ok(Some(payload)) => {
                            if !serve_frame(&payload, &mut stream, &stop, addr, &service) {
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            respond(
                                &mut stream,
                                &PlanResponse::Error {
                                    detail: e.to_string(),
                                },
                            );
                            return;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Serves one framed request; returns `false` to close the connection.
fn serve_frame(
    payload: &[u8],
    stream: &mut TcpStream,
    stop: &Arc<AtomicBool>,
    addr: SocketAddr,
    service: &Arc<PlanService>,
) -> bool {
    let request = match proto::parse_request(payload) {
        Ok(r) => r,
        Err(e @ ProtocolError::Malformed { .. }) => {
            respond(
                stream,
                &PlanResponse::Error {
                    detail: e.to_string(),
                },
            );
            return true; // framing is intact; keep the connection
        }
        Err(e) => {
            respond(
                stream,
                &PlanResponse::Error {
                    detail: e.to_string(),
                },
            );
            return false;
        }
    };
    match request {
        Request::Shutdown => {
            respond(stream, &PlanResponse::Bye);
            trigger_stop(stop, addr);
            false
        }
        Request::Plan(plan) => {
            let trace_id = plan.trace.map(|t| t.trace_id);
            let (tx, rx) = mpsc::channel();
            let response = match service.admit(plan, tx) {
                Err(immediate) => immediate,
                Ok(()) => match rx.recv() {
                    Err(_) => PlanResponse::Error {
                        detail: "worker pool shut down mid-request".into(),
                    },
                    Ok(reply) => match reply.outcome {
                        Err(detail) => PlanResponse::Error { detail },
                        Ok(plan) => PlanResponse::Ok(Box::new(PlanOk {
                            order: plan.order,
                            completion_ms: plan.completion_ms,
                            quality: Some(plan.quality),
                            cache: plan.cache,
                            epoch: plan.epoch,
                            served_seq: reply.served_seq,
                            trace_id,
                            stats: PlanStats {
                                round1_warm: plan.round1_warm,
                                round1_col_scans: plan.round1_col_scans,
                                total_col_scans: plan.total_col_scans,
                                service_ms: reply.service_ms,
                            },
                        })),
                    },
                },
            };
            respond(stream, &response);
            true
        }
    }
}

fn respond(stream: &mut TcpStream, response: &PlanResponse) {
    let payload = proto::encode_response(response);
    let _ = adaptcomm_runtime::tcp::write_frame(stream, proto::PROTO_VERSION, &payload);
}

/// Renders the `/tenants` scrape document from a registry snapshot:
/// one JSON object per tenant with request/reject counters, cache
/// dispositions, the deadline-hit ratio, and a latency digest.
///
/// Tenant names in metric keys are [`adaptcomm_obs::prom_name`]
/// sanitized (see [`tenant_metric`]), so the segment between
/// `plansrv.tenant.` and the final `.aspect` never contains a dot and
/// parses back unambiguously. The document is built as an
/// [`adaptcomm_obs::json::Value`], so it always re-parses with the same
/// crate's parser.
pub fn tenants_json(snap: &adaptcomm_obs::Snapshot) -> String {
    #[derive(Default)]
    struct Tenant {
        counters: BTreeMap<String, u64>,
        latency: Option<(u64, f64, f64)>, // count, sum_ms, p95_ms
    }

    fn split_key(name: &str) -> Option<(&str, &str)> {
        name.strip_prefix("plansrv.tenant.")?.split_once('.')
    }

    let mut tenants: BTreeMap<String, Tenant> = BTreeMap::new();
    for c in &snap.counters {
        if let Some((tenant, aspect)) = split_key(&c.name) {
            tenants
                .entry(tenant.to_string())
                .or_default()
                .counters
                .insert(aspect.to_string(), c.value);
        }
    }
    for h in &snap.histograms {
        let Some((tenant, "latency_ms")) = split_key(&h.name) else {
            continue;
        };
        // p95 from the cumulative buckets: the first bound covering
        // 95% of observations, saturating at the last bound when the
        // mass sits in the overflow bucket.
        let want = (0.95 * h.count as f64).ceil() as u64;
        let mut cum = 0;
        let mut p95 = *h.bounds.last().unwrap_or(&0.0);
        for (bound, bucket) in h.bounds.iter().zip(&h.buckets) {
            cum += bucket;
            if cum >= want {
                p95 = *bound;
                break;
            }
        }
        tenants.entry(tenant.to_string()).or_default().latency = Some((h.count, h.sum, p95));
    }

    let num = |v: u64| Value::Num(v as f64);
    let rows: Vec<Value> = tenants
        .into_iter()
        .map(|(name, t)| {
            let count = |aspect: &str| t.counters.get(aspect).copied().unwrap_or(0);
            let (dl_hit, dl_miss) = (count("deadline_hit"), count("deadline_miss"));
            let hit_ratio = if dl_hit + dl_miss > 0 {
                Value::Num(dl_hit as f64 / (dl_hit + dl_miss) as f64)
            } else {
                Value::Null // no deadline-bound requests: no verdict
            };
            let latency = match t.latency {
                Some((n, sum, p95)) if n > 0 => Value::Obj(vec![
                    ("count".into(), num(n)),
                    ("mean_ms".into(), Value::Num(sum / n as f64)),
                    ("p95_ms".into(), Value::Num(p95)),
                ]),
                _ => Value::Null,
            };
            Value::Obj(vec![
                ("name".into(), Value::Str(name)),
                ("requests".into(), num(count("requests"))),
                ("rejected".into(), num(count("rejected"))),
                (
                    "cache".into(),
                    Value::Obj(vec![
                        ("hit".into(), num(count("cache_hit"))),
                        ("incremental".into(), num(count("cache_incremental"))),
                        ("warm".into(), num(count("cache_warm"))),
                        ("miss".into(), num(count("cache_miss"))),
                    ]),
                ),
                (
                    "deadline".into(),
                    Value::Obj(vec![
                        ("hit".into(), num(dl_hit)),
                        ("miss".into(), num(dl_miss)),
                        ("hit_ratio".into(), hit_ratio),
                    ]),
                ),
                ("latency_ms".into(), latency),
            ])
        })
        .collect();
    Value::Obj(vec![("tenants".into(), Value::Arr(rows))]).to_json()
}

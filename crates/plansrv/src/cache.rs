//! Fingerprint-keyed plan cache with perturbation-tolerant lookup.
//!
//! Two-level keying (see `DESIGN.md` §12 for the full rationale):
//!
//! * The **exact key** — [`CommMatrix::fingerprint`], FNV-1a over
//!   cells quantized on a fine grid — replays whole plans. Two
//!   requests with the same exact key carry matrices equal to within
//!   one part in 2²⁰ of the largest cell, so the cached plan *is* the
//!   plan a fresh solve would produce.
//! * The **bucket key** — [`CommMatrix::fingerprint_bucket`], cells
//!   quantized to log-scale buckets — only *nominates* warm-start
//!   candidates. A nomination is confirmed by directly measuring
//!   [`CommMatrix::max_rel_deviation`] against the cached matrix; the
//!   candidate's retained dual potentials then warm-start a fresh
//!   solve. Because a boundary-straddling cell can flip a bucket even
//!   under a tiny perturbation, a small per-`(algorithm, P)` recency
//!   ring is also probed — a missed nomination costs one cold solve,
//!   never a wrong plan.
//!
//! The cache is tenant-agnostic on purpose: plans depend only on
//! `(algorithm, matrix)`, so tenants with congruent traffic share
//! entries (per-tenant *dispositions* are still metered separately by
//! the server). Capacity is bounded with FIFO eviction.

use adaptcomm_core::algorithms::MatchingPlan;
use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_core::schedule::SendOrder;
use std::collections::{BTreeMap, VecDeque};

/// How many recent entries per `(algorithm, P)` the recency ring
/// keeps as a backstop against bucket-boundary flips.
const RECENCY_RING: usize = 8;

/// A retained plan: the matrix it was computed for (to confirm
/// near-hits by direct deviation measurement), the plan itself, and
/// the round-1 dual potentials for cross-job warm starts.
#[derive(Debug, Clone)]
struct CachedPlan {
    matrix: CommMatrix,
    order: SendOrder,
    /// Round-1 LAP potentials; empty when the producing algorithm has
    /// no duals to retain (non-matching schedulers).
    seed: Vec<f64>,
    /// The producing job's whole matching plan, when the algorithm has
    /// one — the §6 incremental-replan surface: a confirmed near-hit
    /// hands it back so the server re-solves only the dirty rounds
    /// instead of warm-starting a full build.
    plan: Option<Box<MatchingPlan>>,
    bucket: u64,
}

/// What a lookup found.
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// Exact fingerprint match: replay this plan verbatim.
    Hit(SendOrder),
    /// Near-hit: warm-start a fresh solve from these potentials.
    Warm {
        /// Retained round-1 dual potentials of the cached job.
        seed: Vec<f64>,
        /// Measured relative deviation from the cached matrix.
        deviation: f64,
    },
    /// Near-hit whose cached job retained its whole matching plan:
    /// replan it incrementally (§6) instead of re-solving every round.
    Incremental {
        /// The cached job's retained plan, to diff and patch.
        plan: Box<MatchingPlan>,
        /// Measured relative deviation from the cached matrix.
        deviation: f64,
    },
    /// Nothing usable; solve cold.
    Miss,
}

/// Monotone counters describing cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Plans inserted.
    pub inserts: u64,
    /// Exact-key replays.
    pub exact_hits: u64,
    /// Confirmed near-hits that seeded a warm start.
    pub warm_hits: u64,
    /// Confirmed near-hits answered with a retained plan for §6
    /// incremental rescheduling.
    pub incremental_hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries dropped by FIFO eviction.
    pub evictions: u64,
}

/// The fingerprint-keyed plan cache. Not internally synchronized —
/// the server wraps it in a mutex.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    near_tolerance: f64,
    entries: BTreeMap<(String, u64), CachedPlan>,
    /// `(algorithm, P, bucket fingerprint)` → exact keys, newest last.
    buckets: BTreeMap<(String, usize, u64), Vec<u64>>,
    /// `(algorithm, P)` → recent exact keys, newest last.
    recent: BTreeMap<(String, usize), VecDeque<u64>>,
    fifo: VecDeque<(String, u64)>,
    stats: CacheStats,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans, confirming near-hits
    /// up to `near_tolerance` relative deviation.
    pub fn new(capacity: usize, near_tolerance: f64) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(
            near_tolerance.is_finite() && near_tolerance >= 0.0,
            "near tolerance must be finite and non-negative"
        );
        PlanCache {
            capacity,
            near_tolerance,
            entries: BTreeMap::new(),
            buckets: BTreeMap::new(),
            recent: BTreeMap::new(),
            fifo: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether an exact entry exists, without touching the counters —
    /// the admission controller peeks this to substitute the replay
    /// cost for the solve estimate.
    pub fn contains(&self, algorithm: &str, fingerprint: u64) -> bool {
        self.entries
            .contains_key(&(algorithm.to_string(), fingerprint))
    }

    /// Exact-key probe without a matrix (the fingerprint-only wire
    /// request). Returns the plan and the cached matrix so the caller
    /// can evaluate completion time.
    pub fn probe(&mut self, algorithm: &str, fingerprint: u64) -> Option<(SendOrder, CommMatrix)> {
        let key = (algorithm.to_string(), fingerprint);
        match self.entries.get(&key) {
            Some(entry) => {
                self.stats.exact_hits += 1;
                Some((entry.order.clone(), entry.matrix.clone()))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Full lookup: exact replay, else confirmed near-hit, else miss.
    pub fn lookup(&mut self, algorithm: &str, matrix: &CommMatrix) -> CacheLookup {
        let fp = matrix.fingerprint();
        let key = (algorithm.to_string(), fp);
        if let Some(entry) = self.entries.get(&key) {
            self.stats.exact_hits += 1;
            return CacheLookup::Hit(entry.order.clone());
        }

        // Nominate candidates: same-bucket entries first, then the
        // recency ring (guards against bucket-boundary flips).
        let p = matrix.len();
        let bucket = matrix.fingerprint_bucket();
        let mut candidates: Vec<u64> = Vec::new();
        if let Some(fps) = self.buckets.get(&(algorithm.to_string(), p, bucket)) {
            candidates.extend(fps.iter().rev());
        }
        if let Some(ring) = self.recent.get(&(algorithm.to_string(), p)) {
            for &c in ring.iter().rev() {
                if !candidates.contains(&c) {
                    candidates.push(c);
                }
            }
        }

        // Confirm by direct measurement; best (smallest deviation) wins.
        let mut best: Option<(f64, &CachedPlan)> = None;
        for c in candidates {
            let Some(entry) = self.entries.get(&(algorithm.to_string(), c)) else {
                continue;
            };
            if entry.seed.is_empty() {
                continue;
            }
            let Some(dev) = matrix.max_rel_deviation(&entry.matrix) else {
                continue;
            };
            if dev <= self.near_tolerance && best.is_none_or(|(b, _)| dev < b) {
                best = Some((dev, entry));
            }
        }
        match best {
            Some((deviation, entry)) => match &entry.plan {
                Some(plan) => {
                    self.stats.incremental_hits += 1;
                    CacheLookup::Incremental {
                        plan: plan.clone(),
                        deviation,
                    }
                }
                None => {
                    self.stats.warm_hits += 1;
                    CacheLookup::Warm {
                        seed: entry.seed.clone(),
                        deviation,
                    }
                }
            },
            None => {
                self.stats.misses += 1;
                CacheLookup::Miss
            }
        }
    }

    /// Retains a freshly computed plan. `seed` is the producing job's
    /// round-1 dual potentials (empty when the algorithm has none);
    /// `plan` is its whole matching plan when the algorithm produces
    /// one, enabling §6 incremental replans on future near-hits.
    pub fn insert(
        &mut self,
        algorithm: &str,
        matrix: &CommMatrix,
        order: SendOrder,
        seed: Vec<f64>,
        plan: Option<Box<MatchingPlan>>,
    ) {
        let fp = matrix.fingerprint();
        let p = matrix.len();
        let bucket = matrix.fingerprint_bucket();
        let key = (algorithm.to_string(), fp);
        if self.entries.contains_key(&key) {
            return; // Already cached; FIFO position unchanged.
        }
        while self.entries.len() >= self.capacity {
            self.evict_oldest();
        }
        self.entries.insert(
            key.clone(),
            CachedPlan {
                matrix: matrix.clone(),
                order,
                seed,
                plan,
                bucket,
            },
        );
        self.buckets
            .entry((algorithm.to_string(), p, bucket))
            .or_default()
            .push(fp);
        let ring = self.recent.entry((algorithm.to_string(), p)).or_default();
        ring.push_back(fp);
        while ring.len() > RECENCY_RING {
            ring.pop_front();
        }
        self.fifo.push_back(key);
        self.stats.inserts += 1;
    }

    fn evict_oldest(&mut self) {
        let Some(key) = self.fifo.pop_front() else {
            return;
        };
        let Some(entry) = self.entries.remove(&key) else {
            return;
        };
        let p = entry.matrix.len();
        let (algo, fp) = key;
        if let Some(fps) = self.buckets.get_mut(&(algo.clone(), p, entry.bucket)) {
            fps.retain(|&c| c != fp);
            if fps.is_empty() {
                self.buckets.remove(&(algo.clone(), p, entry.bucket));
            }
        }
        if let Some(ring) = self.recent.get_mut(&(algo, p)) {
            ring.retain(|&c| c != fp);
        }
        self.stats.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(p: usize, salt: f64) -> CommMatrix {
        let rows: Vec<Vec<f64>> = (0..p)
            .map(|s| {
                (0..p)
                    .map(|d| {
                        if s == d {
                            0.0
                        } else {
                            50.0 + salt
                                + 40.0 * ((s as f64) * 1.37).sin() * ((d as f64) * 0.73).cos()
                        }
                    })
                    .collect()
            })
            .collect();
        CommMatrix::from_rows(&rows)
    }

    fn order_for(p: usize) -> SendOrder {
        SendOrder::new(
            (0..p)
                .map(|s| (0..p).filter(|&d| d != s).collect())
                .collect(),
        )
    }

    #[test]
    fn exact_key_replays_and_near_key_warms() {
        let mut cache = PlanCache::new(8, 0.10);
        let m = matrix(6, 0.0);
        cache.insert("matching-max", &m, order_for(6), vec![1.0; 6], None);

        assert!(matches!(
            cache.lookup("matching-max", &m),
            CacheLookup::Hit(_)
        ));

        // ±2% perturbation: not an exact hit, but a confirmed warm.
        let mut rows: Vec<Vec<f64>> = (0..6).map(|s| m.row(s).to_vec()).collect();
        for (s, row) in rows.iter_mut().enumerate() {
            for (d, cell) in row.iter_mut().enumerate() {
                if s != d {
                    *cell *= if (s + d) % 2 == 0 { 1.02 } else { 0.98 };
                }
            }
        }
        let near = CommMatrix::from_rows(&rows);
        match cache.lookup("matching-max", &near) {
            CacheLookup::Warm { seed, deviation } => {
                assert_eq!(seed.len(), 6);
                assert!(deviation <= 0.0201, "measured {deviation}");
            }
            other => panic!("expected warm, got {other:?}"),
        }

        // A structurally different matrix misses.
        assert!(matches!(
            cache.lookup("matching-max", &matrix(6, 500.0)),
            CacheLookup::Miss
        ));
        // A different algorithm namespace misses even on the same matrix.
        assert!(matches!(cache.lookup("greedy", &m), CacheLookup::Miss));
        let stats = cache.stats();
        assert_eq!((stats.exact_hits, stats.warm_hits, stats.misses), (1, 1, 2));
    }

    #[test]
    fn entries_with_retained_plans_answer_near_hits_incrementally() {
        use adaptcomm_core::algorithms::{MatchingKind, MatchingScheduler};
        let mut cache = PlanCache::new(8, 0.10);
        let m = matrix(6, 0.0);
        let sched = MatchingScheduler::new(MatchingKind::Max);
        let plan = sched.plan_seeded(&m, None);
        cache.insert(
            "matching-max",
            &m,
            order_for(6),
            plan.seed_potentials.clone(),
            Some(Box::new(plan)),
        );
        // A small perturbation confirms against the cached matrix and
        // hands back the retained plan instead of bare potentials.
        let mut rows: Vec<Vec<f64>> = (0..6).map(|s| m.row(s).to_vec()).collect();
        rows[0][1] *= 1.02;
        let near = CommMatrix::from_rows(&rows);
        match cache.lookup("matching-max", &near) {
            CacheLookup::Incremental { plan, deviation } => {
                assert_eq!(plan.processors(), 6);
                assert!(deviation <= 0.0201, "measured {deviation}");
            }
            other => panic!("expected incremental, got {other:?}"),
        }
        assert_eq!(cache.stats().incremental_hits, 1);
        assert_eq!(cache.stats().warm_hits, 0);
    }

    #[test]
    fn entries_without_seeds_never_nominate_warm_starts() {
        let mut cache = PlanCache::new(8, 0.10);
        let m = matrix(5, 0.0);
        cache.insert("greedy", &m, order_for(5), Vec::new(), None);
        let mut rows: Vec<Vec<f64>> = (0..5).map(|s| m.row(s).to_vec()).collect();
        rows[0][1] *= 1.01;
        let near = CommMatrix::from_rows(&rows);
        assert!(matches!(cache.lookup("greedy", &near), CacheLookup::Miss));
        // The exact key still replays.
        assert!(matches!(cache.lookup("greedy", &m), CacheLookup::Hit(_)));
    }

    #[test]
    fn fifo_eviction_unindexes_the_oldest_entry() {
        let mut cache = PlanCache::new(2, 0.10);
        let (a, b, c) = (matrix(4, 0.0), matrix(4, 10.0), matrix(4, 20.0));
        cache.insert("matching-max", &a, order_for(4), vec![0.0; 4], None);
        cache.insert("matching-max", &b, order_for(4), vec![0.0; 4], None);
        cache.insert("matching-max", &c, order_for(4), vec![0.0; 4], None);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(matches!(
            cache.lookup("matching-max", &a),
            CacheLookup::Miss
        ));
        assert!(matches!(
            cache.lookup("matching-max", &b),
            CacheLookup::Hit(_)
        ));
        assert!(matches!(
            cache.lookup("matching-max", &c),
            CacheLookup::Hit(_)
        ));
    }

    #[test]
    fn probe_answers_from_the_exact_key_alone() {
        let mut cache = PlanCache::new(4, 0.10);
        let m = matrix(4, 0.0);
        cache.insert("matching-max", &m, order_for(4), Vec::new(), None);
        let fp = m.fingerprint();
        assert!(cache.probe("matching-max", fp).is_some());
        assert!(cache.probe("matching-max", fp ^ 1).is_none());
    }
}

//! §6 QoS admission control: EDF within priority tiers, projected
//! completion against deadlines, reject-with-retry-after.
//!
//! The paper's §6 argues a scheduling service must refuse work it
//! cannot finish in time rather than degrade everyone. This module is
//! that policy for the plan server:
//!
//! * Requests queue in **priority tiers** (higher tier served first);
//!   within a tier the queue is **earliest-deadline-first**, ties
//!   broken by arrival order.
//! * At submission the controller projects the request's completion —
//!   service-time estimates of every queued request that would be
//!   served ahead of it, plus work already in flight, plus its own
//!   estimate (a serial projection: conservative when several workers
//!   drain the queue). A projection past the deadline is an immediate
//!   [`AdmissionError::Rejected`] carrying `retry_after_ms`, the
//!   projected drain time of the backlog.
//! * Estimates come from the caller (the server keys EWMAs by
//!   `(algorithm, P)` and substitutes the near-zero replay cost on a
//!   cache hit — which is what makes tight deadlines *admittable* at
//!   all once the cache is warm).

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

/// Why a request was not admitted.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// Projected completion blows the deadline.
    Rejected {
        /// Suggested wait before retrying: projected backlog drain.
        retry_after_ms: f64,
        /// The projection that failed the deadline test.
        projected_ms: f64,
    },
    /// The queue is closed (server shutting down).
    Closed,
}

/// QoS attributes of one queued request.
#[derive(Debug, Clone, Copy)]
struct ServiceKey {
    priority: u8,
    deadline_ms: f64, // f64::INFINITY when absent
    seq: u64,
}

impl ServiceKey {
    /// `true` when `self` is served before `other`.
    fn serves_before(&self, other: &ServiceKey) -> bool {
        if self.priority != other.priority {
            return self.priority > other.priority;
        }
        match self.deadline_ms.total_cmp(&other.deadline_ms) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.seq < other.seq,
        }
    }
}

struct QueuedJob<T> {
    key: ServiceKey,
    est_ms: f64,
    payload: T,
}

impl<T> PartialEq for QueuedJob<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key.seq == other.key.seq
    }
}
impl<T> Eq for QueuedJob<T> {}
impl<T> PartialOrd for QueuedJob<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for QueuedJob<T> {
    /// Max-heap order: the greatest element is served first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.key.serves_before(&other.key) {
            std::cmp::Ordering::Greater
        } else if other.key.serves_before(&self.key) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Equal
        }
    }
}

struct Inner<T> {
    heap: BinaryHeap<QueuedJob<T>>,
    queued_ms: f64,
    in_flight_ms: f64,
    in_flight: usize,
    next_seq: u64,
    served: u64,
    closed: bool,
}

/// A claimed job: what a worker pops from the queue.
#[derive(Debug)]
pub struct Claimed<T> {
    /// Admission sequence number (arrival order).
    pub seq: u64,
    /// The service-time estimate the job was admitted under.
    pub est_ms: f64,
    /// The request itself.
    pub payload: T,
}

/// The admission-controlled work queue.
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

impl<T> Default for AdmissionQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> AdmissionQueue<T> {
    /// An empty, open queue.
    pub fn new() -> Self {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                queued_ms: 0.0,
                in_flight_ms: 0.0,
                in_flight: 0,
                next_seq: 0,
                served: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Admits or rejects a request. `deadline_ms` is relative to now;
    /// `est_ms` is the caller's service-time estimate. Returns the
    /// admission sequence number.
    pub fn submit(
        &self,
        priority: u8,
        deadline_ms: Option<f64>,
        est_ms: f64,
        payload: T,
    ) -> Result<u64, AdmissionError> {
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        if inner.closed {
            return Err(AdmissionError::Closed);
        }
        let key = ServiceKey {
            priority,
            deadline_ms: deadline_ms.unwrap_or(f64::INFINITY),
            seq: inner.next_seq,
        };
        if let Some(deadline) = deadline_ms {
            let ahead_ms: f64 = inner
                .heap
                .iter()
                .filter(|j| j.key.serves_before(&key))
                .map(|j| j.est_ms)
                .sum();
            let projected_ms = inner.in_flight_ms + ahead_ms + est_ms;
            if projected_ms > deadline {
                let retry_after_ms = inner.in_flight_ms + inner.queued_ms;
                return Err(AdmissionError::Rejected {
                    retry_after_ms,
                    projected_ms,
                });
            }
        }
        inner.next_seq += 1;
        inner.queued_ms += est_ms;
        inner.heap.push(QueuedJob {
            key,
            est_ms,
            payload,
        });
        drop(inner);
        self.ready.notify_one();
        Ok(key.seq)
    }

    /// Blocks for the next job in QoS order; `None` once the queue is
    /// closed *and* drained.
    pub fn pop(&self) -> Option<Claimed<T>> {
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        loop {
            if let Some(job) = inner.heap.pop() {
                inner.queued_ms = (inner.queued_ms - job.est_ms).max(0.0);
                inner.in_flight_ms += job.est_ms;
                inner.in_flight += 1;
                return Some(Claimed {
                    seq: job.key.seq,
                    est_ms: job.est_ms,
                    payload: job.payload,
                });
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("admission queue poisoned");
        }
    }

    /// Marks a claimed job finished; returns the global completion
    /// sequence number (1-based serving order).
    pub fn complete(&self, est_ms: f64) -> u64 {
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        inner.in_flight = inner.in_flight.saturating_sub(1);
        inner.in_flight_ms = (inner.in_flight_ms - est_ms).max(0.0);
        inner.served += 1;
        inner.served
    }

    /// Queued (not yet claimed) request count, for gauges.
    pub fn depth(&self) -> usize {
        self.inner
            .lock()
            .expect("admission queue poisoned")
            .heap
            .len()
    }

    /// Closes the queue: future submits fail, blocked pops drain what
    /// remains and then return `None`.
    pub fn close(&self) {
        self.inner.lock().expect("admission queue poisoned").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn serves_priority_tiers_then_edf_then_arrival() {
        let q: AdmissionQueue<&str> = AdmissionQueue::new();
        q.submit(0, Some(100.0), 1.0, "low-tight").unwrap();
        q.submit(0, None, 1.0, "low-open-a").unwrap();
        q.submit(0, None, 1.0, "low-open-b").unwrap();
        q.submit(3, Some(500.0), 1.0, "high-late").unwrap();
        q.submit(3, Some(50.0), 1.0, "high-soon").unwrap();
        q.close();
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|c| c.payload)).collect();
        assert_eq!(
            order,
            vec![
                "high-soon",
                "high-late",
                "low-tight",
                "low-open-a",
                "low-open-b"
            ]
        );
    }

    #[test]
    fn projection_rejects_unmeetable_deadlines_with_retry_after() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new();
        // Higher-tier backlog is always ahead of a tier-0 arrival.
        // (Same-tier open-deadline work would NOT be: EDF serves a
        // tight deadline first, so it projects nothing ahead.)
        q.submit(5, None, 40.0, 1).unwrap();
        q.submit(5, None, 40.0, 2).unwrap();
        // 80 ms queued ahead + 10 ms own estimate > 50 ms deadline.
        match q.submit(0, Some(50.0), 10.0, 3) {
            Err(AdmissionError::Rejected {
                retry_after_ms,
                projected_ms,
            }) => {
                assert_eq!(retry_after_ms, 80.0);
                assert_eq!(projected_ms, 90.0);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // The same request with a generous deadline is admitted.
        q.submit(0, Some(500.0), 10.0, 4).unwrap();
        // A still-higher tier jumps the backlog, so its projection is
        // its own estimate alone — a tight deadline stays admittable.
        q.submit(7, Some(12.0), 10.0, 5).unwrap();
    }

    #[test]
    fn completing_in_flight_work_frees_admission_room() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new();
        q.submit(0, None, 40.0, 1).unwrap();
        let claimed = q.pop().unwrap();
        // Still projected: the job is in flight, not gone.
        assert!(matches!(
            q.submit(0, Some(30.0), 1.0, 2),
            Err(AdmissionError::Rejected { .. })
        ));
        assert_eq!(q.complete(claimed.est_ms), 1);
        q.submit(0, Some(30.0), 1.0, 3).unwrap();
    }

    #[test]
    fn close_drains_then_unblocks_poppers() {
        let q: Arc<AdmissionQueue<u32>> = Arc::new(AdmissionQueue::new());
        q.submit(0, None, 1.0, 7).unwrap();
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(c) = q.pop() {
                    seen.push(c.payload);
                    q.complete(c.est_ms);
                }
                seen
            })
        };
        q.submit(0, None, 1.0, 8).unwrap();
        // Give the popper a moment, then close; it must drain and exit.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        let seen = popper.join().unwrap();
        assert_eq!(seen.len(), 2);
        assert!(matches!(
            q.submit(0, None, 1.0, 9),
            Err(AdmissionError::Closed)
        ));
        assert_eq!(q.depth(), 0);
    }
}

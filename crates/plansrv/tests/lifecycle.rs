//! Graceful-lifecycle regression tests: ephemeral-port bind, the
//! shutdown control frame, and — the load-bearing one — in-flight
//! requests completing before the server stops.

use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_plansrv::proto::{PlanResponse, QosSpec};
use adaptcomm_plansrv::{PlanClient, PlanServer, PlanServerConfig};
use std::time::Duration;

fn matrix(p: usize) -> CommMatrix {
    CommMatrix::from_fn(p, |s, d| {
        if s == d {
            0.0
        } else {
            50.0 + 40.0 * ((s as f64) * 1.37).sin() * ((d as f64) * 0.73).cos()
        }
    })
}

#[test]
fn binds_an_ephemeral_port_and_acknowledges_shutdown() {
    let server = PlanServer::bind("127.0.0.1:0", PlanServerConfig::default()).expect("bind");
    assert_ne!(server.local_addr().port(), 0, "port 0 must resolve");
    let client = PlanClient::connect(server.local_addr()).expect("connect");
    let bye = client.shutdown().expect("shutdown round-trip");
    assert!(matches!(bye, PlanResponse::Bye));
    // The control frame alone stops the server; join() must return.
    server.join();
}

#[test]
fn server_side_shutdown_joins_cleanly() {
    let server = PlanServer::bind("127.0.0.1:0", PlanServerConfig::default()).expect("bind");
    // No clients at all: shutdown must not hang on the accept loop.
    server.shutdown();
}

#[test]
fn near_requests_are_replanned_incrementally_and_match_a_cold_solve() {
    use adaptcomm_core::algorithms::{MatchingKind, MatchingScheduler};
    use adaptcomm_core::schedule::SendOrder;
    use adaptcomm_plansrv::proto::CacheDisposition;

    let config = PlanServerConfig {
        threads: 2,
        ..Default::default()
    };
    let server = PlanServer::bind("127.0.0.1:0", config).expect("bind");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");
    let m = matrix(12);
    let ok = |r: PlanResponse| match r {
        PlanResponse::Ok(ok) => ok,
        other => panic!("expected a plan, got {other:?}"),
    };

    let cold = ok(client
        .plan("t", "matching-max", &m, QosSpec::default())
        .expect("cold"));
    assert_eq!(cold.cache, CacheDisposition::Cold);

    // The same matrix replays verbatim.
    let hit = ok(client
        .plan("t", "matching-max", &m, QosSpec::default())
        .expect("hit"));
    assert_eq!(hit.cache, CacheDisposition::Hit);
    assert_eq!(hit.order, cold.order);

    // A small perturbation (max cell untouched) is served by §6
    // incremental rescheduling off the retained plan...
    let mut rows: Vec<Vec<f64>> = (0..12).map(|s| m.row(s).to_vec()).collect();
    rows[0][1] *= 1.03;
    rows[5][7] *= 0.97;
    let near = CommMatrix::from_rows(&rows);
    let inc = ok(client
        .plan("t", "matching-max", &near, QosSpec::default())
        .expect("incremental"));
    assert_eq!(inc.cache, CacheDisposition::Incremental);

    // ...and the spliced-plus-resolved plan is exactly what a cold
    // solve of the perturbed instance would produce.
    let reference = MatchingScheduler::new(MatchingKind::Max).plan_seeded(&near, None);
    assert_eq!(inc.order, SendOrder::from_steps(12, &reference.steps));

    server.shutdown();
}

#[test]
fn in_flight_requests_complete_before_the_server_stops() {
    // One deliberately slow worker: the pace knob stretches the solve
    // so the shutdown frame provably arrives while work is in flight.
    let config = PlanServerConfig {
        workers: 1,
        pace: Some(Duration::from_millis(300)),
        ..Default::default()
    };
    let server = PlanServer::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    let slow = std::thread::spawn(move || {
        let mut client = PlanClient::connect(addr).expect("connect");
        client.plan(
            "tenant-slow",
            "matching-max",
            &matrix(16),
            QosSpec::default(),
        )
    });
    // Let the slow request reach the worker before asking to stop.
    std::thread::sleep(Duration::from_millis(80));

    let bye = PlanClient::connect(addr)
        .expect("connect for shutdown")
        .shutdown()
        .expect("shutdown round-trip");
    assert!(matches!(bye, PlanResponse::Bye));

    // The in-flight request must still be answered with a real plan —
    // the drain ordering (handlers join before the queue closes) is
    // exactly what this pins.
    match slow.join().expect("client thread").expect("response") {
        PlanResponse::Ok(ok) => {
            assert!(ok.completion_ms > 0.0);
            assert_eq!(ok.order.processors(), 16);
        }
        other => panic!("in-flight request was dropped: {other:?}"),
    }
    server.join();

    // And after the drain the port is actually released.
    let err = PlanClient::connect(addr);
    assert!(err.is_err(), "listener must be gone after join()");
}

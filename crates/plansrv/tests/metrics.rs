//! Per-tenant metrics hygiene: hostile tenant names must come out of
//! the server as sanitized, line-disciplined metric keys, and the
//! `/tenants` JSON built from them must parse with the same crate's
//! JSON parser.
//!
//! This test owns its binary because it enables the process-global
//! registry; sharing a binary with other integration tests would leak
//! that state across threads.

use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_obs::json::Value;
use adaptcomm_obs::{prom_name, Registry, MS_BUCKETS};
use adaptcomm_plansrv::server::{tenants_json, PlanServer, PlanServerConfig};
use adaptcomm_plansrv::{PlanClient, PlanResponse, QosSpec};

/// A tenant name chosen to punish any unsanitized metric emitter:
/// quotes, a newline, JSON braces, non-ASCII, and dots.
const HOSTILE_TENANT: &str = "alice \"a\"/链路\n{x.y}";

#[test]
fn pathological_tenant_names_round_trip_through_the_metric_pipeline() {
    let obs = adaptcomm_obs::global();
    obs.clear();
    obs.set_enabled(true);

    let server = PlanServer::bind("127.0.0.1:0", PlanServerConfig::default()).unwrap();
    let mut client = PlanClient::connect(server.local_addr()).unwrap();
    let matrix = CommMatrix::from_fn(4, |s, d| if s == d { 0.0 } else { (s * 4 + d) as f64 });

    let first = client
        .plan(HOSTILE_TENANT, "matching-max", &matrix, QosSpec::default())
        .unwrap();
    assert!(matches!(first, PlanResponse::Ok(_)), "{first:?}");
    // A generous deadline on the replay: a deadline_hit counter.
    let qos = QosSpec {
        deadline_ms: Some(60_000.0),
        ..QosSpec::default()
    };
    let second = client
        .plan(HOSTILE_TENANT, "matching-max", &matrix, qos)
        .unwrap();
    assert!(matches!(second, PlanResponse::Ok(_)), "{second:?}");
    server.shutdown();

    let snap = obs.snapshot();
    obs.set_enabled(false);

    // The sanitized key is derivable from the tenant name alone.
    let key = format!("plansrv.tenant.{}.requests", prom_name(HOSTILE_TENANT));
    assert_eq!(snap.counter(&key), Some(2), "missing {key:?}");
    // No per-tenant key carries raw hostile bytes: the tenant segment
    // between `plansrv.tenant.` and the final `.aspect` is already
    // Prometheus-clean (its own sanitization is a fixed point).
    for c in snap
        .counters
        .iter()
        .filter(|c| c.name.starts_with("plansrv.tenant."))
    {
        let segment = c.name["plansrv.tenant.".len()..].split_once('.').unwrap().0;
        assert_eq!(segment, prom_name(segment), "unsanitized key {:?}", c.name);
    }
    let prom = snap.to_prometheus();
    assert!(prom
        .bytes()
        .all(|b| b == b'\n' || (!b.is_ascii_control() && b.is_ascii())));

    // The /tenants document parses with this workspace's own parser and
    // aggregates the hostile tenant under its sanitized name.
    let doc = Value::parse(&tenants_json(&snap)).expect("tenants JSON must parse");
    let tenants = doc.get("tenants").and_then(Value::as_arr).unwrap();
    let row = tenants
        .iter()
        .find(|t| t.get("name").and_then(Value::as_str) == Some(&prom_name(HOSTILE_TENANT)))
        .expect("hostile tenant row");
    assert_eq!(row.get("requests").and_then(Value::as_u64), Some(2));
    assert_eq!(
        row.get("cache")
            .and_then(|c| c.get("hit"))
            .and_then(Value::as_u64),
        Some(1)
    );
    let deadline = row.get("deadline").unwrap();
    assert_eq!(deadline.get("hit").and_then(Value::as_u64), Some(1));
    assert_eq!(deadline.get("hit_ratio").and_then(Value::as_f64), Some(1.0));
    assert!(
        row.get("latency_ms")
            .and_then(|l| l.get("count"))
            .and_then(Value::as_u64)
            .unwrap()
            >= 2
    );
}

#[test]
fn tenants_json_aggregates_and_digests_deterministically() {
    // Deterministic aggregation over a hand-fed local registry: no
    // server, no global state.
    let reg = Registry::new();
    reg.add("plansrv.tenant.alice.requests", 10);
    reg.add("plansrv.tenant.alice.rejected", 2);
    reg.add("plansrv.tenant.alice.cache_miss", 3);
    reg.add("plansrv.tenant.alice.deadline_hit", 3);
    reg.add("plansrv.tenant.alice.deadline_miss", 1);
    for _ in 0..19 {
        reg.observe("plansrv.tenant.alice.latency_ms", MS_BUCKETS, 0.4);
    }
    reg.observe("plansrv.tenant.alice.latency_ms", MS_BUCKETS, 900.0);
    reg.add("plansrv.tenant.bob.requests", 1);
    reg.add("plansrv.unrelated", 7); // not tenant-shaped: ignored

    let doc = Value::parse(&tenants_json(&reg.snapshot())).unwrap();
    let tenants = doc.get("tenants").and_then(Value::as_arr).unwrap();
    assert_eq!(tenants.len(), 2);

    let alice = &tenants[0];
    assert_eq!(alice.get("name").and_then(Value::as_str), Some("alice"));
    assert_eq!(alice.get("requests").and_then(Value::as_u64), Some(10));
    assert_eq!(alice.get("rejected").and_then(Value::as_u64), Some(2));
    assert_eq!(
        alice
            .get("deadline")
            .and_then(|d| d.get("hit_ratio"))
            .and_then(Value::as_f64),
        Some(0.75)
    );
    let latency = alice.get("latency_ms").unwrap();
    assert_eq!(latency.get("count").and_then(Value::as_u64), Some(20));
    // 19 of 20 observations sit at 0.4 ms; the p95 bound must cover
    // them without jumping to the 900 ms outlier's bucket.
    let p95 = latency.get("p95_ms").and_then(Value::as_f64).unwrap();
    assert!((0.4..10.0).contains(&p95), "p95 {p95}");

    let bob = &tenants[1];
    assert_eq!(bob.get("name").and_then(Value::as_str), Some("bob"));
    // No deadline-bound requests: the ratio is null, not a made-up 1.0.
    assert_eq!(
        bob.get("deadline").and_then(|d| d.get("hit_ratio")),
        Some(&Value::Null)
    );
    assert_eq!(bob.get("latency_ms"), Some(&Value::Null));
}

//! Property tests for the plan-server wire codec: no input —
//! truncated, oversized, garbage, or split at arbitrary byte
//! boundaries — may panic, and every failure is a typed
//! [`ProtocolError`].

use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_obs::trace::TraceContext;
use adaptcomm_plansrv::proto::{
    encode_request, frame, parse_request, parse_response, FrameReader, PlanRequest, ProtocolError,
    QosSpec, Request, MAX_FRAME, PROTO_VERSION,
};
use proptest::prelude::*;

fn bytes(count: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u64..256, count)
        .prop_map(|v| v.into_iter().map(|b| b as u8).collect())
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (2usize..6).prop_flat_map(|p| {
        (
            proptest::collection::vec(0.0f64..100.0, p * p),
            proptest::collection::vec((0u64..8, 0u64..8), 3),
            (0u64..4, 0u64..256, 0.0f64..50.0, 0u64..3),
        )
            .prop_map(
                move |(cells, links, (variant, priority, deadline, crit_n))| {
                    let matrix =
                        CommMatrix::from_fn(p, |s, d| if s == d { 0.0 } else { cells[s * p + d] });
                    let qos = QosSpec {
                        deadline_ms: if variant & 1 == 0 {
                            Some(deadline)
                        } else {
                            None
                        },
                        priority: priority as u8,
                        critical_links: links
                            .iter()
                            .take(crit_n as usize)
                            .map(|&(s, d)| (s as usize, d as usize))
                            .collect(),
                    };
                    let fingerprint = matrix.fingerprint();
                    Request::Plan(PlanRequest {
                        tenant: format!("tenant-{}", variant),
                        algorithm: "matching-max".into(),
                        // Keep at least one of matrix/fingerprint (both absent
                        // is rejected by the parser, by design).
                        matrix: if variant == 2 { None } else { Some(matrix) },
                        fingerprint: if variant == 3 {
                            None
                        } else {
                            Some(fingerprint)
                        },
                        qos,
                        // Traced and untraced requests both round-trip.
                        trace: if variant & 1 == 0 {
                            Some(TraceContext::root(&format!("tenant-{}", variant), priority))
                        } else {
                            None
                        },
                    })
                },
            )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Garbage payloads parse to a typed error, never a panic.
    #[test]
    fn garbage_payloads_never_panic(payload in bytes(40)) {
        if let Err(e) = parse_request(&payload) {
            prop_assert!(matches!(e, ProtocolError::Malformed { .. }));
        }
        if let Err(e) = parse_response(&payload) {
            prop_assert!(matches!(e, ProtocolError::Malformed { .. }));
        }
    }

    /// A garbage byte stream fed to the frame reader in arbitrary
    /// chunks yields typed errors or frames, never a panic.
    #[test]
    fn garbage_streams_never_panic(stream in bytes(96), chunks in proptest::collection::vec(1usize..24, 8)) {
        let mut reader = FrameReader::new();
        let mut offset = 0;
        let mut dead = false;
        for c in chunks {
            let end = (offset + c).min(stream.len());
            reader.push(&stream[offset..end]);
            offset = end;
            loop {
                match reader.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(e) => {
                        // A bad header is one of the two header errors
                        // (garbage almost never spells PROTO_VERSION).
                        prop_assert!(matches!(
                            e,
                            ProtocolError::BadVersion { .. } | ProtocolError::Oversized { .. }
                        ));
                        dead = true;
                        break;
                    }
                }
            }
            if dead {
                break;
            }
        }
        let _ = reader.finish();
    }

    /// Valid requests survive encode → frame → split-at-any-boundary →
    /// reassemble → parse, bit-identically.
    #[test]
    fn round_trip_survives_arbitrary_splits(
        reqs in proptest::collection::vec(request_strategy(), 3),
        cuts in proptest::collection::vec(1usize..97, 24),
    ) {
        let mut stream = Vec::new();
        for r in &reqs {
            stream.extend_from_slice(&frame(&encode_request(r)));
        }
        let mut reader = FrameReader::new();
        let mut offset = 0;
        let mut decoded = Vec::new();
        let mut cut = cuts.into_iter();
        while offset < stream.len() {
            let step = cut.next().map_or(stream.len(), |c| c * 17);
            let end = (offset + step).min(stream.len());
            reader.push(&stream[offset..end]);
            offset = end;
            while let Some(payload) = reader.next_frame().unwrap() {
                decoded.push(parse_request(&payload).unwrap());
            }
        }
        reader.finish().unwrap();
        prop_assert_eq!(decoded, reqs);
    }

    /// Truncating a valid frame anywhere is detected at end-of-stream
    /// as `Truncated`, never mid-stream and never a panic.
    #[test]
    fn truncation_is_always_detected(req in request_strategy(), keep in 0usize..64) {
        let full = frame(&encode_request(&req));
        // At least one byte, never the whole frame: always truncated.
        let keep = keep.clamp(1, full.len() - 1);
        let mut reader = FrameReader::new();
        reader.push(&full[..keep]);
        prop_assert_eq!(reader.next_frame().unwrap(), None);
        prop_assert!(matches!(reader.finish(), Err(ProtocolError::Truncated { .. })));
    }

    /// Corrupt length prefixes are rejected before any allocation.
    #[test]
    fn oversized_headers_are_rejected(len in (MAX_FRAME + 1)..u64::MAX) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&PROTO_VERSION.to_le_bytes());
        bytes.extend_from_slice(&len.to_le_bytes());
        let mut reader = FrameReader::new();
        reader.push(&bytes);
        prop_assert!(matches!(
            reader.next_frame(),
            Err(ProtocolError::Oversized { .. })
        ));
    }
}

//! Property tests: the §6.1 model variants degenerate to the base model
//! at their identity parameters, for *any* send order.

use adaptcomm_core::execution::execute_listed;
use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_core::schedule::SendOrder;
use adaptcomm_model::cost::{BufferedModel, InterleavedModel, LinkEstimate};
use adaptcomm_model::params::NetParams;
use adaptcomm_model::units::{Bandwidth, Bytes, Millis};
use adaptcomm_model::variation::{VariationConfig, VariationTrace};
use adaptcomm_sim::buffered::run_buffered;
use adaptcomm_sim::dynamic::{run_adaptive, AdaptiveConfig, Replanner};
use adaptcomm_sim::interleaved::run_interleaved;
use adaptcomm_sim::run_static;
use proptest::prelude::*;

/// Random instance: network, sizes, and a random valid send order.
#[derive(Debug, Clone)]
struct Instance {
    net: NetParams,
    sizes: Vec<Vec<Bytes>>,
    order: SendOrder,
}

fn instance(max_p: usize) -> impl Strategy<Value = Instance> {
    (2..=max_p).prop_flat_map(|p| {
        let net_entries = proptest::collection::vec((1.0f64..50.0, 100.0f64..5_000.0), p * p);
        let size_entries = proptest::collection::vec(1u64..200, p * p);
        let order_perms = proptest::collection::vec(any::<u64>(), p);
        (net_entries, size_entries, order_perms).prop_map(move |(nets, szs, seeds)| {
            let net = NetParams::from_fn(p, |s, d| {
                let (t, b) = nets[s * p + d];
                let _ = (s, d);
                LinkEstimate::new(Millis::new(t), Bandwidth::from_kbps(b))
            });
            let sizes: Vec<Vec<Bytes>> = (0..p)
                .map(|s| {
                    (0..p)
                        .map(|d| {
                            if s == d {
                                Bytes::ZERO
                            } else {
                                Bytes::from_kb(szs[s * p + d])
                            }
                        })
                        .collect()
                })
                .collect();
            // Deterministic per-sender shuffles from the seeds.
            let order = SendOrder::new(
                (0..p)
                    .map(|s| {
                        let mut dsts: Vec<usize> = (0..p).filter(|&d| d != s).collect();
                        let mut state = seeds[s] | 1;
                        for i in (1..dsts.len()).rev() {
                            state ^= state << 13;
                            state ^= state >> 7;
                            state ^= state << 17;
                            dsts.swap(i, (state as usize) % (i + 1));
                        }
                        dsts
                    })
                    .collect(),
            );
            Instance { net, sizes, order }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The message-level simulator equals the analytic execution.
    #[test]
    fn simulator_equals_analytic_execution(inst in instance(8)) {
        let matrix = CommMatrix::from_model(&inst.net, &inst.sizes);
        let analytic = execute_listed(&inst.order, &matrix);
        let run = run_static(&inst.order, &inst.net, &inst.sizes);
        prop_assert!(
            (analytic.completion_time().as_ms() - run.makespan.as_ms()).abs() < 1e-6
        );
    }

    /// Interleaving with fan-in 1 is the base model, for any α.
    #[test]
    fn interleaved_fan_in_one_is_identity(inst in instance(7), alpha in 0.0f64..2.0) {
        let base = run_static(&inst.order, &inst.net, &inst.sizes);
        let model = InterleavedModel::new(inst.net.clone(), alpha, 1);
        let inter = run_interleaved(&inst.order, &model, &inst.sizes);
        prop_assert!((base.makespan.as_ms() - inter.makespan.as_ms()).abs() < 1e-6);
    }

    /// An effectively infinite buffer with instant drain reproduces the
    /// base network makespan and never stalls.
    #[test]
    fn infinite_buffer_is_identity(inst in instance(7)) {
        let base = run_static(&inst.order, &inst.net, &inst.sizes);
        let model = BufferedModel::new(
            inst.net.clone(),
            Bytes::from_mb(100_000),
            Bandwidth::from_kbps(1e15),
        );
        let buffered = run_buffered(&inst.order, &model, &inst.sizes);
        prop_assert!(
            (base.makespan.as_ms() - buffered.network_makespan.as_ms()).abs() < 1e-6
        );
        prop_assert_eq!(buffered.total_buffer_stall.as_ms(), 0.0);
    }

    /// A zero-volatility trace reproduces the planned schedule exactly.
    #[test]
    fn frozen_trace_matches_plan(inst in instance(7)) {
        let cfg = VariationConfig { volatility: 0.0, ..Default::default() };
        let mut trace = VariationTrace::new(inst.net.clone(), cfg, 0);
        let out = run_adaptive(&inst.order, &inst.sizes, &mut trace, &AdaptiveConfig::oblivious());
        let matrix = CommMatrix::from_model(&inst.net, &inst.sizes);
        let planned = execute_listed(&inst.order, &matrix);
        prop_assert!((out.makespan.as_ms() - planned.completion_time().as_ms()).abs() < 1e-6);
    }

    /// Whatever the drift, every message is delivered exactly once and
    /// port constraints hold in the realized trace.
    #[test]
    fn dynamic_execution_is_always_physical(inst in instance(6), seed in 0u64..100) {
        let cfg = VariationConfig {
            step: Millis::new(100.0),
            volatility: 0.4,
            floor: 0.05,
            ceil: 4.0,
        };
        let mut trace = VariationTrace::new(inst.net.clone(), cfg, seed);
        let out = run_adaptive(
            &inst.order,
            &inst.sizes,
            &mut trace,
            &AdaptiveConfig {
                policy: adaptcomm_core::checkpointed::CheckpointPolicy::Halving,
                rule: adaptcomm_core::checkpointed::RescheduleRule::default(),
                replanner: Replanner::OpenShop,
            },
        );
        let p = inst.net.len();
        prop_assert_eq!(out.records.len(), p * (p - 1));
        let mut seen = vec![false; p * p];
        for r in &out.records {
            prop_assert!(!seen[r.src * p + r.dst], "duplicate transfer");
            seen[r.src * p + r.dst] = true;
        }
        for proc in 0..p {
            for side in [true, false] {
                let mut evs: Vec<_> = out
                    .records
                    .iter()
                    .filter(|r| if side { r.src == proc } else { r.dst == proc })
                    .collect();
                evs.sort_by(|a, b| a.start.as_ms().total_cmp(&b.start.as_ms()));
                for w in evs.windows(2) {
                    prop_assert!(w[0].finish.as_ms() <= w[1].start.as_ms() + 1e-9);
                }
            }
        }
    }
}

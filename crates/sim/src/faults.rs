//! Deterministic fault injection.
//!
//! A [`ScriptedFaults`] evolution applies a scripted sequence of link
//! degradations and recoveries on top of base estimates: at its scripted
//! time, a fault multiplies the directed pair's bandwidth by `factor`
//! (`1e-3` ≈ a flapping, nearly-dead link); a recovery restores it. Used
//! to test that checkpoint-based rescheduling routes traffic *around*
//! events that pure stochastic drift would only blur.

use crate::dynamic::NetworkEvolution;
use adaptcomm_model::params::NetParams;
use adaptcomm_model::units::Millis;

/// One scripted network event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// When the change takes effect.
    pub at: Millis,
    /// Affected directed pair.
    pub src: usize,
    /// Affected directed pair.
    pub dst: usize,
    /// Multiplier applied to the *base* bandwidth from `at` onwards
    /// (until another fault overwrites it). `< 1` degrades, `1.0`
    /// recovers, `> 1` upgrades.
    pub factor: f64,
}

/// A deterministic network evolution driven by a fault script.
#[derive(Debug, Clone)]
pub struct ScriptedFaults {
    base: NetParams,
    /// Script sorted by time.
    script: Vec<Fault>,
    /// Currently effective multipliers per directed pair.
    multipliers: Vec<f64>,
    /// Next script entry to apply.
    cursor: usize,
}

impl ScriptedFaults {
    /// Creates an evolution over `base` with the given script (sorted
    /// internally by activation time).
    pub fn new(base: NetParams, mut script: Vec<Fault>) -> Self {
        let p = base.len();
        for f in &script {
            assert!(
                f.src < p && f.dst < p && f.src != f.dst,
                "fault {f:?} out of range"
            );
            assert!(
                f.factor > 0.0 && f.factor.is_finite(),
                "factor must be positive"
            );
        }
        script.sort_by(|a, b| a.at.as_ms().total_cmp(&b.at.as_ms()));
        let n = p * p;
        ScriptedFaults {
            base,
            script,
            multipliers: vec![1.0; n],
            cursor: 0,
        }
    }

    /// The script, sorted by time.
    pub fn script(&self) -> &[Fault] {
        &self.script
    }
}

impl NetworkEvolution for ScriptedFaults {
    fn processors(&self) -> usize {
        self.base.len()
    }

    fn planning_estimates(&self) -> NetParams {
        self.base.clone()
    }

    fn state_at(&mut self, t: Millis) -> NetParams {
        let p = self.base.len();
        while self.cursor < self.script.len()
            && self.script[self.cursor].at.as_ms() <= t.as_ms() + 1e-12
        {
            let f = self.script[self.cursor];
            self.multipliers[f.src * p + f.dst] = f.factor;
            self.cursor += 1;
        }
        let mut out = self.base.clone();
        for src in 0..p {
            for dst in 0..p {
                if src != dst {
                    let m = self.multipliers[src * p + dst];
                    if m != 1.0 {
                        out.scale_bandwidth(src, dst, m);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{run_adaptive, AdaptiveConfig, Replanner};
    use adaptcomm_core::algorithms::{OpenShop, Scheduler};
    use adaptcomm_core::checkpointed::{CheckpointPolicy, RescheduleRule};
    use adaptcomm_core::matrix::CommMatrix;
    use adaptcomm_model::units::{Bandwidth, Bytes};

    fn base(p: usize) -> NetParams {
        NetParams::uniform(p, Millis::new(10.0), Bandwidth::from_kbps(1_000.0))
    }

    fn sizes(p: usize) -> Vec<Vec<Bytes>> {
        (0..p)
            .map(|s| {
                (0..p)
                    .map(|d| {
                        if s == d {
                            Bytes::ZERO
                        } else {
                            Bytes::from_kb(100)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn script_applies_at_the_right_times() {
        let mut ev = ScriptedFaults::new(
            base(3),
            vec![
                Fault {
                    at: Millis::new(100.0),
                    src: 0,
                    dst: 1,
                    factor: 0.1,
                },
                Fault {
                    at: Millis::new(200.0),
                    src: 0,
                    dst: 1,
                    factor: 1.0,
                },
            ],
        );
        assert_eq!(ev.state_at(Millis::new(50.0)), base(3));
        let degraded = ev.state_at(Millis::new(150.0));
        assert_eq!(degraded.estimate(0, 1).bandwidth.as_kbps(), 100.0);
        assert_eq!(degraded.estimate(1, 0).bandwidth.as_kbps(), 1_000.0);
        let recovered = ev.state_at(Millis::new(250.0));
        assert_eq!(recovered, base(3));
        assert_eq!(ev.processors(), 3);
        assert_eq!(ev.script().len(), 2);
    }

    #[test]
    fn unsorted_script_is_sorted() {
        let ev = ScriptedFaults::new(
            base(3),
            vec![
                Fault {
                    at: Millis::new(200.0),
                    src: 0,
                    dst: 1,
                    factor: 0.5,
                },
                Fault {
                    at: Millis::new(100.0),
                    src: 1,
                    dst: 2,
                    factor: 0.5,
                },
            ],
        );
        assert!(ev.script()[0].at.as_ms() <= ev.script()[1].at.as_ms());
    }

    #[test]
    fn adaptation_limits_the_damage_of_a_mid_run_fault() {
        // One link collapses to 1% bandwidth shortly into the exchange.
        // The oblivious run drags every remaining message to that pair
        // through the dead link; the adaptive run reorders so other
        // traffic proceeds while the slow transfer runs.
        let p = 8;
        let net = base(p);
        let m = CommMatrix::from_model(&net, &sizes(p));
        let order = OpenShop.send_order(&m);
        let script = vec![Fault {
            at: Millis::new(500.0),
            src: 0,
            dst: 1,
            factor: 0.01,
        }];

        let mut ev1 = ScriptedFaults::new(net.clone(), script.clone());
        let oblivious = run_adaptive(&order, &sizes(p), &mut ev1, &AdaptiveConfig::oblivious());
        let mut ev2 = ScriptedFaults::new(net.clone(), script);
        let adaptive = run_adaptive(
            &order,
            &sizes(p),
            &mut ev2,
            &AdaptiveConfig {
                policy: CheckpointPolicy::EveryEvent,
                rule: RescheduleRule {
                    deviation_threshold: 0.05,
                },
                replanner: Replanner::OpenShop,
            },
        );
        assert_eq!(adaptive.records.len(), p * (p - 1));
        assert!(
            adaptive.makespan.as_ms() <= oblivious.makespan.as_ms() + 1e-9,
            "adaptive {} should not lose to oblivious {} under a scripted fault",
            adaptive.makespan,
            oblivious.makespan
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_fault_rejected() {
        let _ = ScriptedFaults::new(
            base(2),
            vec![Fault {
                at: Millis::ZERO,
                src: 0,
                dst: 5,
                factor: 0.5,
            }],
        );
    }
}

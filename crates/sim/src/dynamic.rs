//! Execution under a drifting network, with checkpoint-based adaptation
//! (§6.3).
//!
//! "In some scenarios, the lengths of all communication events may not be
//! known even when the communication is started ... an initial
//! communication schedule can be derived using estimates of the
//! communication times. The schedule can then be modified at intermediate
//! checkpoints."
//!
//! [`run_adaptive`] executes an initial send order while the ground-truth
//! network follows any [`NetworkEvolution`] — a stochastic
//! [`VariationTrace`], a scripted [`crate::faults::ScriptedFaults`], or a
//! replayed [`adaptcomm_model::trace_io::RecordedTrace`]; each transfer
//! is priced from the network state at its start. After the `c`-th transfer completes, if
//! `c` is a checkpoint of the configured [`CheckpointPolicy`] and the
//! observed progress deviates from the plan beyond the
//! [`RescheduleRule`] threshold, the not-yet-started messages are
//! *replanned* with the open shop rule against a fresh directory
//! snapshot. In-flight transfers are never aborted.

use crate::engine::{Calendar, ScheduleError};
use crate::executor::TransferRecord;
use adaptcomm_core::algorithms::{MatchingKind, MatchingScheduler};
use adaptcomm_core::checkpointed::{CheckpointPolicy, RescheduleRule};
use adaptcomm_core::execution::execute_listed;
use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_core::schedule::SendOrder;
use adaptcomm_model::cost::CostModel;
use adaptcomm_model::params::NetParams;
use adaptcomm_model::units::{Bytes, Millis};
use adaptcomm_model::variation::VariationTrace;
use std::collections::VecDeque;
use std::fmt;

/// A network whose state evolves over (simulated) time.
///
/// The dynamic executor prices each transfer from the state at its start
/// time; queries arrive in non-decreasing time order. Implemented by
/// [`VariationTrace`] (stochastic drift) and by
/// [`crate::faults::ScriptedFaults`] (deterministic fault injection),
/// and composable by wrapping.
pub trait NetworkEvolution {
    /// Number of processors.
    fn processors(&self) -> usize;

    /// The estimates the directory reported at scheduling time.
    fn planning_estimates(&self) -> NetParams;

    /// The live network state at time `t` (non-decreasing queries).
    fn state_at(&mut self, t: Millis) -> NetParams;
}

impl NetworkEvolution for VariationTrace {
    fn processors(&self) -> usize {
        self.len()
    }

    fn planning_estimates(&self) -> NetParams {
        self.base().clone()
    }

    fn state_at(&mut self, t: Millis) -> NetParams {
        self.snapshot_at(t)
    }
}

impl NetworkEvolution for adaptcomm_model::trace_io::RecordedTrace {
    fn processors(&self) -> usize {
        adaptcomm_model::trace_io::RecordedTrace::processors(self)
    }

    fn planning_estimates(&self) -> NetParams {
        self.initial().clone()
    }

    fn state_at(&mut self, t: Millis) -> NetParams {
        adaptcomm_model::trace_io::RecordedTrace::state_at(self, t).clone()
    }
}

/// Which algorithm recomputes the remaining schedule at a replan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replanner {
    /// The open-shop earliest-available rule (cheap, order-based).
    #[default]
    OpenShop,
    /// The §4.3 matching construction, replanned *incrementally* (§6):
    /// the run retains the previous matching plan and each replan
    /// re-solves only the rounds invalidated by the drift delta,
    /// splicing certified rounds verbatim — see
    /// [`MatchingScheduler::replan_incremental`].
    Matching(MatchingKind),
}

/// Adaptation configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// When to evaluate rescheduling.
    pub policy: CheckpointPolicy,
    /// Whether a deviation is large enough to act on.
    pub rule: RescheduleRule,
    /// How the remaining messages are rescheduled when the rule fires.
    pub replanner: Replanner,
}

impl AdaptiveConfig {
    /// Run the initial schedule to completion, never adapting.
    pub fn oblivious() -> Self {
        AdaptiveConfig {
            policy: CheckpointPolicy::Never,
            rule: RescheduleRule::default(),
            replanner: Replanner::OpenShop,
        }
    }
}

/// Why an adaptive run could not proceed: the scenario produced a
/// degenerate event stream (e.g. a fault-injected network priced a
/// transfer at NaN). Surfaced as `Err` by [`run_adaptive_checked`] so a
/// harness thread does not abort and poison shared state.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A transfer produced an unschedulable completion event.
    DegenerateEvent {
        /// Sending processor of the offending transfer, when known.
        src: usize,
        /// Receiving processor of the offending transfer, when known.
        dst: usize,
        /// The underlying calendar rejection.
        cause: ScheduleError,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DegenerateEvent { src, dst, cause } => {
                write!(f, "degenerate event for transfer {src} -> {dst}: {cause}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of an adaptive run.
#[derive(Debug, Clone)]
pub struct DynamicOutcome {
    /// Completed transfers in completion order.
    pub records: Vec<TransferRecord>,
    /// Completion time under the drifting network.
    pub makespan: Millis,
    /// Checkpoints that were evaluated.
    pub checkpoints_evaluated: usize,
    /// Checkpoints that triggered a replan.
    pub reschedules: usize,
}

/// Replans the remaining messages with the open shop rule: pair the
/// earliest-available sender with its earliest-available remaining
/// receiver, repeatedly, using fresh cost estimates.
///
/// `remaining[src]` lists the not-yet-started destinations of each
/// sender; `send_busy_until` / `recv_busy_until` give the times each
/// port frees up (in-flight transfers are never aborted); `now` is the
/// checkpoint time. Public so the live runtime
/// (`adaptcomm-runtime`) applies the *same* decision rule as this
/// simulator — any divergence between the two would otherwise show up
/// as spurious cross-validation error, not as a scheduling difference.
pub fn openshop_replan(
    remaining: &[Vec<usize>],
    send_busy_until: &[f64],
    recv_busy_until: &[f64],
    now: f64,
    estimates: &NetParams,
    sizes: &[Vec<Bytes>],
) -> Vec<VecDeque<usize>> {
    let p = remaining.len();
    let mut send_avail: Vec<f64> = send_busy_until.iter().map(|&t| t.max(now)).collect();
    let mut recv_avail: Vec<f64> = recv_busy_until.iter().map(|&t| t.max(now)).collect();
    let mut sets: Vec<Vec<usize>> = remaining.to_vec();
    let mut order: Vec<VecDeque<usize>> = vec![VecDeque::new(); p];
    let mut active: Vec<usize> = (0..p).filter(|&i| !sets[i].is_empty()).collect();
    while !active.is_empty() {
        let (pos, &i) = active
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| send_avail[a].total_cmp(&send_avail[b]).then(a.cmp(&b)))
            .expect("non-empty");
        let (rpos, &j) = sets[i]
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| recv_avail[a].total_cmp(&recv_avail[b]).then(a.cmp(&b)))
            .expect("active senders have receivers");
        let t = send_avail[i].max(recv_avail[j]);
        let fin = t + estimates.message_time(i, j, sizes[i][j]).as_ms();
        send_avail[i] = fin;
        recv_avail[j] = fin;
        order[i].push_back(j);
        sets[i].swap_remove(rpos);
        if sets[i].is_empty() {
            active.swap_remove(pos);
        }
    }
    order
}

/// Replans the remaining messages with the matching scheduler (§6): the
/// full instance is re-planned from fresh estimates — *incrementally*,
/// against the scheduler's retained plan, so only the rounds the drift
/// delta invalidated are re-solved — and each sender's remaining
/// messages are emitted in the new plan's round order. Busy ports are
/// not modelled: the matching schedule is step-structured, and the
/// already-running transfers simply delay their senders' first new
/// message.
pub fn matching_replan(
    scheduler: &MatchingScheduler,
    remaining: &[Vec<usize>],
    estimates: &NetParams,
    sizes: &[Vec<Bytes>],
) -> Vec<VecDeque<usize>> {
    let p = remaining.len();
    let matrix = CommMatrix::from_model(estimates, sizes);
    let plan = scheduler.plan(&matrix);
    let mut keep: Vec<Vec<bool>> = vec![vec![false; p]; p];
    for (s, dsts) in remaining.iter().enumerate() {
        for &d in dsts {
            keep[s][d] = true;
        }
    }
    let mut order: Vec<VecDeque<usize>> = vec![VecDeque::new(); p];
    for step in &plan.steps {
        for (src, dst) in step.iter().enumerate() {
            if let Some(d) = *dst {
                if keep[src][d] {
                    order[src].push_back(d);
                }
            }
        }
    }
    order
}

/// Executes `initial_order` while the network follows `trace`.
///
/// The *plan* against which progress is judged is the analytic execution
/// of the initial order over the trace's base parameters (what the
/// directory reported at scheduling time). The deviation at checkpoint
/// `c` compares observed vs. planned elapsed time *since the last
/// replan*, so one early slowdown does not trigger every subsequent
/// checkpoint.
pub fn run_adaptive(
    initial_order: &SendOrder,
    sizes: &[Vec<Bytes>],
    trace: &mut impl NetworkEvolution,
    config: &AdaptiveConfig,
) -> DynamicOutcome {
    match run_adaptive_checked(initial_order, sizes, trace, config) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`run_adaptive`]: a scenario that produces a degenerate
/// event stream (NaN transfer durations, backwards time) comes back as
/// [`SimError`] instead of a panic. Fault-injection harnesses prefer
/// this form: a panicking simulation thread would poison whatever mutex
/// it held, wedging the rest of the harness.
pub fn run_adaptive_checked(
    initial_order: &SendOrder,
    sizes: &[Vec<Bytes>],
    trace: &mut impl NetworkEvolution,
    config: &AdaptiveConfig,
) -> Result<DynamicOutcome, SimError> {
    let p = trace.processors();
    assert_eq!(initial_order.processors(), p, "order does not match trace");
    assert_eq!(sizes.len(), p, "sizes do not match trace");
    let total_events: usize = initial_order.order.iter().map(|l| l.len()).sum();

    // Planned completion instants from the base estimates.
    let est_matrix = CommMatrix::from_model(&trace.planning_estimates(), sizes);
    let planned: Vec<f64> = {
        let sched = execute_listed(initial_order, &est_matrix);
        let mut finishes: Vec<f64> = sched.events().iter().map(|e| e.finish.as_ms()).collect();
        finishes.sort_by(f64::total_cmp);
        finishes
    };
    let checkpoint_set: Vec<usize> = config.policy.checkpoints(total_events);
    // The matching replanner retains its plan across replans; priming
    // it with the planning-estimates instance makes even the *first*
    // in-run replan incremental (it pays only the drifted rounds).
    let matching_sched = match config.replanner {
        Replanner::Matching(kind) => {
            let sched = MatchingScheduler::new(kind);
            sched.plan(&est_matrix);
            Some(sched)
        }
        Replanner::OpenShop => None,
    };

    #[derive(Clone, Copy)]
    enum Ev {
        SenderReady(usize),
        Completed { src: usize, dst: usize },
    }
    const CLS_READY: u8 = 0;
    const CLS_DONE: u8 = 1;

    let mut cal: Calendar<Ev> = Calendar::new();
    let mut queues: Vec<VecDeque<usize>> = initial_order
        .order
        .iter()
        .map(|l| l.iter().copied().collect())
        .collect();
    // pending[dst] = (request_time, src) waiting for the receiver.
    let mut pending: Vec<Vec<(f64, usize)>> = vec![Vec::new(); p];
    let mut busy = vec![false; p];
    let mut send_busy_until = vec![0.0f64; p];
    let mut recv_busy_until = vec![0.0f64; p];
    let mut records: Vec<TransferRecord> = Vec::with_capacity(total_events);
    let mut completed = 0usize;
    let mut checkpoints_evaluated = 0usize;
    let mut reschedules = 0usize;
    // Baselines for segment-relative deviation measurement.
    let mut base_obs = 0.0f64;
    let mut base_plan = 0.0f64;

    for src in 0..p {
        cal.schedule(0.0, CLS_READY, Ev::SenderReady(src));
    }

    while let Some((now, _, ev)) = cal.pop_next() {
        match ev {
            Ev::SenderReady(src) => {
                let Some(&dst) = queues[src].front() else {
                    continue;
                };
                if busy[dst] {
                    pending[dst].push((now, src));
                } else {
                    // Price the transfer from the live network state.
                    let net = trace.state_at(Millis::new(now));
                    let dur = net.message_time(src, dst, sizes[src][dst]).as_ms();
                    let fin = now + dur;
                    queues[src].pop_front();
                    busy[dst] = true;
                    send_busy_until[src] = fin;
                    recv_busy_until[dst] = fin;
                    records.push(TransferRecord {
                        src,
                        dst,
                        bytes: sizes[src][dst],
                        start: Millis::new(now),
                        finish: Millis::new(fin),
                    });
                    cal.try_schedule(fin, CLS_DONE, Ev::Completed { src, dst })
                        .map_err(|cause| SimError::DegenerateEvent { src, dst, cause })?;
                }
            }
            Ev::Completed { src, dst } => {
                busy[dst] = false;
                completed += 1;
                cal.schedule(now, CLS_READY, Ev::SenderReady(src));

                let is_checkpoint = checkpoint_set.binary_search(&completed).is_ok();
                if is_checkpoint {
                    checkpoints_evaluated += 1;
                    let plan_at = planned[completed - 1];
                    let seg_obs = now - base_obs;
                    let seg_plan = plan_at - base_plan;
                    if config.rule.should_reschedule(seg_plan, seg_obs) {
                        reschedules += 1;
                        base_obs = now;
                        base_plan = plan_at;
                        // Cancel pending requests: their messages return
                        // to the remaining pool and the blocked senders
                        // get fresh ready events.
                        let mut blocked: Vec<usize> = Vec::new();
                        for d in 0..p {
                            for &(_, s) in &pending[d] {
                                blocked.push(s);
                            }
                            pending[d].clear();
                        }
                        let remaining: Vec<Vec<usize>> =
                            queues.iter().map(|q| q.iter().copied().collect()).collect();
                        let fresh = trace.state_at(Millis::new(now));
                        queues = match &matching_sched {
                            Some(sched) => matching_replan(sched, &remaining, &fresh, sizes),
                            None => openshop_replan(
                                &remaining,
                                &send_busy_until,
                                &recv_busy_until,
                                now,
                                &fresh,
                                sizes,
                            ),
                        };
                        for s in blocked {
                            cal.schedule(now, CLS_READY, Ev::SenderReady(s));
                        }
                    }
                }

                // Grant the receiver to the earliest pending request, if
                // any survived (none right after a replan).
                if !busy[dst] {
                    if let Some(k) = pending[dst]
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                        .map(|(k, _)| k)
                    {
                        let (_, s) = pending[dst].swap_remove(k);
                        // Re-issue as a ready event so pricing and
                        // bookkeeping go through the single start path;
                        // the sender's head-of-queue is still `dst`'s
                        // message because queues pop only at start.
                        cal.schedule(now, CLS_READY, Ev::SenderReady(s));
                    }
                }
            }
        }
    }

    debug_assert_eq!(records.len(), total_events, "every message must run");
    records.sort_by(|a, b| {
        a.finish
            .as_ms()
            .total_cmp(&b.finish.as_ms())
            .then(a.src.cmp(&b.src))
            .then(a.dst.cmp(&b.dst))
    });
    let makespan = records
        .iter()
        .map(|r| r.finish)
        .fold(Millis::ZERO, Millis::max);
    Ok(DynamicOutcome {
        records,
        makespan,
        checkpoints_evaluated,
        reschedules,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptcomm_core::algorithms::{OpenShop, Scheduler};
    use adaptcomm_model::units::Bandwidth;
    use adaptcomm_model::variation::VariationConfig;

    fn base_net(p: usize) -> NetParams {
        NetParams::uniform(p, Millis::new(10.0), Bandwidth::from_kbps(500.0))
    }

    fn sizes(p: usize) -> Vec<Vec<Bytes>> {
        (0..p)
            .map(|s| {
                (0..p)
                    .map(|d| {
                        if s == d {
                            Bytes::ZERO
                        } else {
                            Bytes::from_kb(100)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn order(p: usize) -> SendOrder {
        let net = base_net(p);
        let m = CommMatrix::from_model(&net, &sizes(p));
        OpenShop.send_order(&m)
    }

    fn still_trace(p: usize) -> VariationTrace {
        let cfg = VariationConfig {
            volatility: 0.0,
            ..Default::default()
        };
        VariationTrace::new(base_net(p), cfg, 0)
    }

    fn drifting_trace(p: usize, seed: u64) -> VariationTrace {
        let cfg = VariationConfig {
            step: Millis::new(500.0),
            volatility: 0.35,
            floor: 0.1,
            ceil: 1.0, // bandwidths only degrade: adaptation must help
        };
        VariationTrace::new(base_net(p), cfg, seed)
    }

    #[test]
    fn static_network_matches_plan_exactly() {
        let p = 6;
        let o = order(p);
        let mut trace = still_trace(p);
        let out = run_adaptive(&o, &sizes(p), &mut trace, &AdaptiveConfig::oblivious());
        let planned = execute_listed(&o, &CommMatrix::from_model(&base_net(p), &sizes(p)));
        assert!((out.makespan.as_ms() - planned.completion_time().as_ms()).abs() < 1e-6);
        assert_eq!(out.records.len(), p * (p - 1));
        assert_eq!(out.reschedules, 0);
        assert_eq!(out.checkpoints_evaluated, 0);
    }

    #[test]
    fn no_reschedule_when_network_is_faithful() {
        let p = 5;
        let o = order(p);
        let mut trace = still_trace(p);
        let cfg = AdaptiveConfig {
            policy: CheckpointPolicy::EveryEvent,
            rule: RescheduleRule::default(),
            replanner: Replanner::OpenShop,
        };
        let out = run_adaptive(&o, &sizes(p), &mut trace, &cfg);
        assert!(out.checkpoints_evaluated > 0);
        assert_eq!(out.reschedules, 0, "no drift → no replans");
    }

    #[test]
    fn all_messages_complete_under_heavy_drift() {
        let p = 6;
        let o = order(p);
        for policy in [
            CheckpointPolicy::Never,
            CheckpointPolicy::EveryEvent,
            CheckpointPolicy::Halving,
        ] {
            let mut trace = drifting_trace(p, 42);
            let cfg = AdaptiveConfig {
                policy,
                rule: RescheduleRule::default(),
                replanner: Replanner::OpenShop,
            };
            let out = run_adaptive(&o, &sizes(p), &mut trace, &cfg);
            assert_eq!(out.records.len(), p * (p - 1), "{policy:?} lost messages");
            // No port overlaps in the realized execution.
            for proc in 0..p {
                let mut sends: Vec<_> = out.records.iter().filter(|r| r.src == proc).collect();
                sends.sort_by(|a, b| a.start.as_ms().total_cmp(&b.start.as_ms()));
                for w in sends.windows(2) {
                    assert!(w[0].finish.as_ms() <= w[1].start.as_ms() + 1e-9);
                }
                let mut recvs: Vec<_> = out.records.iter().filter(|r| r.dst == proc).collect();
                recvs.sort_by(|a, b| a.start.as_ms().total_cmp(&b.start.as_ms()));
                for w in recvs.windows(2) {
                    assert!(w[0].finish.as_ms() <= w[1].start.as_ms() + 1e-9);
                }
            }
        }
    }

    #[test]
    fn adaptation_triggers_under_drift() {
        let p = 8;
        let o = order(p);
        let mut trace = drifting_trace(p, 7);
        let cfg = AdaptiveConfig {
            policy: CheckpointPolicy::EveryEvent,
            rule: RescheduleRule {
                deviation_threshold: 0.05,
            },
            replanner: Replanner::OpenShop,
        };
        let out = run_adaptive(&o, &sizes(p), &mut trace, &cfg);
        assert!(
            out.reschedules > 0,
            "heavy degradation must trigger replans"
        );
        assert!(out.checkpoints_evaluated >= out.reschedules);
    }

    #[test]
    fn matching_replanner_adapts_and_completes() {
        let p = 8;
        let o = order(p);
        let mut trace = drifting_trace(p, 7);
        let cfg = AdaptiveConfig {
            policy: CheckpointPolicy::EveryEvent,
            rule: RescheduleRule {
                deviation_threshold: 0.05,
            },
            replanner: Replanner::Matching(MatchingKind::Max),
        };
        let out = run_adaptive(&o, &sizes(p), &mut trace, &cfg);
        assert_eq!(
            out.records.len(),
            p * (p - 1),
            "matching replans lost messages"
        );
        assert!(
            out.reschedules > 0,
            "heavy degradation must trigger matching replans"
        );
        // Port-exclusivity still holds under replanned orders.
        for proc in 0..p {
            let mut sends: Vec<_> = out.records.iter().filter(|r| r.src == proc).collect();
            sends.sort_by(|a, b| a.start.as_ms().total_cmp(&b.start.as_ms()));
            for w in sends.windows(2) {
                assert!(w[0].finish.as_ms() <= w[1].start.as_ms() + 1e-9);
            }
        }
    }

    /// An evolution whose live state carries a NaN startup on one link:
    /// a degenerate scenario that used to abort the simulation thread.
    struct PoisonedTrace(NetParams);

    impl NetworkEvolution for PoisonedTrace {
        fn processors(&self) -> usize {
            self.0.len()
        }
        fn planning_estimates(&self) -> NetParams {
            self.0.clone()
        }
        fn state_at(&mut self, _t: Millis) -> NetParams {
            let mut net = self.0.clone();
            let e = net.estimate(0, 1);
            // Struct literal: `LinkEstimate::new` asserts, but corrupt
            // data can arrive through serde or field access.
            net.set_estimate(
                0,
                1,
                adaptcomm_model::cost::LinkEstimate {
                    startup: Millis::new(f64::NAN),
                    bandwidth: e.bandwidth,
                },
            );
            net
        }
    }

    #[test]
    fn degenerate_scenarios_surface_as_err_not_panic() {
        let p = 4;
        let o = order(p);
        let mut trace = PoisonedTrace(base_net(p));
        let err = run_adaptive_checked(&o, &sizes(p), &mut trace, &AdaptiveConfig::oblivious())
            .expect_err("NaN pricing must be rejected");
        let SimError::DegenerateEvent { src, dst, cause } = err;
        assert_eq!((src, dst), (0, 1));
        assert!(matches!(cause, ScheduleError::NonFiniteTime { .. }));
    }

    #[test]
    fn adaptation_usually_helps_on_degrading_networks() {
        // Statistical claim over seeds: with bandwidths that only degrade,
        // checkpointed rescheduling should beat the oblivious run more
        // often than not.
        let p = 8;
        let o = order(p);
        let mut wins = 0;
        let mut total = 0;
        for seed in 0..12u64 {
            let mut t1 = drifting_trace(p, seed);
            let oblivious = run_adaptive(&o, &sizes(p), &mut t1, &AdaptiveConfig::oblivious());
            let mut t2 = drifting_trace(p, seed);
            let adaptive = run_adaptive(
                &o,
                &sizes(p),
                &mut t2,
                &AdaptiveConfig {
                    policy: CheckpointPolicy::EveryEvent,
                    rule: RescheduleRule {
                        deviation_threshold: 0.05,
                    },
                    replanner: Replanner::OpenShop,
                },
            );
            total += 1;
            if adaptive.makespan.as_ms() <= oblivious.makespan.as_ms() + 1e-9 {
                wins += 1;
            }
        }
        assert!(
            wins * 2 >= total,
            "adaptive won only {wins}/{total} runs on degrading networks"
        );
    }
}

#[cfg(test)]
mod recorded_trace_tests {
    use super::*;
    use adaptcomm_core::algorithms::{OpenShop, Scheduler};
    use adaptcomm_model::trace_io::{RecordedTrace, TraceRecorder};
    use adaptcomm_model::units::Bandwidth;

    /// A recorded directory session replays into the adaptive executor
    /// and is fully reproducible after a serialize→parse round trip.
    #[test]
    fn recorded_traces_drive_the_adaptive_executor() {
        let p = 5;
        let base = NetParams::uniform(p, Millis::new(10.0), Bandwidth::from_kbps(1_000.0));
        let mut degraded = base.clone();
        degraded.scale_all_bandwidths(0.25);

        let mut rec = TraceRecorder::new();
        rec.record(Millis::ZERO, base.clone());
        rec.record(Millis::new(1_500.0), degraded);
        let text = rec.serialize();

        let sizes: Vec<Vec<Bytes>> = (0..p)
            .map(|s| {
                (0..p)
                    .map(|d| {
                        if s == d {
                            Bytes::ZERO
                        } else {
                            Bytes::from_kb(200)
                        }
                    })
                    .collect()
            })
            .collect();
        let matrix = CommMatrix::from_model(&base, &sizes);
        let order = OpenShop.send_order(&matrix);

        let mut t1 = RecordedTrace::parse(&text).unwrap();
        let a = run_adaptive(&order, &sizes, &mut t1, &AdaptiveConfig::oblivious());
        let mut t2 = RecordedTrace::parse(&text).unwrap();
        let b = run_adaptive(&order, &sizes, &mut t2, &AdaptiveConfig::oblivious());
        assert_eq!(a.records, b.records, "replay must be bit-identical");
        // The mid-run degradation is visible: makespan exceeds the
        // all-clean plan.
        let clean_plan = execute_listed(&order, &matrix).completion_time();
        assert!(a.makespan.as_ms() > clean_plan.as_ms());
        assert_eq!(a.records.len(), p * (p - 1));
    }
}

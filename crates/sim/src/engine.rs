//! A minimal deterministic discrete-event calendar.
//!
//! A thin wrapper over a binary heap that (a) orders events by time, (b)
//! breaks time ties by an explicit class rank, then an optional caller
//! key, then insertion sequence, so simulations are bit-for-bit
//! reproducible regardless of heap internals, and (c) refuses to travel
//! backwards in time.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Why an event could not be scheduled: the event stream is degenerate
/// (e.g. an injected-fault scenario produced a NaN duration), which is a
/// property of the *scenario*, not of the calendar. Callers that treat
/// it as a bug can keep using the panicking [`Calendar::schedule`];
/// fault-injection harnesses use [`Calendar::try_schedule`] so the
/// scenario surfaces as `Err` instead of a worker-thread abort that
/// poisons whatever mutex the thread held.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduleError {
    /// The event time is NaN or infinite.
    NonFiniteTime {
        /// The offending time.
        time: f64,
    },
    /// The event lies in the past of the calendar clock.
    TimeTravel {
        /// The offending time.
        time: f64,
        /// The calendar's current clock.
        now: f64,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            // These strings are load-bearing: the panicking wrappers
            // format them, and callers' #[should_panic(expected = ...)]
            // match on "finite" and "clock is already".
            ScheduleError::NonFiniteTime { time } => {
                write!(f, "event time must be finite, got {time}")
            }
            ScheduleError::TimeTravel { time, now } => {
                write!(
                    f,
                    "event scheduled at {time} but the clock is already at {now}"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A scheduled calendar entry.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry<T> {
    time: f64,
    class: u8,
    key: u64,
    seq: u64,
    payload: T,
}

/// Deterministic event calendar.
#[derive(Debug)]
pub struct Calendar<T> {
    heap: BinaryHeap<Reverse<OrdEntry<T>>>,
    seq: u64,
    now: f64,
}

#[derive(Debug)]
struct OrdEntry<T>(Entry<T>);

impl<T> PartialEq for OrdEntry<T> {
    fn eq(&self, o: &Self) -> bool {
        self.0.time == o.0.time
            && self.0.class == o.0.class
            && self.0.key == o.0.key
            && self.0.seq == o.0.seq
    }
}
impl<T> Eq for OrdEntry<T> {}
impl<T> PartialOrd for OrdEntry<T> {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl<T> Ord for OrdEntry<T> {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        self.0
            .time
            .total_cmp(&o.0.time)
            .then(self.0.class.cmp(&o.0.class))
            .then(self.0.key.cmp(&o.0.key))
            .then(self.0.seq.cmp(&o.0.seq))
    }
}

impl<T> Calendar<T> {
    /// An empty calendar at time zero.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `payload` at absolute `time` with tie-break `class`
    /// (lower classes pop first at equal times; remaining ties pop in
    /// insertion order). Panics on scheduling in the past or at a
    /// non-finite time — for callers that consider either a simulation
    /// bug. Use [`Calendar::try_schedule`] to get a typed error instead.
    pub fn schedule(&mut self, time: f64, class: u8, payload: T) {
        self.schedule_keyed(time, class, 0, payload);
    }

    /// Like [`Calendar::schedule`] but with an explicit `key` that breaks
    /// equal-`(time, class)` ties before insertion order. Event loops that
    /// must match an analytic model's deterministic tie-break (e.g. "lower
    /// processor id first") pass that id here instead of depending on the
    /// order finish events happened to be scheduled in.
    pub fn schedule_keyed(&mut self, time: f64, class: u8, key: u64, payload: T) {
        if let Err(e) = self.try_schedule_keyed(time, class, key, payload) {
            panic!("{e}");
        }
    }

    /// Fallible [`Calendar::schedule`]: a degenerate event time comes
    /// back as [`ScheduleError`] instead of a panic.
    pub fn try_schedule(&mut self, time: f64, class: u8, payload: T) -> Result<(), ScheduleError> {
        self.try_schedule_keyed(time, class, 0, payload)
    }

    /// Fallible [`Calendar::schedule_keyed`].
    pub fn try_schedule_keyed(
        &mut self,
        time: f64,
        class: u8,
        key: u64,
        payload: T,
    ) -> Result<(), ScheduleError> {
        if !time.is_finite() {
            return Err(ScheduleError::NonFiniteTime { time });
        }
        if time < self.now - 1e-9 {
            return Err(ScheduleError::TimeTravel {
                time,
                now: self.now,
            });
        }
        let e = Entry {
            time,
            class,
            key,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.heap.push(Reverse(OrdEntry(e)));
        Ok(())
    }

    /// Pops the next event, advancing the clock.
    pub fn pop_next(&mut self) -> Option<(f64, u8, T)> {
        let Reverse(OrdEntry(e)) = self.heap.pop()?;
        self.now = self.now.max(e.time);
        Some((e.time, e.class, e.payload))
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

impl<T> Default for Calendar<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut c = Calendar::new();
        c.schedule(5.0, 0, "b");
        c.schedule(1.0, 0, "a");
        c.schedule(9.0, 0, "c");
        assert_eq!(c.len(), 3);
        assert_eq!(c.pop_next().unwrap().2, "a");
        assert_eq!(c.now(), 1.0);
        assert_eq!(c.pop_next().unwrap().2, "b");
        assert_eq!(c.pop_next().unwrap().2, "c");
        assert!(c.is_empty());
        assert!(c.pop_next().is_none());
    }

    #[test]
    fn ties_break_by_class_then_fifo() {
        let mut c = Calendar::new();
        c.schedule(2.0, 1, "late-class");
        c.schedule(2.0, 0, "first-in");
        c.schedule(2.0, 0, "second-in");
        assert_eq!(c.pop_next().unwrap().2, "first-in");
        assert_eq!(c.pop_next().unwrap().2, "second-in");
        assert_eq!(c.pop_next().unwrap().2, "late-class");
    }

    #[test]
    fn keyed_ties_break_by_key_before_fifo() {
        let mut c = Calendar::new();
        c.schedule_keyed(2.0, 0, 5, "high-key-first-in");
        c.schedule_keyed(2.0, 0, 2, "low-key-second-in");
        c.schedule(2.0, 0, "unkeyed"); // key 0 pops before any keyed entry
        assert_eq!(c.pop_next().unwrap().2, "unkeyed");
        assert_eq!(c.pop_next().unwrap().2, "low-key-second-in");
        assert_eq!(c.pop_next().unwrap().2, "high-key-first-in");
    }

    #[test]
    #[should_panic(expected = "clock is already")]
    fn rejects_time_travel() {
        let mut c = Calendar::new();
        c.schedule(10.0, 0, ());
        c.pop_next();
        c.schedule(5.0, 0, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_time() {
        let mut c: Calendar<()> = Calendar::new();
        c.schedule(f64::NAN, 0, ());
    }

    #[test]
    fn try_schedule_surfaces_typed_errors_without_panicking() {
        let mut c: Calendar<u8> = Calendar::new();
        let err = c.try_schedule(f64::NAN, 0, 1).unwrap_err();
        assert!(matches!(err, ScheduleError::NonFiniteTime { .. }));
        assert!(format!("{err}").contains("finite"));
        c.schedule(10.0, 0, 2);
        c.pop_next();
        let err = c.try_schedule(5.0, 0, 3).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::TimeTravel {
                time: 5.0,
                now: 10.0
            }
        );
        assert!(format!("{err}").contains("clock is already"));
        // The calendar is still usable after a rejected event.
        assert!(c.try_schedule(11.0, 0, 4).is_ok());
        assert_eq!(c.pop_next().unwrap().2, 4);
    }

    #[test]
    fn default_is_empty() {
        let c: Calendar<u32> = Calendar::default();
        assert!(c.is_empty());
        assert_eq!(c.now(), 0.0);
    }
}

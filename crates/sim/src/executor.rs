//! Message-level execution of a send order on a static network.
//!
//! Semantics are the paper's (§3.2): one send and one receive at a time
//! per node, control-message handshake (FCFS receiver grants, ties to the
//! lower sender id), senders transmit in list order. Durations come from
//! a [`CostModel`] and per-pair message sizes rather than a pre-baked
//! cost matrix, which is what lets the dynamic variants re-price
//! transfers mid-flight.

use crate::engine::Calendar;
use adaptcomm_core::schedule::SendOrder;
use adaptcomm_model::cost::CostModel;
use adaptcomm_model::units::{Bytes, Millis};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Event classes: arrivals before grants at equal times.
const CLS_SENDER_READY: u8 = 0;
const CLS_RECEIVER_FREE: u8 = 1;

/// A `(arrival time, sender id)` key for the per-receiver pending-grant
/// heaps: FCFS, ties to the lower sender id — the handshake rule from
/// §3.2, identical to the linear scan this replaces. Entries are
/// immutable once queued (a sender waits in exactly one queue until
/// granted), so the heap needs no lazy correction: the popped minimum is
/// exact.
#[derive(Debug, Clone, Copy)]
struct ArrivalKey {
    time: f64,
    src: usize,
}

impl PartialEq for ArrivalKey {
    fn eq(&self, o: &Self) -> bool {
        self.time.total_cmp(&o.time).is_eq() && self.src == o.src
    }
}
impl Eq for ArrivalKey {}
impl PartialOrd for ArrivalKey {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for ArrivalKey {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        self.time.total_cmp(&o.time).then(self.src.cmp(&o.src))
    }
}

/// One completed transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferRecord {
    /// Sender.
    pub src: usize,
    /// Receiver.
    pub dst: usize,
    /// Message size.
    pub bytes: Bytes,
    /// Start of the transfer.
    pub start: Millis,
    /// Completion of the transfer.
    pub finish: Millis,
}

/// The outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRun {
    /// All transfers in completion order.
    pub records: Vec<TransferRecord>,
    /// Time the last transfer finished.
    pub makespan: Millis,
}

impl SimRun {
    /// The realized transfers as explain-plane records, ready for
    /// `adaptcomm_obs::causal::CausalDag::new` (critical path, blame,
    /// what-if projections).
    pub fn causal_transfers(&self) -> Vec<adaptcomm_obs::causal::Transfer> {
        self.records
            .iter()
            .map(|r| adaptcomm_obs::causal::Transfer {
                src: r.src,
                dst: r.dst,
                start_ms: r.start.as_ms(),
                dur_ms: (r.finish - r.start).as_ms(),
            })
            .collect()
    }
}

/// Simulates `order` over `network` with message sizes `sizes[src][dst]`.
pub fn run_static<M: CostModel>(order: &SendOrder, network: &M, sizes: &[Vec<Bytes>]) -> SimRun {
    let p = network.len();
    assert_eq!(order.processors(), p, "order and network disagree on P");
    assert_eq!(sizes.len(), p, "size matrix does not match P");

    #[derive(Clone, Copy)]
    enum Ev {
        SenderReady(usize),
        ReceiverFree(usize),
    }

    let mut cal: Calendar<Ev> = Calendar::new();
    let mut pending: Vec<BinaryHeap<Reverse<ArrivalKey>>> = vec![BinaryHeap::new(); p];
    let mut busy = vec![false; p];
    let mut next_idx = vec![0usize; p];
    let mut records = Vec::with_capacity(p.saturating_mul(p.saturating_sub(1)));

    // Events at equal times are keyed by processor id so the pop order
    // matches the analytic executor's `(time, kind, processor)` ordering
    // exactly; FIFO insertion order must not leak into the semantics.
    for src in 0..p {
        cal.schedule_keyed(0.0, CLS_SENDER_READY, src as u64, Ev::SenderReady(src));
    }

    macro_rules! begin {
        ($src:expr, $dst:expr, $now:expr) => {{
            let (src, dst, now) = ($src, $dst, $now);
            let bytes = sizes[src][dst];
            let dur = network.message_time(src, dst, bytes).as_ms();
            let fin = now + dur;
            records.push(TransferRecord {
                src,
                dst,
                bytes,
                start: Millis::new(now),
                finish: Millis::new(fin),
            });
            busy[dst] = true;
            next_idx[src] += 1;
            cal.schedule_keyed(fin, CLS_SENDER_READY, src as u64, Ev::SenderReady(src));
            cal.schedule_keyed(fin, CLS_RECEIVER_FREE, dst as u64, Ev::ReceiverFree(dst));
        }};
    }

    // Event-loop stats aggregated in locals; recorded once after the
    // drain so the hot loop stays untouched when obs is disabled.
    let (mut grants_immediate, mut grants_queued, mut max_queue_depth, mut loop_events) =
        (0u64, 0u64, 0usize, 0u64);

    while let Some((now, _, ev)) = cal.pop_next() {
        loop_events += 1;
        match ev {
            Ev::SenderReady(src) => {
                let idx = next_idx[src];
                if idx >= order.order[src].len() {
                    continue;
                }
                let dst = order.order[src][idx];
                if busy[dst] {
                    pending[dst].push(Reverse(ArrivalKey { time: now, src }));
                    grants_queued += 1;
                    max_queue_depth = max_queue_depth.max(pending[dst].len());
                } else {
                    grants_immediate += 1;
                    begin!(src, dst, now);
                }
            }
            Ev::ReceiverFree(dst) => {
                busy[dst] = false;
                if let Some(Reverse(ArrivalKey { src, .. })) = pending[dst].pop() {
                    begin!(src, dst, now);
                }
            }
        }
    }

    let obs = adaptcomm_obs::global();
    if obs.is_enabled() {
        obs.add("sim.events", loop_events);
        obs.add("sim.grants.immediate", grants_immediate);
        obs.add("sim.grants.queued", grants_queued);
        obs.observe(
            "sim.grant_queue.max_depth",
            adaptcomm_obs::DEPTH_BUCKETS,
            max_queue_depth as f64,
        );
    }

    records.sort_by(|a, b| {
        a.finish
            .as_ms()
            .total_cmp(&b.finish.as_ms())
            .then(a.src.cmp(&b.src))
            .then(a.dst.cmp(&b.dst))
    });
    let makespan = records
        .iter()
        .map(|r| r.finish)
        .fold(Millis::ZERO, Millis::max);
    SimRun { records, makespan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptcomm_core::algorithms::{all_schedulers, Scheduler};
    use adaptcomm_core::execution::execute_listed;
    use adaptcomm_core::matrix::CommMatrix;
    use adaptcomm_model::params::NetParams;
    use adaptcomm_model::units::Bandwidth;

    fn network(p: usize) -> NetParams {
        NetParams::from_fn(p, |s, d| {
            adaptcomm_model::cost::LinkEstimate::new(
                Millis::new(((s * 7 + d * 3) % 20) as f64 + 1.0),
                Bandwidth::from_kbps(((s + d * 5) % 900 + 100) as f64),
            )
        })
    }

    fn uniform_sizes(p: usize, b: Bytes) -> Vec<Vec<Bytes>> {
        (0..p)
            .map(|s| {
                (0..p)
                    .map(|d| if s == d { Bytes::ZERO } else { b })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn agrees_with_analytic_execution() {
        // The message-level simulator and the analytic ASAP execution in
        // adaptcomm-core must produce identical event times when the
        // network is static.
        let p = 7;
        let net = network(p);
        let sizes = uniform_sizes(p, Bytes::KB);
        let matrix = CommMatrix::from_model(&net, &sizes);
        for s in all_schedulers() {
            let order = s.send_order(&matrix);
            let analytic = execute_listed(&order, &matrix);
            let simulated = run_static(&order, &net, &sizes);
            assert!(
                (analytic.completion_time().as_ms() - simulated.makespan.as_ms()).abs() < 1e-6,
                "{}: analytic {} vs simulated {}",
                s.name(),
                analytic.completion_time(),
                simulated.makespan
            );
            // Per-event agreement, not just the makespan.
            for r in &simulated.records {
                let a = analytic
                    .events()
                    .iter()
                    .find(|e| e.src == r.src && e.dst == r.dst)
                    .unwrap();
                assert!((a.start.as_ms() - r.start.as_ms()).abs() < 1e-6);
                assert!((a.finish.as_ms() - r.finish.as_ms()).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn all_transfers_complete() {
        let p = 6;
        let net = network(p);
        let sizes = uniform_sizes(p, Bytes::MB);
        let matrix = CommMatrix::from_model(&net, &sizes);
        let order = adaptcomm_core::algorithms::OpenShop.send_order(&matrix);
        let run = run_static(&order, &net, &sizes);
        assert_eq!(run.records.len(), p * (p - 1));
        // Records come back sorted by completion.
        for w in run.records.windows(2) {
            assert!(w[0].finish.as_ms() <= w[1].finish.as_ms());
        }
    }

    /// The pre-optimization pending-grant selection: a linear `min_by`
    /// scan over the waiting senders, retained verbatim as the oracle
    /// for the heap-based grant queue.
    fn run_static_linear_scan<M: CostModel>(
        order: &SendOrder,
        network: &M,
        sizes: &[Vec<Bytes>],
    ) -> SimRun {
        let p = network.len();

        #[derive(Clone, Copy)]
        enum Ev {
            SenderReady(usize),
            ReceiverFree(usize),
        }

        let mut cal: Calendar<Ev> = Calendar::new();
        let mut pending: Vec<Vec<(f64, usize)>> = vec![Vec::new(); p];
        let mut busy = vec![false; p];
        let mut next_idx = vec![0usize; p];
        let mut records = Vec::new();

        for src in 0..p {
            cal.schedule_keyed(0.0, CLS_SENDER_READY, src as u64, Ev::SenderReady(src));
        }

        macro_rules! begin {
            ($src:expr, $dst:expr, $now:expr) => {{
                let (src, dst, now) = ($src, $dst, $now);
                let bytes = sizes[src][dst];
                let fin = now + network.message_time(src, dst, bytes).as_ms();
                records.push(TransferRecord {
                    src,
                    dst,
                    bytes,
                    start: Millis::new(now),
                    finish: Millis::new(fin),
                });
                busy[dst] = true;
                next_idx[src] += 1;
                cal.schedule_keyed(fin, CLS_SENDER_READY, src as u64, Ev::SenderReady(src));
                cal.schedule_keyed(fin, CLS_RECEIVER_FREE, dst as u64, Ev::ReceiverFree(dst));
            }};
        }

        while let Some((now, _, ev)) = cal.pop_next() {
            match ev {
                Ev::SenderReady(src) => {
                    let idx = next_idx[src];
                    if idx >= order.order[src].len() {
                        continue;
                    }
                    let dst = order.order[src][idx];
                    if busy[dst] {
                        pending[dst].push((now, src));
                    } else {
                        begin!(src, dst, now);
                    }
                }
                Ev::ReceiverFree(dst) => {
                    busy[dst] = false;
                    if let Some(k) = pending[dst]
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                        .map(|(k, _)| k)
                    {
                        let (_, src) = pending[dst].swap_remove(k);
                        begin!(src, dst, now);
                    }
                }
            }
        }

        records.sort_by(|a, b| {
            a.finish
                .as_ms()
                .total_cmp(&b.finish.as_ms())
                .then(a.src.cmp(&b.src))
                .then(a.dst.cmp(&b.dst))
        });
        let makespan = records
            .iter()
            .map(|r| r.finish)
            .fold(Millis::ZERO, Millis::max);
        SimRun { records, makespan }
    }

    #[test]
    fn grant_heap_matches_linear_scan_reference() {
        // The pipeline integration scenario (GUSTO snapshot, uniform 1 MB
        // messages) through every scheduler: the heap-based grant queue
        // must replay the retained linear-scan selection bit for bit —
        // identical record sequences, not just equal makespans.
        let net = adaptcomm_model::gusto::gusto_params();
        let p = net.len();
        let sizes = uniform_sizes(p, Bytes::MB);
        let matrix = CommMatrix::from_model(&net, &sizes);
        for s in all_schedulers() {
            let order = s.send_order(&matrix);
            let fast = run_static(&order, &net, &sizes);
            let slow = run_static_linear_scan(&order, &net, &sizes);
            assert_eq!(fast, slow, "{} diverged from the reference", s.name());
        }
        // And on a synthetic heterogeneous network that actually queues
        // multiple senders on one receiver (the baseline at P=8 does).
        let net = network(8);
        let sizes = uniform_sizes(8, Bytes::KB);
        let matrix = CommMatrix::from_model(&net, &sizes);
        for s in all_schedulers() {
            let order = s.send_order(&matrix);
            assert_eq!(
                run_static(&order, &net, &sizes),
                run_static_linear_scan(&order, &net, &sizes),
                "{} diverged from the reference",
                s.name()
            );
        }
    }

    #[test]
    fn records_carry_sizes() {
        let p = 3;
        let net = network(p);
        let mut sizes = uniform_sizes(p, Bytes::KB);
        sizes[0][1] = Bytes::MB;
        let matrix = CommMatrix::from_model(&net, &sizes);
        let order = adaptcomm_core::algorithms::Baseline.send_order(&matrix);
        let run = run_static(&order, &net, &sizes);
        let r = run
            .records
            .iter()
            .find(|r| r.src == 0 && r.dst == 1)
            .unwrap();
        assert_eq!(r.bytes, Bytes::MB);
    }
}

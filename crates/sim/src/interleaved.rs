//! Concurrent receives with context-switch overhead (§6.1).
//!
//! "When multiple messages arrive at a node, we can assume that the
//! messages are received in an interleaved fashion ... if `t1` and `t2`
//! are the times for individually receiving two messages, the total time
//! for receiving them simultaneously would be `(1+α)(t1+t2)`."
//!
//! [`run_interleaved`] relaxes the one-receive-at-a-time port constraint:
//! whenever a receiver frees up it admits up to `fan_in` pending requests
//! as a *batch*; every message of a `k > 1` batch completes at
//! `batch_start + (1+α)·Σ tᵢ`. Senders stay busy until their batch
//! completes. With `fan_in = 1` (or an empty batch mate) the semantics
//! degenerate exactly to the base model — property-tested against
//! [`crate::executor::run_static`].

use crate::engine::Calendar;
use crate::executor::{SimRun, TransferRecord};
use adaptcomm_core::schedule::SendOrder;
use adaptcomm_model::cost::{CostModel, InterleavedModel};
use adaptcomm_model::units::{Bytes, Millis};

const CLS_READY: u8 = 0;
const CLS_BATCH_DONE: u8 = 1;

/// Simulates `order` under the interleaved-receive model.
pub fn run_interleaved<M: CostModel>(
    order: &SendOrder,
    model: &InterleavedModel<M>,
    sizes: &[Vec<Bytes>],
) -> SimRun {
    let p = model.len();
    assert_eq!(order.processors(), p, "order and model disagree on P");
    assert_eq!(sizes.len(), p, "size matrix does not match P");

    #[derive(Clone)]
    enum Ev {
        SenderReady(usize),
        BatchDone {
            dst: usize,
            members: Vec<(usize, f64)>,
        },
    }

    let mut cal: Calendar<Ev> = Calendar::new();
    let mut pending: Vec<Vec<(f64, usize)>> = vec![Vec::new(); p];
    let mut busy = vec![false; p];
    let mut next_idx = vec![0usize; p];
    let mut records = Vec::new();

    for src in 0..p {
        cal.schedule(0.0, CLS_READY, Ev::SenderReady(src));
    }

    // Starts a batch of (src) transfers into dst at `now`. Members are
    // sender ids; each contributes its individual receive time.
    let mut start_batch = |dst: usize,
                           members: Vec<usize>,
                           now: f64,
                           next_idx: &mut Vec<usize>,
                           busy: &mut Vec<bool>,
                           cal: &mut Calendar<Ev>| {
        debug_assert!(!members.is_empty());
        let times: Vec<Millis> = members
            .iter()
            .map(|&s| model.message_time(s, dst, sizes[s][dst]))
            .collect();
        let batch_time = model.batch_receive_time(&times);
        let fin = now + batch_time.as_ms();
        busy[dst] = true;
        let mut payload = Vec::with_capacity(members.len());
        for &s in &members {
            next_idx[s] += 1;
            payload.push((s, fin));
        }
        // Record transfers now; all members share start and finish.
        for &s in &members {
            records.push(TransferRecord {
                src: s,
                dst,
                bytes: sizes[s][dst],
                start: Millis::new(now),
                finish: Millis::new(fin),
            });
        }
        cal.schedule(
            fin,
            CLS_BATCH_DONE,
            Ev::BatchDone {
                dst,
                members: payload,
            },
        );
    };

    while let Some((now, _, ev)) = cal.pop_next() {
        match ev {
            Ev::SenderReady(src) => {
                let idx = next_idx[src];
                if idx >= order.order[src].len() {
                    continue;
                }
                let dst = order.order[src][idx];
                if busy[dst] {
                    pending[dst].push((now, src));
                } else {
                    // Admit this request plus up to fan_in−1 pending ones.
                    let mut members = vec![src];
                    pending[dst].sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                    while members.len() < model.fan_in && !pending[dst].is_empty() {
                        members.push(pending[dst].remove(0).1);
                    }
                    start_batch(dst, members, now, &mut next_idx, &mut busy, &mut cal);
                }
            }
            Ev::BatchDone { dst, members } => {
                busy[dst] = false;
                // Each member sender becomes ready for its next message.
                for (s, _) in members {
                    cal.schedule(now, CLS_READY, Ev::SenderReady(s));
                }
                // Admit the next batch from pending requests.
                if !pending[dst].is_empty() {
                    pending[dst].sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                    let take = pending[dst].len().min(model.fan_in);
                    let members: Vec<usize> = pending[dst].drain(..take).map(|(_, s)| s).collect();
                    start_batch(dst, members, now, &mut next_idx, &mut busy, &mut cal);
                }
            }
        }
    }

    records.sort_by(|a, b| {
        a.finish
            .as_ms()
            .total_cmp(&b.finish.as_ms())
            .then(a.src.cmp(&b.src))
            .then(a.dst.cmp(&b.dst))
    });
    let makespan = records
        .iter()
        .map(|r| r.finish)
        .fold(Millis::ZERO, Millis::max);
    SimRun { records, makespan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::run_static;
    use adaptcomm_core::algorithms::{Baseline, OpenShop, Scheduler};
    use adaptcomm_core::matrix::CommMatrix;
    use adaptcomm_model::params::NetParams;
    use adaptcomm_model::units::Bandwidth;

    fn net(p: usize) -> NetParams {
        NetParams::from_fn(p, |s, d| {
            adaptcomm_model::cost::LinkEstimate::new(
                Millis::new(((s * 5 + d * 11) % 15) as f64 + 2.0),
                Bandwidth::from_kbps(((s * 3 + d) % 700 + 200) as f64),
            )
        })
    }

    fn sizes(p: usize) -> Vec<Vec<Bytes>> {
        (0..p)
            .map(|s| {
                (0..p)
                    .map(|d| {
                        if s == d {
                            Bytes::ZERO
                        } else {
                            Bytes::from_kb(50)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn order(p: usize) -> SendOrder {
        let m = CommMatrix::from_model(&net(p), &sizes(p));
        OpenShop.send_order(&m)
    }

    #[test]
    fn fan_in_one_matches_base_model() {
        let p = 6;
        let model = InterleavedModel::new(net(p), 0.3, 1);
        let inter = run_interleaved(&order(p), &model, &sizes(p));
        let base = run_static(&order(p), &net(p), &sizes(p));
        assert!(
            (inter.makespan.as_ms() - base.makespan.as_ms()).abs() < 1e-6,
            "fan_in=1 must degenerate: {} vs {}",
            inter.makespan,
            base.makespan
        );
    }

    #[test]
    fn all_messages_complete() {
        let p = 7;
        for fan_in in [1, 2, 4, 8] {
            for alpha in [0.0, 0.25, 1.0] {
                let model = InterleavedModel::new(net(p), alpha, fan_in);
                let run = run_interleaved(&order(p), &model, &sizes(p));
                assert_eq!(
                    run.records.len(),
                    p * (p - 1),
                    "fan_in={fan_in} alpha={alpha} lost messages"
                );
            }
        }
    }

    #[test]
    fn batching_preserves_receiver_completion_at_alpha_zero() {
        // All senders target receiver 0 first. With α = 0 the receiver's
        // total service time is the same whether it serializes or
        // batches (Σtᵢ either way), so its *last* receive completes at
        // the same instant. The tradeoff — batching holds early senders
        // hostage until the whole batch finishes, hurting their later
        // sends — is what the fig_alpha ablation bench quantifies.
        let p = 5;
        let order = SendOrder::new(
            (0..p)
                .map(|s| {
                    let mut l: Vec<usize> = (0..p).filter(|&d| d != s).collect();
                    l.sort_by_key(|&d| if d == 0 { 0 } else { d });
                    l
                })
                .collect(),
        );
        let serial = run_static(&order, &net(p), &sizes(p));
        let model = InterleavedModel::new(net(p), 0.0, 4);
        let batched = run_interleaved(&order, &model, &sizes(p));
        let last_into_0 = |records: &[TransferRecord]| {
            records
                .iter()
                .filter(|r| r.dst == 0)
                .map(|r| r.finish.as_ms())
                .fold(0.0f64, f64::max)
        };
        let serial_done = last_into_0(&serial.records);
        let batched_done = last_into_0(&batched.records);
        assert!(
            batched_done <= serial_done + 1e-6,
            "α=0 batching must not delay the contended receiver: {batched_done} vs {serial_done}"
        );
    }

    #[test]
    fn high_alpha_makes_batching_costly() {
        // With α large, a 2-batch takes (1+α)(t1+t2) > t1+t2: makespan
        // under heavy batching should exceed the α=0 variant.
        let p = 6;
        let o = order(p);
        let cheap = run_interleaved(&o, &InterleavedModel::new(net(p), 0.0, 4), &sizes(p));
        let costly = run_interleaved(&o, &InterleavedModel::new(net(p), 2.0, 4), &sizes(p));
        assert!(costly.makespan.as_ms() >= cheap.makespan.as_ms() - 1e-9);
    }

    #[test]
    fn batch_members_share_finish_time() {
        let p = 4;
        // Everyone sends to receiver 3 first.
        let order = SendOrder::new(vec![
            vec![3, 1, 2],
            vec![3, 0, 2],
            vec![3, 0, 1],
            vec![0, 1, 2],
        ]);
        let model = InterleavedModel::new(net(p), 0.5, 3);
        let run = run_interleaved(&order, &model, &sizes(p));
        // Find a batch: transfers into 3 that share a start time.
        let into3: Vec<_> = run.records.iter().filter(|r| r.dst == 3).collect();
        let mut found_batch = false;
        for a in &into3 {
            for b in &into3 {
                if a.src < b.src && (a.start.as_ms() - b.start.as_ms()).abs() < 1e-9 {
                    assert!((a.finish.as_ms() - b.finish.as_ms()).abs() < 1e-9);
                    found_batch = true;
                }
            }
        }
        assert!(
            found_batch,
            "expected at least one 2+ batch into receiver 3"
        );
    }

    // Helper so the closure capture in run_interleaved stays happy.
    #[allow(dead_code)]
    fn baseline_order(p: usize) -> SendOrder {
        let m = CommMatrix::from_model(&net(p), &sizes(p));
        Baseline.send_order(&m)
    }
}

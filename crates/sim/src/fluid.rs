//! Fluid (topology-level) execution with shared-link bandwidth division.
//!
//! The framework's cost model flattens the network into per-pair
//! `(T_ij, B_ij)` and "ignores the negligible delays incurred by
//! contention at intermediate links" (§3.2); the directory folds
//! *steady-state* sharing into its estimates (§3.1). This executor is the
//! ground truth those approximations stand in for: transfers traverse
//! the real [`Topology`] and, at every instant, each link's capacity is
//! divided **equally among the transfers currently crossing it** — the
//! paper's §3.1 division rule applied dynamically. A transfer's
//! instantaneous rate is the minimum share along its path.
//!
//! Comparing [`run_fluid`] with [`crate::executor::run_static`] on the
//! flattened parameters measures exactly how much the flat model under-
//! or over-estimates completion when a schedule's concurrent transfers
//! collide inside the network rather than at the ports.
//!
//! Port semantics are unchanged (one send and one receive at a time,
//! FCFS handshake grants), so any difference is attributable to link
//! sharing alone. Start-up latency is modeled as a fixed per-transfer
//! phase (the path's summed latencies) during which the transfer holds
//! its ports but moves no bytes.

use adaptcomm_core::schedule::SendOrder;
use adaptcomm_model::topology::{LinkId, Topology};
use adaptcomm_model::units::{Bytes, Millis};
use std::collections::HashMap;

use crate::executor::TransferRecord;

#[derive(Debug)]
struct Active {
    src: usize,
    dst: usize,
    bytes: Bytes,
    start: f64,
    /// Remaining start-up latency before bytes flow.
    startup_left: f64,
    /// Remaining payload, in bits.
    remaining_bits: f64,
    path: Vec<LinkId>,
}

/// Result of a fluid run.
#[derive(Debug, Clone)]
pub struct FluidRun {
    /// Completed transfers in completion order.
    pub records: Vec<TransferRecord>,
    /// Completion time of the exchange.
    pub makespan: Millis,
}

/// Executes `order` over the physical topology with dynamic equal-share
/// link bandwidth division.
pub fn run_fluid(topology: &Topology, order: &SendOrder, sizes: &[Vec<Bytes>]) -> FluidRun {
    let p = topology.nodes();
    assert_eq!(order.processors(), p, "order does not match the topology");
    assert_eq!(sizes.len(), p, "sizes do not match the topology");

    let mut next_idx = vec![0usize; p];
    let mut busy = vec![false; p]; // receiver port
    let mut pending: Vec<Vec<(f64, usize)>> = vec![Vec::new(); p]; // (req time, src)
    let mut sending = vec![false; p]; // sender port
    let mut active: Vec<Active> = Vec::new();
    let mut records: Vec<TransferRecord> = Vec::new();
    let mut now = 0.0f64;

    // Attempts to start src's next transfer at time `now`. The argument
    // list is the simulation state itself; bundling it into a struct
    // would just rename the problem.
    #[allow(clippy::too_many_arguments)]
    fn try_start(
        topology: &Topology,
        order: &SendOrder,
        sizes: &[Vec<Bytes>],
        src: usize,
        now: f64,
        next_idx: &mut [usize],
        busy: &mut [bool],
        sending: &mut [bool],
        pending: &mut [Vec<(f64, usize)>],
        active: &mut Vec<Active>,
    ) {
        let idx = next_idx[src];
        if idx >= order.order[src].len() || sending[src] {
            return;
        }
        let dst = order.order[src][idx];
        if busy[dst] {
            pending[dst].push((now, src));
            return;
        }
        let path = topology.path(src, dst);
        let startup: f64 = path.iter().map(|&l| topology.link(l).latency.as_ms()).sum();
        busy[dst] = true;
        sending[src] = true;
        next_idx[src] += 1;
        active.push(Active {
            src,
            dst,
            bytes: sizes[src][dst],
            start: now,
            startup_left: startup,
            remaining_bits: sizes[src][dst].bits() as f64,
            path,
        });
    }

    for src in 0..p {
        try_start(
            topology,
            order,
            sizes,
            src,
            now,
            &mut next_idx,
            &mut busy,
            &mut sending,
            &mut pending,
            &mut active,
        );
    }

    let total = order.order.iter().map(|l| l.len()).sum::<usize>();
    while records.len() < total {
        assert!(
            !active.is_empty(),
            "no active transfers but {} of {total} remain — scheduling deadlock",
            records.len()
        );
        // Equal-share rates: count flowing transfers per link.
        let mut load: HashMap<LinkId, usize> = HashMap::new();
        for a in &active {
            if a.startup_left <= 0.0 {
                for &l in &a.path {
                    *load.entry(l).or_insert(0) += 1;
                }
            }
        }
        // Rate per transfer in bits/ms (kbit/s == bits/ms).
        let rate = |a: &Active| -> f64 {
            a.path
                .iter()
                .map(|&l| topology.link(l).capacity.as_kbps() / load[&l] as f64)
                .fold(f64::INFINITY, f64::min)
        };
        // Time to the next state change.
        let mut dt = f64::INFINITY;
        for a in &active {
            let cand = if a.startup_left > 0.0 {
                a.startup_left
            } else {
                a.remaining_bits / rate(a)
            };
            dt = dt.min(cand);
        }
        assert!(dt.is_finite() && dt >= 0.0, "stalled fluid simulation");
        // Advance.
        now += dt;
        for a in &mut active {
            if a.startup_left > 0.0 {
                a.startup_left -= dt;
                if a.startup_left < 1e-12 {
                    a.startup_left = 0.0;
                }
            } else {
                a.remaining_bits -= rate(a) * dt;
            }
        }
        // Retire completed transfers.
        let mut finished: Vec<Active> = Vec::new();
        let mut k = 0;
        while k < active.len() {
            if active[k].startup_left <= 0.0 && active[k].remaining_bits <= 1e-6 {
                finished.push(active.swap_remove(k));
            } else {
                k += 1;
            }
        }
        // Sort finishers deterministically before releasing ports.
        finished.sort_by(|a, b| a.src.cmp(&b.src).then(a.dst.cmp(&b.dst)));
        for f in finished {
            records.push(TransferRecord {
                src: f.src,
                dst: f.dst,
                bytes: f.bytes,
                start: Millis::new(f.start),
                finish: Millis::new(now),
            });
            sending[f.src] = false;
            busy[f.dst] = false;
            // The freed sender requests its next message.
            try_start(
                topology,
                order,
                sizes,
                f.src,
                now,
                &mut next_idx,
                &mut busy,
                &mut sending,
                &mut pending,
                &mut active,
            );
            // The freed receiver grants its earliest pending request.
            if !busy[f.dst] {
                if let Some(kk) = pending[f.dst]
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                    .map(|(kk, _)| kk)
                {
                    let (_, src) = pending[f.dst].swap_remove(kk);
                    if !sending[src] {
                        // Re-point the sender at its (unchanged) head of
                        // queue: next_idx was not advanced when it
                        // blocked, so try_start re-reads the same dst.
                        try_start(
                            topology,
                            order,
                            sizes,
                            src,
                            now,
                            &mut next_idx,
                            &mut busy,
                            &mut sending,
                            &mut pending,
                            &mut active,
                        );
                    }
                }
            }
        }
    }

    records.sort_by(|a, b| {
        a.finish
            .as_ms()
            .total_cmp(&b.finish.as_ms())
            .then(a.src.cmp(&b.src))
            .then(a.dst.cmp(&b.dst))
    });
    let makespan = records
        .iter()
        .map(|r| r.finish)
        .fold(Millis::ZERO, Millis::max);
    FluidRun { records, makespan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::run_static;
    use adaptcomm_core::algorithms::{OpenShop, Scheduler};
    use adaptcomm_core::matrix::CommMatrix;
    use adaptcomm_model::units::Bandwidth;

    /// Two sites × two nodes, fast LANs, one slow WAN.
    fn two_site_topology() -> Topology {
        Topology::uniform(
            2,
            2,
            (Millis::new(1.0), Bandwidth::from_mbps(1_000.0)),
            (Millis::new(10.0), Bandwidth::from_mbps(2.0)),
        )
    }

    fn sizes(p: usize, kb: u64) -> Vec<Vec<Bytes>> {
        (0..p)
            .map(|s| {
                (0..p)
                    .map(|d| {
                        if s == d {
                            Bytes::ZERO
                        } else {
                            Bytes::from_kb(kb)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn single_transfer_matches_the_flat_model_exactly() {
        let t = two_site_topology();
        // One cross-site message: 0 → 2 only; fill the rest with zero
        // bytes so they are instantaneous.
        let mut sz = sizes(4, 0);
        sz[0][2] = Bytes::from_kb(250); // 2 Mbit over a 2 Mbit/s WAN = 1000ms
        let order = SendOrder::new(vec![
            vec![2, 1, 3],
            vec![0, 2, 3],
            vec![0, 1, 3],
            vec![0, 1, 2],
        ]);
        let run = run_fluid(&t, &order, &sz);
        let r = run
            .records
            .iter()
            .find(|r| r.src == 0 && r.dst == 2)
            .unwrap();
        // Startup 1+10+1 = 12ms, then 2e6 bits at 2000 bits/ms = 1000ms.
        assert!(
            (r.finish.as_ms() - r.start.as_ms() - 1_012.0).abs() < 1e-6,
            "duration {}",
            r.finish.as_ms() - r.start.as_ms()
        );
    }

    #[test]
    fn concurrent_wan_flows_halve_each_other() {
        let t = two_site_topology();
        // Both site-0 nodes send cross-site simultaneously; nothing else.
        let mut sz = sizes(4, 0);
        sz[0][2] = Bytes::from_kb(250);
        sz[1][3] = Bytes::from_kb(250);
        let order = SendOrder::new(vec![
            vec![2, 1, 3],
            vec![3, 0, 2],
            vec![0, 1, 3],
            vec![0, 1, 2],
        ]);
        let run = run_fluid(&t, &order, &sz);
        let dur = |s: usize, d: usize| {
            let r = run
                .records
                .iter()
                .find(|r| r.src == s && r.dst == d)
                .unwrap();
            r.finish.as_ms() - r.start.as_ms()
        };
        // Shared WAN: each flow gets 1 Mbit/s → 2000ms + 12ms startup.
        assert!((dur(0, 2) - 2_012.0).abs() < 1e-6, "got {}", dur(0, 2));
        assert!((dur(1, 3) - 2_012.0).abs() < 1e-6, "got {}", dur(1, 3));
    }

    #[test]
    fn flat_model_underestimates_contended_schedules() {
        // A full exchange: the flat NetParams assume every transfer gets
        // the whole WAN; the fluid ground truth shares it. The fluid
        // makespan must therefore be at least the flat estimate.
        let t = two_site_topology();
        let flat = t.to_net_params();
        let sz = sizes(4, 500);
        let matrix = CommMatrix::from_model(&flat, &sz);
        let order = OpenShop.send_order(&matrix);
        let flat_run = run_static(&order, &flat, &sz);
        let fluid_run = run_fluid(&t, &order, &sz);
        assert_eq!(fluid_run.records.len(), 12);
        assert!(
            fluid_run.makespan.as_ms() >= flat_run.makespan.as_ms() - 1e-6,
            "fluid {} vs flat {}",
            fluid_run.makespan,
            flat_run.makespan
        );
    }

    #[test]
    fn port_constraints_still_hold() {
        let t = two_site_topology();
        let sz = sizes(4, 100);
        let matrix = CommMatrix::from_model(&t.to_net_params(), &sz);
        let order = OpenShop.send_order(&matrix);
        let run = run_fluid(&t, &order, &sz);
        for proc in 0..4 {
            for side in [true, false] {
                let mut evs: Vec<_> = run
                    .records
                    .iter()
                    .filter(|r| if side { r.src == proc } else { r.dst == proc })
                    .collect();
                evs.sort_by(|a, b| a.start.as_ms().total_cmp(&b.start.as_ms()));
                for w in evs.windows(2) {
                    assert!(
                        w[0].finish.as_ms() <= w[1].start.as_ms() + 1e-6,
                        "port overlap at {proc}"
                    );
                }
            }
        }
    }

    #[test]
    fn directory_style_shared_estimates_predict_the_two_flow_case() {
        // §3.1: the directory divides shared-link bandwidth among the
        // communicating pairs. For the two-concurrent-flow case the
        // flattened with-flows estimate matches the fluid ground truth.
        let t = two_site_topology();
        let flows = [(0usize, 2usize), (1usize, 3usize)];
        let shared = t.to_net_params_with_flows(&flows);
        let e = shared.estimate(0, 2);
        let predicted = e.message_time(Bytes::from_kb(250)).as_ms();
        assert!((predicted - 2_012.0).abs() < 1e-6, "predicted {predicted}");
    }
}

//! Deterministic discrete-event simulation of communication schedules.
//!
//! The paper's evaluation is simulation-based: "We have developed a
//! software simulator that executes the scheduling algorithms discussed
//! in Section 4, and calculates the completion time for each of them."
//! This crate re-implements that simulator at the network-model level and
//! extends it with the §6 model variants:
//!
//! * [`engine`] — a reusable deterministic event calendar;
//! * [`executor`] — message-level execution of a send order against a
//!   static network (agrees exactly with the analytic execution in
//!   `adaptcomm-core` — property-tested);
//! * [`dynamic`] — execution against a *drifting* network
//!   ([`adaptcomm_model::variation::VariationTrace`]) with the §6.3
//!   checkpoint/rescheduling policies;
//! * [`interleaved`] — §6.1 concurrent receives with `(1+α)` overhead;
//! * [`buffered`] — §6.1 finite receive buffers with decoupled drains;
//! * [`fluid`] — topology-level ground truth: dynamic equal-share link
//!   bandwidth division (§3.1), quantifying the flat model's error;
//! * [`metrics`] — per-processor busy/idle accounting and ratio reports.

//!
//! # Example
//!
//! ```
//! use adaptcomm_core::algorithms::{OpenShop, Scheduler};
//! use adaptcomm_core::matrix::CommMatrix;
//! use adaptcomm_model::{NetParams, Bandwidth, Bytes, Millis};
//! use adaptcomm_sim::run_static;
//!
//! let net = NetParams::uniform(4, Millis::new(5.0), Bandwidth::from_kbps(1_000.0));
//! let sizes: Vec<Vec<Bytes>> = (0..4).map(|s| (0..4)
//!     .map(|d| if s == d { Bytes::ZERO } else { Bytes::KB }).collect()).collect();
//! let matrix = CommMatrix::from_model(&net, &sizes);
//! let order = OpenShop.send_order(&matrix);
//! let run = run_static(&order, &net, &sizes);
//! // The simulator reproduces the analytic completion exactly.
//! assert_eq!(run.makespan, OpenShop.schedule(&matrix).completion_time());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Index-based loops mirror the published pseudocode of the ported
// algorithms; iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]

pub mod buffered;
pub mod dynamic;
pub mod engine;
pub mod executor;
pub mod faults;
pub mod fluid;
pub mod interleaved;
pub mod metrics;

pub use dynamic::{
    run_adaptive, run_adaptive_checked, AdaptiveConfig, DynamicOutcome, NetworkEvolution, SimError,
};
pub use engine::ScheduleError;
pub use executor::{run_static, TransferRecord};
pub use faults::{Fault, ScriptedFaults};
pub use metrics::SimMetrics;

//! Per-run metrics: busy/idle accounting and lower-bound ratios.

use crate::executor::TransferRecord;
use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_model::units::Millis;

/// Aggregated metrics over a set of transfer records.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMetrics {
    /// Number of processors.
    pub processors: usize,
    /// Completion time (last finish).
    pub makespan: Millis,
    /// Per-processor total send-port busy time.
    pub send_busy: Vec<Millis>,
    /// Per-processor total receive-port busy time.
    pub recv_busy: Vec<Millis>,
    /// Average utilization of the busier port per processor, in `[0, 1]`.
    pub mean_utilization: f64,
}

impl SimMetrics {
    /// Computes metrics from transfer records.
    pub fn from_records(p: usize, records: &[TransferRecord]) -> Self {
        let mut send_busy = vec![Millis::ZERO; p];
        let mut recv_busy = vec![Millis::ZERO; p];
        let mut makespan = Millis::ZERO;
        for r in records {
            let dur = r.finish - r.start;
            send_busy[r.src] += dur;
            recv_busy[r.dst] += dur;
            makespan = makespan.max(r.finish);
        }
        let mean_utilization = if makespan.as_ms() > 0.0 {
            let total: f64 = (0..p)
                .map(|k| send_busy[k].max(recv_busy[k]).as_ms() / makespan.as_ms())
                .sum();
            total / p as f64
        } else {
            0.0
        };
        SimMetrics {
            processors: p,
            makespan,
            send_busy,
            recv_busy,
            mean_utilization,
        }
    }

    /// Ratio of makespan to the lower bound of `matrix` (≥ 1).
    pub fn lb_ratio(&self, matrix: &CommMatrix) -> f64 {
        let lb = matrix.lower_bound().as_ms();
        if lb == 0.0 {
            1.0
        } else {
            self.makespan.as_ms() / lb
        }
    }

    /// The processor whose busier port is busiest — the bottleneck.
    pub fn bottleneck(&self) -> usize {
        (0..self.processors)
            .max_by(|&a, &b| {
                let la = self.send_busy[a].max(self.recv_busy[a]).as_ms();
                let lb = self.send_busy[b].max(self.recv_busy[b]).as_ms();
                la.total_cmp(&lb)
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptcomm_model::units::Bytes;

    fn rec(src: usize, dst: usize, start: f64, dur: f64) -> TransferRecord {
        TransferRecord {
            src,
            dst,
            bytes: Bytes::KB,
            start: Millis::new(start),
            finish: Millis::new(start + dur),
        }
    }

    #[test]
    fn busy_accounting() {
        let records = vec![
            rec(0, 1, 0.0, 4.0),
            rec(0, 2, 4.0, 6.0),
            rec(1, 2, 0.0, 3.0),
        ];
        let m = SimMetrics::from_records(3, &records);
        assert_eq!(m.makespan.as_ms(), 10.0);
        assert_eq!(m.send_busy[0].as_ms(), 10.0);
        assert_eq!(m.send_busy[1].as_ms(), 3.0);
        assert_eq!(m.recv_busy[2].as_ms(), 9.0);
        assert_eq!(m.bottleneck(), 0);
        // Utilizations: P0 max(10,0)/10=1, P1 max(3,4)/10=0.4, P2 0.9.
        assert!((m.mean_utilization - (1.0 + 0.4 + 0.9) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_records() {
        let m = SimMetrics::from_records(2, &[]);
        assert_eq!(m.makespan.as_ms(), 0.0);
        assert_eq!(m.mean_utilization, 0.0);
    }

    #[test]
    fn lb_ratio_uses_matrix() {
        let records = vec![rec(0, 1, 0.0, 5.0), rec(1, 0, 0.0, 5.0)];
        let m = SimMetrics::from_records(2, &records);
        let c = CommMatrix::from_rows(&[vec![0.0, 5.0], vec![5.0, 0.0]]);
        assert!((m.lb_ratio(&c) - 1.0).abs() < 1e-12);
    }
}

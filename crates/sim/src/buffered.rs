//! Finite receive buffers with decoupled application drains (§6.1).
//!
//! "It could also be assumed that a finite buffer space is available at
//! nodes to receive messages. When multiple messages arrive at a node,
//! one of the messages is received by the application, while the others
//! are queued in the buffer. The sending nodes do not wait until the
//! receive operation is complete, but only until the message is stored in
//! the buffer. If the buffer is full, the sender must wait until adequate
//! free space is created in the buffer."
//!
//! Model: the network port still admits one incoming transfer at a time
//! (hardware serialization), and a transfer may begin only when the
//! buffer has room for the whole message. Once stored, the sender is
//! released; a separate application drain consumes buffered messages
//! FIFO at `drain_rate`, freeing their space. The run reports both the
//! network completion (last store) and the application completion (last
//! drain).

use crate::engine::Calendar;
use crate::executor::TransferRecord;
use adaptcomm_core::schedule::SendOrder;
use adaptcomm_model::cost::{BufferedModel, CostModel};
use adaptcomm_model::units::{Bytes, Millis};
use std::collections::VecDeque;

const CLS_READY: u8 = 0;
const CLS_STORED: u8 = 1;
const CLS_DRAINED: u8 = 2;

/// Outcome of a buffered run.
#[derive(Debug, Clone)]
pub struct BufferedRun {
    /// Transfer records; `finish` is the *store* completion (sender
    /// release time).
    pub stores: Vec<TransferRecord>,
    /// Per-message drain completion times, same order as `stores`.
    pub drain_finish: Vec<Millis>,
    /// Last store (network-level makespan).
    pub network_makespan: Millis,
    /// Last drain (application-level makespan).
    pub app_makespan: Millis,
    /// Times senders spent blocked on full buffers, summed.
    pub total_buffer_stall: Millis,
}

/// Simulates `order` under the finite-buffer model.
pub fn run_buffered<M: CostModel>(
    order: &SendOrder,
    model: &BufferedModel<M>,
    sizes: &[Vec<Bytes>],
) -> BufferedRun {
    let p = model.len();
    assert_eq!(order.processors(), p, "order and model disagree on P");
    assert_eq!(sizes.len(), p, "size matrix does not match P");
    let cap = model.buffer_capacity.as_u64();
    for (s, row) in sizes.iter().enumerate() {
        for (d, b) in row.iter().enumerate() {
            if s != d {
                assert!(
                    b.as_u64() <= cap,
                    "message {s}->{d} ({b}) exceeds buffer capacity ({})",
                    model.buffer_capacity
                );
            }
        }
    }

    #[derive(Clone, Copy)]
    enum Ev {
        SenderReady(usize),
        Stored { src: usize, dst: usize },
        Drained { dst: usize, bytes: u64 },
    }

    let mut cal: Calendar<Ev> = Calendar::new();
    let mut pending: Vec<Vec<(f64, usize)>> = vec![Vec::new(); p];
    let mut port_busy = vec![false; p];
    let mut buffer_used = vec![0u64; p];
    // FIFO of (bytes, store_finish_index) waiting to drain per receiver.
    let mut drain_queue: Vec<VecDeque<(u64, usize)>> = vec![VecDeque::new(); p];
    let mut draining = vec![false; p];
    let mut next_idx = vec![0usize; p];
    let mut stores: Vec<TransferRecord> = Vec::new();
    let mut drain_finish: Vec<Millis> = Vec::new();
    let mut stall = 0.0f64;
    let mut stall_since: Vec<Option<f64>> = vec![None; p];

    for src in 0..p {
        cal.schedule(0.0, CLS_READY, Ev::SenderReady(src));
    }

    macro_rules! try_start {
        ($src:expr, $dst:expr, $now:expr) => {{
            let (src, dst, now): (usize, usize, f64) = ($src, $dst, $now);
            let bytes = sizes[src][dst].as_u64();
            if port_busy[dst] || buffer_used[dst] + bytes > cap {
                // Blocked. Only buffer-space blocking counts as a stall:
                // waiting for a busy port happens in the base model too.
                pending[dst].push((now, src));
                if !port_busy[dst] && stall_since[src].is_none() {
                    stall_since[src] = Some(now);
                }
            } else {
                if let Some(since) = stall_since[src].take() {
                    stall += now - since;
                }
                let dur = model.message_time(src, dst, sizes[src][dst]).as_ms();
                let fin = now + dur;
                port_busy[dst] = true;
                buffer_used[dst] += bytes;
                next_idx[src] += 1;
                stores.push(TransferRecord {
                    src,
                    dst,
                    bytes: sizes[src][dst],
                    start: Millis::new(now),
                    finish: Millis::new(fin),
                });
                drain_finish.push(Millis::ZERO); // patched when drained
                cal.schedule(fin, CLS_STORED, Ev::Stored { src, dst });
            }
        }};
    }

    macro_rules! maybe_drain {
        ($dst:expr, $now:expr) => {{
            let (dst, now): (usize, f64) = ($dst, $now);
            if !draining[dst] {
                if let Some(&(bytes, idx)) = drain_queue[dst].front() {
                    draining[dst] = true;
                    let dur = model.drain_rate.transfer_time(Bytes::new(bytes)).as_ms();
                    let fin = now + dur;
                    drain_finish[idx] = Millis::new(fin);
                    cal.schedule(fin, CLS_DRAINED, Ev::Drained { dst, bytes });
                }
            }
        }};
    }

    macro_rules! retry_pending {
        ($dst:expr, $now:expr) => {{
            let (dst, now): (usize, f64) = ($dst, $now);
            // Admit the earliest-requested waiter whose message fits —
            // original request times are preserved so the grant policy
            // stays FCFS, matching the base executor when buffers never
            // bind. Waiters whose messages do not fit are skipped (a
            // smaller later request may proceed).
            if !port_busy[dst] {
                let admissible = pending[dst]
                    .iter()
                    .enumerate()
                    .filter(|(_, &(_, s))| {
                        let b = sizes[s][order.order[s][next_idx[s]]].as_u64();
                        buffer_used[dst] + b <= cap
                    })
                    .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                    .map(|(k, _)| k);
                if let Some(k) = admissible {
                    let (req_time, s) = pending[dst].swap_remove(k);
                    let _ = req_time;
                    // Start directly (the admission test just passed).
                    if let Some(since) = stall_since[s].take() {
                        stall += now - since;
                    }
                    let bytes = sizes[s][order.order[s][next_idx[s]]];
                    let dur = model.message_time(s, dst, bytes).as_ms();
                    let fin = now + dur;
                    port_busy[dst] = true;
                    buffer_used[dst] += bytes.as_u64();
                    next_idx[s] += 1;
                    stores.push(TransferRecord {
                        src: s,
                        dst,
                        bytes,
                        start: Millis::new(now),
                        finish: Millis::new(fin),
                    });
                    drain_finish.push(Millis::ZERO);
                    cal.schedule(fin, CLS_STORED, Ev::Stored { src: s, dst });
                }
            }
        }};
    }

    while let Some((now, _, ev)) = cal.pop_next() {
        match ev {
            Ev::SenderReady(src) => {
                let idx = next_idx[src];
                if idx >= order.order[src].len() {
                    continue;
                }
                let dst = order.order[src][idx];
                try_start!(src, dst, now);
            }
            Ev::Stored { src, dst } => {
                port_busy[dst] = false;
                // The message sits in the buffer until drained.
                let idx = stores
                    .iter()
                    .rposition(|r| r.src == src && r.dst == dst && r.finish.as_ms() == now)
                    .expect("stored record exists");
                drain_queue[dst].push_back((sizes[src][dst].as_u64(), idx));
                maybe_drain!(dst, now);
                // Sender moves on immediately.
                cal.schedule(now, CLS_READY, Ev::SenderReady(src));
                retry_pending!(dst, now);
            }
            Ev::Drained { dst, bytes } => {
                draining[dst] = false;
                buffer_used[dst] -= bytes;
                let _ = drain_queue[dst].pop_front();
                maybe_drain!(dst, now);
                retry_pending!(dst, now);
            }
        }
    }

    let network_makespan = stores
        .iter()
        .map(|r| r.finish)
        .fold(Millis::ZERO, Millis::max);
    let app_makespan = drain_finish.iter().copied().fold(Millis::ZERO, Millis::max);
    BufferedRun {
        stores,
        drain_finish,
        network_makespan,
        app_makespan,
        total_buffer_stall: Millis::new(stall),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::run_static;
    use adaptcomm_core::algorithms::{OpenShop, Scheduler};
    use adaptcomm_core::matrix::CommMatrix;
    use adaptcomm_model::params::NetParams;
    use adaptcomm_model::units::Bandwidth;

    fn net(p: usize) -> NetParams {
        NetParams::uniform(p, Millis::new(5.0), Bandwidth::from_kbps(800.0))
    }

    fn sizes(p: usize, kb: u64) -> Vec<Vec<Bytes>> {
        (0..p)
            .map(|s| {
                (0..p)
                    .map(|d| {
                        if s == d {
                            Bytes::ZERO
                        } else {
                            Bytes::from_kb(kb)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn order(p: usize) -> SendOrder {
        let m = CommMatrix::from_model(&net(p), &sizes(p, 50));
        OpenShop.send_order(&m)
    }

    #[test]
    fn ample_buffer_and_instant_drain_matches_base_network_makespan() {
        let p = 5;
        let model = BufferedModel::new(net(p), Bytes::from_mb(1_000), Bandwidth::from_kbps(1e12));
        let run = run_buffered(&order(p), &model, &sizes(p, 50));
        let base = run_static(&order(p), &net(p), &sizes(p, 50));
        // With effectively infinite buffers the network-level behaviour
        // is identical to the base model.
        assert!(
            (run.network_makespan.as_ms() - base.makespan.as_ms()).abs() < 1e-6,
            "{} vs {}",
            run.network_makespan,
            base.makespan
        );
        assert_eq!(run.stores.len(), p * (p - 1));
        assert_eq!(run.total_buffer_stall.as_ms(), 0.0);
    }

    #[test]
    fn app_makespan_dominates_network_makespan() {
        let p = 4;
        let model = BufferedModel::new(net(p), Bytes::from_mb(10), Bandwidth::from_kbps(400.0));
        let run = run_buffered(&order(p), &model, &sizes(p, 50));
        assert!(run.app_makespan.as_ms() >= run.network_makespan.as_ms() - 1e-9);
        // Every drain completes after its store.
        for (r, d) in run.stores.iter().zip(&run.drain_finish) {
            assert!(d.as_ms() >= r.finish.as_ms() - 1e-9);
        }
    }

    #[test]
    fn tight_buffer_stalls_senders() {
        let p = 4;
        // Buffer fits exactly one 50 kB message; drain is slow.
        let tight = BufferedModel::new(net(p), Bytes::from_kb(50), Bandwidth::from_kbps(100.0));
        let run = run_buffered(&order(p), &tight, &sizes(p, 50));
        assert_eq!(
            run.stores.len(),
            p * (p - 1),
            "all messages still delivered"
        );
        assert!(
            run.total_buffer_stall.as_ms() > 0.0,
            "a one-message buffer with slow drain must stall someone"
        );
        // Same workload with a huge buffer: strictly less stall.
        let roomy = BufferedModel::new(net(p), Bytes::from_mb(100), Bandwidth::from_kbps(100.0));
        let easy = run_buffered(&order(p), &roomy, &sizes(p, 50));
        assert!(easy.network_makespan.as_ms() <= run.network_makespan.as_ms() + 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceeds buffer capacity")]
    fn oversized_message_rejected() {
        let p = 3;
        let model = BufferedModel::new(net(p), Bytes::from_kb(10), Bandwidth::from_kbps(100.0));
        let _ = run_buffered(&order(p), &model, &sizes(p, 50));
    }
}

//! LAP solver throughput: the matching scheduler's inner loop solves `P`
//! assignment problems of size `P`, so the solver dominates the `O(P⁴)`
//! cost. Compares the production Jonker–Volgenant implementation against
//! the Hungarian cross-check.

use adaptcomm_lap::{hungarian, jv, DenseCost};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn instance(n: usize, seed: u64) -> DenseCost {
    DenseCost::from_fn(n, |i, j| {
        let h = (i as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(j as u64)
            .wrapping_mul(1442695040888963407)
            .wrapping_add(seed);
        (h % 100_000) as f64 / 100.0
    })
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("lap_solvers");
    group.sample_size(20);
    for n in [16usize, 50, 128] {
        let m = instance(n, 42);
        group.bench_with_input(BenchmarkId::new("jonker-volgenant", n), &m, |b, m| {
            b.iter(|| black_box(jv::solve(black_box(m)).cost))
        });
        group.bench_with_input(BenchmarkId::new("hungarian", n), &m, |b, m| {
            b.iter(|| black_box(hungarian::solve(black_box(m)).cost))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

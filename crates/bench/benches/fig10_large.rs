//! Figure 10 workload: scheduling cost of each algorithm on the
//! 1 MB-message workload, and one end-to-end figure regeneration at
//! reduced scale. The full data series is produced by
//! `cargo run -p adaptcomm-bench --bin figures -- --fig10`.

use adaptcomm_bench::experiments::run_figure;
use adaptcomm_core::algorithms::all_schedulers;
use adaptcomm_workloads::Scenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_large_1MB");
    group.sample_size(10);
    let inst = Scenario::Large.instance(25, 9);
    for s in all_schedulers() {
        group.bench_with_input(
            BenchmarkId::new("schedule", s.name()),
            &inst.matrix,
            |b, m| b.iter(|| black_box(s.schedule(black_box(m)).completion_time())),
        );
    }
    group.bench_function("regenerate_figure_reduced", |b| {
        b.iter(|| black_box(run_figure(Scenario::Large, &[5, 15], 1)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation benches for the design choices DESIGN.md calls out:
//! execution semantics (ASAP vs pairwise steps vs sendrecv vs barrier),
//! max vs min matching, and the §6.1 interleaving/buffer model variants.

use adaptcomm_core::algorithms::{Baseline, MatchingKind, MatchingScheduler, Scheduler};
use adaptcomm_core::execution::{execute_listed, execute_steps, execute_steps_sendrecv};
use adaptcomm_core::schedule::SendOrder;
use adaptcomm_model::cost::{BufferedModel, InterleavedModel};
use adaptcomm_model::units::{Bandwidth, Bytes};
use adaptcomm_sim::buffered::run_buffered;
use adaptcomm_sim::interleaved::run_interleaved;
use adaptcomm_sim::run_static;
use adaptcomm_workloads::Scenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let inst = Scenario::Mixed.instance(25, 11);
    let steps = Baseline::steps(25);
    let order = SendOrder::from_steps(25, &steps);

    // Execution-semantics ablation on the identical caterpillar order.
    group.bench_function("exec/asap", |b| {
        b.iter(|| black_box(execute_listed(&order, &inst.matrix).completion_time()))
    });
    group.bench_function("exec/sendrecv", |b| {
        b.iter(|| black_box(execute_steps_sendrecv(&steps, &inst.matrix).completion_time()))
    });
    group.bench_function("exec/barrier", |b| {
        b.iter(|| black_box(execute_steps(&steps, &inst.matrix).completion_time()))
    });

    // Max vs min matching.
    for kind in [MatchingKind::Max, MatchingKind::Min] {
        group.bench_with_input(
            BenchmarkId::new("matching", format!("{kind:?}")),
            &inst.matrix,
            |b, m| {
                let s = MatchingScheduler::new(kind);
                b.iter(|| black_box(s.schedule(black_box(m)).completion_time()))
            },
        );
    }

    // §6.1 model variants on the same order.
    let sizes = inst.sizes.to_rows();
    group.bench_function("model/base", |b| {
        b.iter(|| black_box(run_static(&order, &inst.network, &sizes).makespan))
    });
    for alpha in [0.0f64, 0.25, 1.0] {
        group.bench_with_input(
            BenchmarkId::new("model/interleaved_alpha", format!("{alpha}")),
            &alpha,
            |b, &alpha| {
                let model = InterleavedModel::new(inst.network.clone(), alpha, 4);
                b.iter(|| black_box(run_interleaved(&order, &model, &sizes).makespan))
            },
        );
    }
    for buf_mb in [2u64, 16] {
        group.bench_with_input(
            BenchmarkId::new("model/buffered_mb", buf_mb),
            &buf_mb,
            |b, &buf_mb| {
                let model = BufferedModel::new(
                    inst.network.clone(),
                    Bytes::from_mb(buf_mb),
                    Bandwidth::from_kbps(10_000.0),
                );
                b.iter(|| black_box(run_buffered(&order, &model, &sizes).app_makespan))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Live-runtime overhead: the shaped-channel engine (real threads,
//! virtual-time fabric) vs. the discrete-event simulator on the same
//! workload, plus the full closed loop with the prober and directory
//! attached.

use adaptcomm_core::algorithms::{OpenShop, Scheduler};
use adaptcomm_core::checkpointed::{CheckpointPolicy, RescheduleRule};
use adaptcomm_directory::DirectoryService;
use adaptcomm_runtime::channel::{run_shaped, CheckpointAction, FrozenNetwork, ShapedConfig};
use adaptcomm_runtime::transport::ChannelTransport;
use adaptcomm_runtime::{execute_adaptive, AdaptSettings, BackendKind, ReplanTrigger};
use adaptcomm_sim::run_static;
use adaptcomm_workloads::Scenario;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);
    let p = 12;
    let inst = Scenario::Mixed.instance(p, 5);
    let order = OpenShop.send_order(&inst.matrix);
    let sizes = inst.sizes.to_rows();
    // Timing overhead is the question, not memcpy throughput.
    let config = ShapedConfig {
        payload_cap: Some(64),
        ..Default::default()
    };

    group.bench_function("sim_static_p12", |b| {
        b.iter(|| black_box(run_static(&order, &inst.network, &sizes).makespan))
    });

    group.bench_function("shaped_channel_p12", |b| {
        b.iter(|| {
            let transport = ChannelTransport::new(p);
            let mut evo = FrozenNetwork(inst.network.clone());
            black_box(
                run_shaped(&order.order, &sizes, &mut evo, &transport, config, |_| {
                    CheckpointAction::Continue
                })
                .expect("frozen network")
                .makespan,
            )
        })
    });

    group.bench_function("closed_loop_p12", |b| {
        b.iter(|| {
            let directory = DirectoryService::new(inst.network.clone());
            let mut evo = FrozenNetwork(inst.network.clone());
            black_box(
                execute_adaptive(
                    &order.order,
                    &sizes,
                    &mut evo,
                    &directory,
                    BackendKind::Channel,
                    AdaptSettings {
                        policy: CheckpointPolicy::Halving,
                        trigger: ReplanTrigger::Deviation(RescheduleRule::default()),
                        payload_cap: Some(64),
                        ..Default::default()
                    },
                )
                .expect("clean run")
                .makespan,
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

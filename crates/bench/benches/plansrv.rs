//! Plan-server throughput by cache disposition: requests per second
//! for a cold solve, an exact-fingerprint replay, and a ±2 %
//! cross-job warm start, all measured as full TCP round trips at
//! `P = 64` against a live server (§6.2: the schedule-construction
//! overhead is what the cache and warm starts amortise).

use adaptcomm_bench::perf::PerfStats;
use adaptcomm_bench::plansrv_bench::measure_plan_server;

fn main() {
    const P: usize = 64;
    const REPS: usize = 10;
    let samples = measure_plan_server(P, REPS);
    println!("plansrv throughput, P={P}, {REPS} reps (full client round trips)");
    for (name, series) in [
        ("cold ", &samples.cold_ms),
        ("hit  ", &samples.hit_ms),
        ("warm ", &samples.warm_ms),
    ] {
        let stats = PerfStats::from_samples(series);
        println!(
            "{name}  median {:>9.3} ms   p90 {:>9.3} ms   {:>9.1} req/s",
            stats.median_ms,
            stats.p90_ms,
            1e3 / stats.median_ms
        );
    }
}

//! Simulator throughput: static message-level execution and the §6.3
//! adaptive engine under each checkpoint policy.

use adaptcomm_core::algorithms::{OpenShop, Scheduler};
use adaptcomm_core::checkpointed::{CheckpointPolicy, RescheduleRule};
use adaptcomm_model::units::Millis;
use adaptcomm_model::variation::{VariationConfig, VariationTrace};
use adaptcomm_sim::dynamic::{run_adaptive, AdaptiveConfig, Replanner};
use adaptcomm_sim::run_static;
use adaptcomm_workloads::Scenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let inst = Scenario::Mixed.instance(30, 5);
    let order = OpenShop.send_order(&inst.matrix);
    let sizes = inst.sizes.to_rows();

    group.bench_function("static_p30", |b| {
        b.iter(|| black_box(run_static(&order, &inst.network, &sizes).makespan))
    });

    let drift = VariationConfig {
        step: Millis::new(1_000.0),
        volatility: 0.25,
        floor: 0.1,
        ceil: 1.0,
    };
    for (name, policy) in [
        ("never", CheckpointPolicy::Never),
        ("halving", CheckpointPolicy::Halving),
        ("every-event", CheckpointPolicy::EveryEvent),
    ] {
        group.bench_with_input(
            BenchmarkId::new("adaptive_p30", name),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut trace = VariationTrace::new(inst.network.clone(), drift, 9);
                    black_box(
                        run_adaptive(
                            &order,
                            &sizes,
                            &mut trace,
                            &AdaptiveConfig {
                                policy,
                                rule: RescheduleRule {
                                    deviation_threshold: 0.1,
                                },
                                replanner: Replanner::OpenShop,
                            },
                        )
                        .makespan,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

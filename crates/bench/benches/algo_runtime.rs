//! Scheduling-algorithm wall time vs `P` — the §6.2 motivation: "the
//! overhead for repeatedly calculating the communication schedule at
//! run-time can be expensive, especially when the number of processors
//! is large". Exposes the `O(P³)` (greedy, open shop) vs `O(P⁴)`
//! (matching) separation, plus the §6.2 incremental repair which cuts the
//! recurring cost to `O(P² log P)`.

use adaptcomm_core::algorithms::{all_schedulers, OpenShop};
use adaptcomm_core::incremental::{IncrementalConfig, IncrementalScheduler};
use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_workloads::Scenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("algo_runtime");
    group.sample_size(10);
    for p in [10usize, 20, 40, 80] {
        let inst = Scenario::Mixed.instance(p, 3);
        for s in all_schedulers() {
            group.bench_with_input(BenchmarkId::new(s.name(), p), &inst.matrix, |b, m| {
                b.iter(|| black_box(s.send_order(black_box(m))))
            });
        }
        // Incremental repair (the recurring-cost alternative).
        group.bench_with_input(
            BenchmarkId::new("incremental-repair", p),
            &inst.matrix,
            |b, m| {
                let drifted = CommMatrix::from_fn(m.len(), |s, d| {
                    m.cost(s, d).as_ms() * if (s + d) % 3 == 0 { 1.4 } else { 1.0 }
                });
                b.iter(|| {
                    let mut inc = IncrementalScheduler::new(
                        OpenShop,
                        IncrementalConfig::default(),
                        m.clone(),
                    );
                    black_box(inc.update(drifted.clone()))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

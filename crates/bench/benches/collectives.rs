//! Collective-pattern scheduling cost at scale: the broadcast tree
//! construction is `O(P²)` per event (`O(P³)` total for fastest-first),
//! the all-to-some open shop rule `O(|demand|·P)`.

use adaptcomm_collectives::all_to_some::{schedule_demand, Demand};
use adaptcomm_collectives::broadcast;
use adaptcomm_collectives::reduce::{reduce, ReduceTree};
use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_workloads::Scenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    group.sample_size(20);
    for p in [16usize, 64] {
        let matrix: CommMatrix = Scenario::Mixed.instance(p, 2).matrix;
        group.bench_with_input(BenchmarkId::new("broadcast/flat", p), &matrix, |b, m| {
            b.iter(|| black_box(broadcast::flat(black_box(m), 0).completion_time()))
        });
        group.bench_with_input(
            BenchmarkId::new("broadcast/binomial", p),
            &matrix,
            |b, m| b.iter(|| black_box(broadcast::binomial(black_box(m), 0).completion_time())),
        );
        group.bench_with_input(
            BenchmarkId::new("broadcast/fastest_first", p),
            &matrix,
            |b, m| {
                b.iter(|| black_box(broadcast::fastest_first(black_box(m), 0).completion_time()))
            },
        );
        group.bench_with_input(BenchmarkId::new("reduce/tree", p), &matrix, |b, m| {
            b.iter(|| {
                black_box(reduce(black_box(m), 0, ReduceTree::FastestFirst).completion_time())
            })
        });
        let demand = Demand::all_to(p, &(0..p / 4).collect::<Vec<_>>());
        group.bench_with_input(
            BenchmarkId::new("all_to_some", p),
            &(matrix, demand),
            |b, (m, d)| b.iter(|| black_box(schedule_demand(black_box(m), d).completion_time())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

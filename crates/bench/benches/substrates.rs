//! Substrate throughput: data staging and task mapping at scale.

use adaptcomm_mapping::{etc, map_tasks, schedule_dag, HeterogeneityClass, Heuristic, TaskGraph};
use adaptcomm_model::cost::LinkEstimate;
use adaptcomm_model::params::NetParams;
use adaptcomm_model::units::{Bandwidth, Bytes, Millis};
use adaptcomm_staging::{schedule_staging, DataItem, LinkGraph, NodeId, Request, StagingProblem};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn staging_instance(nodes: usize, requests: usize) -> (LinkGraph, StagingProblem) {
    let mut g = LinkGraph::new(nodes);
    for i in 0..nodes {
        let e = LinkEstimate::new(
            Millis::new(((i * 7) % 50 + 10) as f64),
            Bandwidth::from_kbps(((i * 13) % 2_000 + 500) as f64),
        );
        g.add_bidi(NodeId(i), NodeId((i + 1) % nodes), e);
        if i % 3 == 0 {
            g.add_bidi(
                NodeId(i),
                NodeId((i + nodes / 2) % nodes),
                LinkEstimate::new(Millis::new(40.0), Bandwidth::from_kbps(3_000.0)),
            );
        }
    }
    let mut p = StagingProblem::new();
    for id in 0..4 {
        p.add_item(DataItem {
            id,
            size: Bytes::from_kb(((id as u64 + 1) * 64) % 512 + 32),
            sources: vec![NodeId(id % nodes)],
        });
    }
    for r in 0..requests as u64 {
        p.add_request(Request {
            item: (r % 4) as usize,
            destination: NodeId(((r * 5 + 1) % nodes as u64) as usize),
            deadline: Millis::new(((r * 37) % 40_000 + 10_000) as f64),
            priority: (r % 10) as u8,
        });
    }
    (g, p)
}

fn random_layered_dag(tasks: usize, width: usize) -> TaskGraph {
    let mut g = TaskGraph::new(tasks);
    for v in width..tasks {
        // Each task depends on 1-2 tasks from the previous layer.
        let layer_start = (v / width - 1) * width;
        g.add_edge(layer_start + v % width, v, Bytes::from_kb(64));
        if v % 2 == 0 {
            g.add_edge(layer_start + (v + 1) % width, v, Bytes::from_kb(16));
        }
    }
    g
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);

    for (nodes, requests) in [(10usize, 20usize), (30, 80)] {
        group.bench_with_input(
            BenchmarkId::new("staging", format!("{nodes}n{requests}r")),
            &(nodes, requests),
            |b, &(n, r)| {
                b.iter(|| {
                    let (mut g, p) = staging_instance(n, r);
                    black_box(schedule_staging(&mut g, &p).satisfied())
                })
            },
        );
    }

    for tasks in [64usize, 512] {
        let e = etc::generate(tasks, 16, HeterogeneityClass::Inconsistent, 20.0, 8.0, 5);
        for h in [Heuristic::Mct, Heuristic::MinMin, Heuristic::Sufferage] {
            group.bench_with_input(
                BenchmarkId::new(format!("mapping/{}", h.name()), tasks),
                &e,
                |b, e| b.iter(|| black_box(map_tasks(black_box(e), h).makespan)),
            );
        }
    }

    let net = NetParams::uniform(8, Millis::new(5.0), Bandwidth::from_kbps(10_000.0));
    for tasks in [64usize, 256] {
        let g = random_layered_dag(tasks, 8);
        let e = etc::generate(tasks, 8, HeterogeneityClass::Inconsistent, 15.0, 6.0, 9);
        group.bench_with_input(
            BenchmarkId::new("dag_schedule", tasks),
            &(g, e),
            |b, (g, e)| b.iter(|| black_box(schedule_dag(black_box(g), e, &net).makespan)),
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Experiment harness regenerating the paper's tables and figures.
//!
//! The `figures` binary drives the functions in [`experiments`] and
//! prints each table/figure as aligned text plus CSV; the Criterion
//! benches in `benches/` measure the *cost* of running the schedulers
//! themselves (the §6.2 motivation: "the overhead for repeatedly
//! calculating the communication schedule at run-time can be expensive").

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Index-based loops mirror the published pseudocode of the ported
// algorithms; iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]

pub mod experiments;
pub mod perf;
pub mod plansrv_bench;
pub mod sweep;

pub use experiments::{FigureRow, FigureTable, SummaryStats};
pub use sweep::{InstanceResult, SweepGrid, SweepPoint, SweepRunner, SweepStats};

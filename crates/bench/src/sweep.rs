//! Parallel sweep engine for the (scenario × P × trial) instance grids
//! behind Figures 9–12 and the §5 summary statistics.
//!
//! The engine separates *what* an experiment evaluates from *how* the
//! grid is traversed:
//!
//! * [`SweepGrid`] enumerates the instance grid. Each instance's RNG
//!   seed is derived **from its grid coordinates alone** (via the grid's
//!   [`SeedFn`]), never from traversal order, so any traversal — serial,
//!   threaded, chunked — prices the exact same set of networks.
//! * [`SweepRunner`] evaluates the grid, fanning instances out across a
//!   fixed pool of scoped OS threads (the container image has no rayon,
//!   so the fan-out is a work-claiming `AtomicUsize` over the point list
//!   — the same dynamic-chunking behaviour `rayon::par_iter` would give
//!   for this embarrassingly parallel shape). Results are reassembled in
//!   grid order, so the output is **bit-identical for every thread
//!   count**, including the serial `threads = 1` reference path.
//! * [`SweepStats`] folds per-instance results into per-scheduler
//!   lb-ratio statistics and can merge partial accumulators from
//!   independently processed chunks.
//!
//! Per-scheduler sums are accumulated in grid order by the fold, so the
//! figures and summaries built on top of this engine reproduce the
//! numbers of the original serial loops exactly.

use adaptcomm_core::algorithms::all_schedulers;
use adaptcomm_model::generator::GeneratorConfig;
use adaptcomm_workloads::Scenario;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Derives an instance seed from grid coordinates.
///
/// Implementations must be pure functions of `(scenario, p, trial)`; the
/// runner never passes anything traversal-dependent.
pub type SeedFn = fn(Scenario, usize, u64) -> u64;

/// The seed family used by the figure sweeps ([`crate::experiments::run_figure`]).
pub fn figure_seed(_scenario: Scenario, p: usize, trial: u64) -> u64 {
    trial.wrapping_mul(7919).wrapping_add(p as u64)
}

/// The seed family used by the §5 summary statistics
/// ([`crate::experiments::summary`]).
pub fn summary_seed(_scenario: Scenario, p: usize, trial: u64) -> u64 {
    trial.wrapping_mul(104_729).wrapping_add(p as u64)
}

/// A (scenario × P × trial) instance grid with coordinate-derived seeds.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Scenarios, in grid-major order.
    pub scenarios: Vec<Scenario>,
    /// Processor counts swept per scenario.
    pub p_values: Vec<usize>,
    /// Network draws per (scenario, P) data point.
    pub trials: u64,
    /// Network-generator configuration shared by every instance.
    pub cfg: GeneratorConfig,
    /// Coordinate → seed mapping.
    pub seed_fn: SeedFn,
}

impl SweepGrid {
    /// A single-scenario grid with the figure seed family.
    pub fn figure(
        scenario: Scenario,
        p_values: &[usize],
        trials: u64,
        cfg: GeneratorConfig,
    ) -> Self {
        SweepGrid {
            scenarios: vec![scenario],
            p_values: p_values.to_vec(),
            trials,
            cfg,
            seed_fn: figure_seed,
        }
    }

    /// The all-figure-scenarios grid with the summary seed family.
    pub fn summary(p_values: &[usize], trials: u64) -> Self {
        SweepGrid {
            scenarios: Scenario::FIGURES.to_vec(),
            p_values: p_values.to_vec(),
            trials,
            cfg: GeneratorConfig::default(),
            seed_fn: summary_seed,
        }
    }

    /// All grid points in canonical order (scenario-major, then P, then
    /// trial), each with its coordinate-derived seed.
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut out =
            Vec::with_capacity(self.scenarios.len() * self.p_values.len() * self.trials as usize);
        for &scenario in &self.scenarios {
            for &p in &self.p_values {
                for trial in 0..self.trials {
                    out.push(SweepPoint {
                        scenario,
                        p,
                        trial,
                        seed: (self.seed_fn)(scenario, p, trial),
                    });
                }
            }
        }
        out
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.scenarios.len() * self.p_values.len() * self.trials as usize
    }

    /// True when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One grid coordinate with its derived seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Workload scenario.
    pub scenario: Scenario,
    /// Processor count.
    pub p: usize,
    /// Trial index within the (scenario, P) data point.
    pub trial: u64,
    /// Instance seed, derived from the coordinates above.
    pub seed: u64,
}

/// Everything the experiments need from one evaluated instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceResult {
    /// The grid point this instance came from.
    pub point: SweepPoint,
    /// The instance's lower bound (ms).
    pub lower_bound_ms: f64,
    /// `(scheduler name, completion time ms)` in [`all_schedulers`] order.
    pub completions_ms: Vec<(&'static str, f64)>,
}

impl InstanceResult {
    /// Completion / lower-bound ratio for one scheduler.
    pub fn ratio(&self, name: &str) -> Option<f64> {
        self.completions_ms
            .iter()
            .find(|&&(n, _)| n == name)
            .map(|&(_, t)| t / self.lower_bound_ms)
    }
}

/// Evaluates sweep grids, optionally across threads.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// A runner using `threads` worker threads (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        SweepRunner {
            threads: threads.max(1),
        }
    }

    /// The serial reference path (one worker, no thread spawn).
    pub fn serial() -> Self {
        SweepRunner { threads: 1 }
    }

    /// A runner sized to the machine's available parallelism.
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        SweepRunner { threads }
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates every grid point with every registered scheduler.
    ///
    /// Returns results in the grid's canonical order regardless of how
    /// many threads evaluated them, so downstream folds are bit-identical
    /// for every thread count.
    pub fn run(&self, grid: &SweepGrid) -> Vec<InstanceResult> {
        let points = grid.points();
        if self.threads == 1 || points.len() <= 1 {
            return points
                .iter()
                .map(|pt| evaluate_point(pt, grid.cfg))
                .collect();
        }

        let next = AtomicUsize::new(0);
        let workers = self.threads.min(points.len());
        let mut tagged: Vec<(usize, InstanceResult)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    // Shared by reference across workers: the point list
                    // and the claim counter.
                    let (points, next) = (&points, &next);
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            let Some(pt) = points.get(idx) else { break };
                            local.push((idx, evaluate_point(pt, grid.cfg)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });
        tagged.sort_by_key(|&(idx, _)| idx);
        tagged.into_iter().map(|(_, r)| r).collect()
    }

    /// Runs the grid and folds the results into [`SweepStats`].
    pub fn stats(&self, grid: &SweepGrid) -> SweepStats {
        let mut stats = SweepStats::default();
        for r in self.run(grid) {
            stats.observe(&r);
        }
        stats
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::auto()
    }
}

/// Prices one grid point: builds the instance from its coordinate seed
/// and schedules it with every registered algorithm.
///
/// The scheduler set is built fresh per point, NOT shared across the
/// run: the matching schedulers retain their last plan and replan
/// same-dimension matrices incrementally, which is exact but — on
/// tied instances — can pick a different equally-optimal matching
/// than a cold build. A shared set would make results depend on which
/// matrices each worker happened to see, breaking the thread-count
/// invariance this engine guarantees.
fn evaluate_point(point: &SweepPoint, cfg: GeneratorConfig) -> InstanceResult {
    let schedulers = all_schedulers();
    let inst = point.scenario.instance_with(point.p, point.seed, cfg);
    InstanceResult {
        point: *point,
        lower_bound_ms: inst.matrix.lower_bound().as_ms(),
        completions_ms: schedulers
            .iter()
            .map(|s| (s.name(), s.schedule(&inst.matrix).completion_time().as_ms()))
            .collect(),
    }
}

/// Per-scheduler accumulator state within [`SweepStats`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SchedulerAccum {
    /// Σ completion / lower-bound over observed instances.
    pub ratio_sum: f64,
    /// Worst (largest) observed ratio.
    pub ratio_worst: f64,
    /// Σ completion time (ms).
    pub completion_sum_ms: f64,
}

/// Mergeable per-scheduler lb-ratio statistics over a set of instances.
///
/// `observe` folds instances one at a time; `merge` combines accumulators
/// built over disjoint chunks. Sums are plain `f64` additions, so for
/// bit-reproducible output fold (or merge) in a deterministic order —
/// [`SweepRunner`] always hands results back in grid order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepStats {
    /// `(scheduler name, accumulator)` in first-observed order.
    pub per_scheduler: Vec<(&'static str, SchedulerAccum)>,
    /// Number of instances folded in.
    pub instances: usize,
    /// Σ lower bound (ms) over observed instances.
    pub lb_sum_ms: f64,
}

impl SweepStats {
    /// Folds one instance into the accumulator.
    pub fn observe(&mut self, r: &InstanceResult) {
        self.instances += 1;
        self.lb_sum_ms += r.lower_bound_ms;
        for &(name, completion) in &r.completions_ms {
            let ratio = completion / r.lower_bound_ms;
            let acc = self.entry(name);
            acc.ratio_sum += ratio;
            acc.ratio_worst = acc.ratio_worst.max(ratio);
            acc.completion_sum_ms += completion;
        }
    }

    /// Merges another accumulator (built over a disjoint instance set).
    pub fn merge(&mut self, other: &SweepStats) {
        self.instances += other.instances;
        self.lb_sum_ms += other.lb_sum_ms;
        for &(name, acc) in &other.per_scheduler {
            let mine = self.entry(name);
            mine.ratio_sum += acc.ratio_sum;
            mine.ratio_worst = mine.ratio_worst.max(acc.ratio_worst);
            mine.completion_sum_ms += acc.completion_sum_ms;
        }
    }

    fn entry(&mut self, name: &'static str) -> &mut SchedulerAccum {
        if let Some(k) = self.per_scheduler.iter().position(|&(n, _)| n == name) {
            return &mut self.per_scheduler[k].1;
        }
        self.per_scheduler.push((name, SchedulerAccum::default()));
        &mut self.per_scheduler.last_mut().expect("just pushed").1
    }

    /// Mean lb-ratio for one scheduler, if observed.
    pub fn mean_ratio(&self, name: &str) -> Option<f64> {
        self.accum(name)
            .map(|a| a.ratio_sum / self.instances as f64)
    }

    /// Worst lb-ratio for one scheduler, if observed.
    pub fn worst_ratio(&self, name: &str) -> Option<f64> {
        self.accum(name).map(|a| a.ratio_worst)
    }

    /// The accumulator for one scheduler, if observed.
    pub fn accum(&self, name: &str) -> Option<&SchedulerAccum> {
        self.per_scheduler
            .iter()
            .find(|&&(n, _)| n == name)
            .map(|(_, a)| a)
    }

    /// Renders the statistics table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# completion / lower-bound over {} instances\n{:>14} {:>10} {:>10}\n",
            self.instances, "algorithm", "mean", "worst"
        );
        for &(name, acc) in &self.per_scheduler {
            out.push_str(&format!(
                "{name:>14} {:>10.3} {:>10.3}\n",
                acc.ratio_sum / self.instances as f64,
                acc.ratio_worst
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> SweepGrid {
        SweepGrid {
            scenarios: vec![Scenario::Small, Scenario::Mixed],
            p_values: vec![5, 8],
            trials: 2,
            cfg: GeneratorConfig::default(),
            seed_fn: figure_seed,
        }
    }

    #[test]
    fn seeds_depend_only_on_grid_coordinates() {
        let grid = small_grid();
        let pts = grid.points();
        assert_eq!(pts.len(), grid.len());
        // Same coordinates → same seed, independent of position.
        let mut reversed = grid.clone();
        reversed.p_values.reverse();
        reversed.scenarios.reverse();
        for pt in &pts {
            let twin = reversed
                .points()
                .into_iter()
                .find(|q| {
                    q.scenario.name() == pt.scenario.name() && q.p == pt.p && q.trial == pt.trial
                })
                .unwrap();
            assert_eq!(twin.seed, pt.seed);
        }
    }

    #[test]
    fn results_are_bit_identical_for_every_thread_count() {
        let grid = small_grid();
        let serial = SweepRunner::serial().run(&grid);
        for threads in [2, 4, 7] {
            let parallel = SweepRunner::new(threads).run(&grid);
            // `PartialEq` on f64 fields: exact bitwise agreement, not
            // approximate.
            assert_eq!(serial, parallel, "{threads}-thread run diverged");
        }
    }

    #[test]
    fn results_come_back_in_grid_order() {
        let grid = small_grid();
        let results = SweepRunner::new(3).run(&grid);
        let points = grid.points();
        assert_eq!(results.len(), points.len());
        for (r, pt) in results.iter().zip(&points) {
            assert_eq!(r.point, *pt);
        }
    }

    #[test]
    fn stats_fold_matches_merged_chunks() {
        let grid = small_grid();
        let results = SweepRunner::serial().run(&grid);
        let mut whole = SweepStats::default();
        for r in &results {
            whole.observe(r);
        }
        let (a, b) = results.split_at(results.len() / 2);
        let mut merged = SweepStats::default();
        for r in a {
            merged.observe(r);
        }
        let mut second = SweepStats::default();
        for r in b {
            second.observe(r);
        }
        merged.merge(&second);
        assert_eq!(merged.instances, whole.instances);
        for &(name, acc) in &whole.per_scheduler {
            let m = merged.accum(name).unwrap();
            assert!((m.ratio_sum - acc.ratio_sum).abs() < 1e-9);
            assert_eq!(m.ratio_worst, acc.ratio_worst);
            assert!((m.completion_sum_ms - acc.completion_sum_ms).abs() < 1e-6);
        }
    }

    #[test]
    fn ratios_are_at_least_one() {
        let grid = SweepGrid::summary(&[6], 1);
        let stats = SweepRunner::new(2).stats(&grid);
        assert_eq!(stats.instances, grid.len());
        for &(name, _) in &stats.per_scheduler {
            assert!(
                stats.mean_ratio(name).unwrap() >= 1.0 - 1e-9,
                "{name} beat the lower bound"
            );
            assert!(stats.worst_ratio(name).unwrap() >= stats.mean_ratio(name).unwrap() - 1e-9);
        }
        let text = stats.render();
        assert!(text.contains("openshop"));
    }

    #[test]
    fn runner_constructors() {
        assert_eq!(SweepRunner::new(0).threads(), 1);
        assert_eq!(SweepRunner::serial().threads(), 1);
        assert!(SweepRunner::auto().threads() >= 1);
        assert!(!small_grid().is_empty());
    }
}

//! The scheduler-construction perf gate.
//!
//! ```text
//! perfgate [--quick | --check-history] [--baseline <path>] [--out <path>]
//!          [--factor <F>] [--history <path>] [--threads <N>] [--obs <dir>]
//! ```
//!
//! Times the construction cost (`Scheduler::send_order`) of all five
//! paper schedulers on GUSTO-guided Figure-10 instances, plus the
//! plan-server round trip at `P = 64` split by cache disposition
//! (`plansrv-cold` / `plansrv-hit` / `plansrv-warm`), plus an
//! `obs-overhead` cell (the `P = 256` matching-max replay with the
//! observability registry and flight recorder recording — the
//! enabled-path tax, gated like any other cell), plus an
//! `explain-overhead` cell (the causal analyzer — DAG, critical path,
//! blame, top-5 what-ifs — over a realized `P = 256` run), and reports
//! median/p90 wall milliseconds per `(scheduler, P)` cell:
//!
//! * **Full mode** (default): `P ∈ {64, 128, 256, 512, 1024}`, 5 timed
//!   repetitions after one warm-up, written to `BENCH_sched.json`
//!   (schema `scheduler → P → {median_ms, p90_ms, reps}`). Also times
//!   the retained cold-per-round reference for matching-max at `P = 512`
//!   and prints the warm-start speedup.
//! * **Quick mode** (`--quick`, the CI smoke step): `P ∈ {64, 128,
//!   256}`, 1 repetition after the same untimed warm-up (so matching
//!   cells time the retained-plan replay, like the committed baseline),
//!   no file output. Each measured median must stay
//!   within `--factor` (default 10×) of the committed baseline's median;
//!   any violation fails the process. The wide factor absorbs CI machine
//!   jitter while still catching accidental big-O regressions (the
//!   linear-scan open shop it guards against was ~40× slower at
//!   `P = 256`).
//!
//! Full mode also appends a dated record (`{"ts_unix", "mode",
//! "report"}`) to `--history` (default `BENCH_history.jsonl`), so
//! `BENCH_sched.json` stays "latest" while the JSONL keeps the trend.
//!
//! **History mode** (`--check-history`): runs no benchmarks at all.
//! Parses the `--history` file and compares the latest full-mode
//! record against the median of all prior full-mode records, failing
//! on any `(scheduler, P)` cell whose median regressed by more than
//! `--factor` (default 1.25×, i.e. 25 %). With fewer than two full
//! records it reports "nothing to compare yet" and passes — the gate
//! arms itself as the trend file grows. It then checks the latest full
//! record against the committed `"targets"` block in `--baseline`
//! (absolute ms budgets per `(scheduler, P)`) — the improvement
//! ratchet that keeps sub-second matching at `P = 1024` from rotting
//! back toward the pre-parallel cost, which a purely relative trend
//! gate would let creep through. Full runs carry targets forward into
//! the rewritten baseline, so rebaselining never drops the ratchet.
//!
//! `--threads <N>` (default 1) runs the matching schedulers' LAP
//! solves on N workers. Plans are bit-identical at any thread count,
//! so this only moves construction latency; CI runs `--quick
//! --threads 2` so the parallel path is exercised on every push.
//!
//! `--obs <dir>` adds an untimed instrumentation pass after the
//! measurements: each `(scheduler, P)` cell runs once with the global
//! observability registry enabled and dumps a Chrome trace to
//! `<dir>/trace_<scheduler>_P<p>.json`. The pass is separate from the
//! timing loops — and quick mode asserts the registry is disabled
//! before timing — so the gate always measures the uninstrumented cost.
//!
//! Seeds are fixed per `P`, so every run times the same instances.

use adaptcomm_bench::perf::{check_history, parse_history, HistoryCheck, PerfReport, PerfStats};
use adaptcomm_core::algorithms::{all_schedulers_threaded, reference, MatchingKind};
use adaptcomm_workloads::Scenario;
use std::time::Instant;

const FULL_P: [usize; 5] = [64, 128, 256, 512, 1024];
const QUICK_P: [usize; 3] = [64, 128, 256];
const FULL_REPS: usize = 5;

struct Options {
    quick: bool,
    check_history: bool,
    baseline: String,
    out: String,
    /// `None` = the mode's default: 10× for `--quick` (absorbs CI
    /// jitter), 1.25× for `--check-history` (full-mode medians are
    /// stable enough to gate tightly).
    factor: Option<f64>,
    history: String,
    obs_dir: Option<String>,
    /// Worker threads for the matching schedulers' LAP solves. Plans
    /// are bit-identical at any count, so this is purely a latency
    /// knob — CI runs `--quick --threads 2` to keep the parallel path
    /// exercised.
    threads: usize,
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        check_history: false,
        baseline: "BENCH_sched.json".to_string(),
        out: "BENCH_sched.json".to_string(),
        factor: None,
        history: "BENCH_history.jsonl".to_string(),
        obs_dir: None,
        threads: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--check-history" => opts.check_history = true,
            "--baseline" => opts.baseline = take("--baseline"),
            "--out" => opts.out = take("--out"),
            "--history" => opts.history = take("--history"),
            "--obs" => opts.obs_dir = Some(take("--obs")),
            "--factor" => {
                opts.factor = Some(take("--factor").parse().unwrap_or_else(|_| {
                    eprintln!("--factor needs a number");
                    std::process::exit(2);
                }))
            }
            "--threads" => {
                opts.threads = take("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                });
                if opts.threads == 0 {
                    eprintln!("--threads must be at least 1");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("unrecognized argument: {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// The benchmark instance for processor count `p`: the Figure-10
/// workload (uniform 1 MB messages — every pair matters) on a
/// GUSTO-guided random network with a `P`-derived fixed seed.
fn instance_matrix(p: usize) -> adaptcomm_core::matrix::CommMatrix {
    Scenario::Large.instance(p, 42 + p as u64).matrix
}

/// Times one closure, returning (wall ms, an anti-DCE token).
fn time_one<F: FnMut() -> usize>(mut f: F) -> (f64, usize) {
    let clock = Instant::now();
    let token = f();
    (clock.elapsed().as_secs_f64() * 1e3, token)
}

/// The untimed `--obs` pass: one instrumented construction per
/// `(scheduler, P)` cell, each dumped as its own Chrome trace.
fn obs_pass(dir: &str, p_values: &[usize], threads: usize) {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
        eprintln!("cannot create {dir}: {e}");
        std::process::exit(2);
    });
    let obs = adaptcomm_obs::global();
    for &p in p_values {
        let matrix = instance_matrix(p);
        for scheduler in all_schedulers_threaded(threads) {
            obs.clear();
            obs.set_enabled(true);
            let span = obs
                .span("schedule")
                .attr("algorithm", scheduler.name())
                .attr("p", p);
            let steps = scheduler.send_order(&matrix).order.len();
            span.attr("steps", steps).end();
            let snap = obs.snapshot();
            obs.set_enabled(false);
            let path = format!("{dir}/trace_{}_P{p}.json", scheduler.name());
            std::fs::write(&path, snap.to_chrome_trace()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            println!("obs: wrote {path}");
        }
    }
    obs.clear();
}

/// The `--check-history` entry point: a pure file check, no timing.
fn run_history_check(opts: &Options) {
    let factor = opts.factor.unwrap_or(1.25);
    let text = std::fs::read_to_string(&opts.history).unwrap_or_else(|e| {
        eprintln!("cannot read history {}: {e}", opts.history);
        std::process::exit(2);
    });
    let records = parse_history(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {}: {e}", opts.history);
        std::process::exit(2);
    });
    match check_history(&records, factor) {
        HistoryCheck::NotEnoughHistory { full_records } => {
            println!(
                "history gate: {} holds {full_records} full-mode record(s); \
                 nothing to compare yet",
                opts.history
            );
        }
        HistoryCheck::Compared { priors, violations } => {
            if violations.is_empty() {
                println!(
                    "history gate OK: latest full run within {factor}x of the \
                     median of {priors} prior full run(s)"
                );
            } else {
                for v in &violations {
                    eprintln!("history gate FAIL: {v}");
                }
                std::process::exit(1);
            }
        }
    }
    // The absolute ratchet: the latest full-mode record must also meet
    // every committed target in the baseline file (the trend gate above
    // only catches *relative* drift; a slow creep back toward the
    // pre-optimization cost would pass it run over run).
    let Some(latest) = records.iter().rev().find(|r| r.mode == "full") else {
        return;
    };
    let Ok(text) = std::fs::read_to_string(&opts.baseline) else {
        return; // no baseline file, no targets to enforce
    };
    let baseline = PerfReport::from_json(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse baseline {}: {e}", opts.baseline);
        std::process::exit(2);
    });
    let target_violations = baseline.check_targets(&latest.report);
    if target_violations.is_empty() {
        let n = baseline.targets().len();
        if n > 0 {
            println!("target gate OK: latest full run meets all {n} committed target(s)");
        }
    } else {
        for v in &target_violations {
            eprintln!("target gate FAIL: {v}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let opts = parse_args();
    if opts.check_history {
        run_history_check(&opts);
        return;
    }
    let p_values: &[usize] = if opts.quick { &QUICK_P } else { &FULL_P };
    let reps = if opts.quick { 1 } else { FULL_REPS };

    // The gate times the *uninstrumented* cost: recording must be off.
    // A relaxed load is all the disabled path ever pays.
    assert!(
        !adaptcomm_obs::global().is_enabled(),
        "observability registry must stay disabled during timing"
    );

    let mut report = PerfReport::new();
    let mut sink = 0usize; // keeps the timed work observable
    for &p in p_values {
        let matrix = instance_matrix(p);
        for scheduler in all_schedulers_threaded(opts.threads) {
            // One untimed warm-up to page in code and allocator state.
            // For the matching schedulers this is also the cold build:
            // the timed repetitions then measure the retained-plan
            // replay, the cost a steady-state caller actually pays —
            // in both modes, so quick runs gate against like-for-like
            // baseline cells.
            sink ^= scheduler.send_order(&matrix).order.len();
            let mut samples = Vec::with_capacity(reps);
            for _ in 0..reps {
                let (ms, token) = time_one(|| scheduler.send_order(&matrix).order.len());
                sink ^= token;
                samples.push(ms);
            }
            let stats = PerfStats::from_samples(&samples);
            println!(
                "{:<14} P={:<5} median {:>10.3} ms   p90 {:>10.3} ms   ({} reps)",
                scheduler.name(),
                p,
                stats.median_ms,
                stats.p90_ms,
                reps
            );
            report.insert(scheduler.name(), p, stats);
        }
    }

    // Scheduling-as-a-service round trips at P = 64, one cell per
    // cache disposition. These time the whole client path — frame
    // codec, TCP, admission, solve or replay — so a protocol or
    // cache regression shows up here even when the raw schedulers
    // above are unchanged.
    let srv = adaptcomm_bench::plansrv_bench::measure_plan_server(64, reps);
    for (name, samples) in [
        ("plansrv-cold", &srv.cold_ms),
        ("plansrv-hit", &srv.hit_ms),
        ("plansrv-warm", &srv.warm_ms),
    ] {
        let stats = PerfStats::from_samples(samples);
        println!(
            "{:<14} P={:<5} median {:>10.3} ms   p90 {:>10.3} ms   ({} reps)",
            name, 64, stats.median_ms, stats.p90_ms, reps
        );
        report.insert(name, 64, stats);
    }

    // The observability tax: the same matching-max replay as the
    // P = 256 cell above, but with the global registry recording a span
    // and the flight recorder taking a note per construction — the full
    // enabled-path cost. Gated like every other cell, so instrumentation
    // creeping from "a span and a ring write" into real work fails CI
    // the same way a scheduler regression would.
    {
        let p = 256;
        let matrix = instance_matrix(p);
        let scheduler = all_schedulers_threaded(opts.threads)
            .into_iter()
            .find(|s| s.name() == "matching-max")
            .expect("matching-max is always registered");
        let obs = adaptcomm_obs::global();
        obs.clear();
        obs.set_enabled(true);
        sink ^= scheduler.send_order(&matrix).order.len(); // instrumented warm-up
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let (ms, token) = time_one(|| {
                let span = obs.span("schedule").attr("algorithm", "matching-max");
                let steps = scheduler.send_order(&matrix).order.len();
                adaptcomm_obs::flight()
                    .note("perfgate.cell")
                    .attr("steps", steps)
                    .emit();
                span.attr("steps", steps).end();
                steps
            });
            sink ^= token;
            samples.push(ms);
        }
        obs.set_enabled(false);
        obs.clear();
        let stats = PerfStats::from_samples(&samples);
        println!(
            "{:<14} P={:<5} median {:>10.3} ms   p90 {:>10.3} ms   ({} reps)",
            "obs-overhead", p, stats.median_ms, stats.p90_ms, reps
        );
        report.insert("obs-overhead", p, stats);
    }

    // The explain-plane tax: the causal analyzer over a realized
    // P = 256 run (~65k transfers) — DAG construction, the critical
    // path, the blame table, and the top-5 what-if projections, i.e.
    // exactly what `adaptcomm explain` does to a capture. Gated like
    // every other cell, so "interactive on real captures" stays an
    // enforced property rather than an aspiration.
    {
        let p = 256;
        let matrix = instance_matrix(p);
        let scheduler = all_schedulers_threaded(opts.threads)
            .into_iter()
            .find(|s| s.name() == "matching-max")
            .expect("matching-max is always registered");
        let order = scheduler.send_order(&matrix);
        let schedule = adaptcomm_core::execution::execute_listed(&order, &matrix);
        let transfers: Vec<adaptcomm_obs::causal::Transfer> = schedule
            .events()
            .iter()
            .map(|e| adaptcomm_obs::causal::Transfer {
                src: e.src,
                dst: e.dst,
                start_ms: e.start.as_ms(),
                dur_ms: e.duration().as_ms(),
            })
            .collect();
        let analyze = |transfers: &[adaptcomm_obs::causal::Transfer]| {
            let dag = adaptcomm_obs::causal::CausalDag::new(transfers.to_vec());
            dag.critical_path().len() ^ dag.blame().links.len() ^ dag.interventions(2.0, 5).len()
        };
        sink ^= analyze(&transfers); // untimed warm-up
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let (ms, token) = time_one(|| analyze(&transfers));
            sink ^= token;
            samples.push(ms);
        }
        let stats = PerfStats::from_samples(&samples);
        println!(
            "{:<14} P={:<5} median {:>10.3} ms   p90 {:>10.3} ms   ({} reps)",
            "explain-overhead", p, stats.median_ms, stats.p90_ms, reps
        );
        report.insert("explain-overhead", p, stats);
    }

    if opts.quick {
        let text = std::fs::read_to_string(&opts.baseline).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {}: {e}", opts.baseline);
            std::process::exit(2);
        });
        let baseline = PerfReport::from_json(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse baseline {}: {e}", opts.baseline);
            std::process::exit(2);
        });
        let factor = opts.factor.unwrap_or(10.0);
        let violations = report.gate(&baseline, factor);
        if violations.is_empty() {
            println!(
                "perf gate OK: all cells within {factor}x of {}",
                opts.baseline
            );
        } else {
            for v in &violations {
                eprintln!("perf gate FAIL: {v}");
            }
            std::process::exit(1);
        }
    } else {
        // The headline comparison behind this gate: warm-started rounds
        // vs the retained cold-per-round reference at P = 512.
        let p = 512;
        let matrix = instance_matrix(p);
        let (cold_ms, token) =
            time_one(|| reference::matching_steps(MatchingKind::Max, &matrix).len());
        sink ^= token;
        let warm_ms = report
            .get("matching-max", p)
            .expect("P=512 was just measured")
            .median_ms;
        println!(
            "matching-max P={p}: cold reference {cold_ms:.1} ms vs warm {warm_ms:.1} ms -> {:.1}x",
            cold_ms / warm_ms
        );
        // Rebaselining must not drop the committed improvement targets:
        // carry them forward from the existing baseline file.
        if let Ok(text) = std::fs::read_to_string(&opts.baseline) {
            if let Ok(prior) = PerfReport::from_json(&text) {
                report.adopt_targets(&prior);
            }
        }
        for (name, tp, budget) in report.targets() {
            if let Some(stats) = report.get(&name, tp) {
                println!(
                    "target {name} P={tp}: measured {:.3} ms vs budget {budget:.3} ms{}",
                    stats.median_ms,
                    if stats.median_ms > budget {
                        "  ** OVER BUDGET **"
                    } else {
                        ""
                    }
                );
            }
        }
        std::fs::write(&opts.out, report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", opts.out);
            std::process::exit(2);
        });
        println!("wrote {}", opts.out);
        // The committed JSON is always "latest"; the JSONL keeps every
        // dated run so regressions can be traced back in time.
        let ts_unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let record = adaptcomm_bench::perf::history_record(ts_unix, "full", &report);
        adaptcomm_bench::perf::append_history(&opts.history, &record).unwrap_or_else(|e| {
            eprintln!("cannot append {}: {e}", opts.history);
            std::process::exit(2);
        });
        println!("appended {}", opts.history);
    }
    if let Some(dir) = &opts.obs_dir {
        obs_pass(dir, p_values, opts.threads);
    }
    // Defeat dead-code elimination of the timed closures.
    assert!(sink != usize::MAX);
}

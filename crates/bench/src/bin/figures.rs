//! Regenerates every table and figure of the paper.
//!
//! ```text
//! figures [--quick] [--table1] [--table2] [--fig9] [--fig10] [--fig11]
//!         [--fig12] [--fig12wide] [--thm2] [--thm3] [--summary]
//!         [--adaptivity] [--refine] [--incremental] [--staging]
//!         [--fluid] [--barrier] [--csv] [--all]
//!         [--threads <N>] [--serial]
//! ```
//!
//! With no selection flags, `--all` is assumed. `--quick` shrinks the
//! sweeps (fewer processor counts and trials) for CI-speed runs; `--csv`
//! emits machine-readable output after each rendered table.
//!
//! The figure and summary sweeps run on the parallel sweep engine;
//! `--threads N` pins the worker count and `--serial` forces the
//! single-threaded reference path. Per-instance seeds are derived from
//! grid coordinates, so every thread count prints identical tables.

use adaptcomm_bench::experiments::{
    adaptivity_study, barrier_ablation, check_figure_shape, render_gusto_tables, run_figure_on,
    summary_on, theorem2_series, theorem3_worst_ratio, DEFAULT_TRIALS, FIGURE_P_VALUES,
};
use adaptcomm_bench::sweep::SweepRunner;
use adaptcomm_model::generator::GeneratorConfig;
use adaptcomm_workloads::Scenario;
use std::time::Instant;

struct Options {
    quick: bool,
    csv: bool,
    selected: Vec<String>,
    threads: Option<usize>,
    serial: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        csv: false,
        selected: Vec::new(),
        threads: None,
        serial: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--csv" => opts.csv = true,
            "--serial" => opts.serial = true,
            "--threads" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--threads needs a positive integer");
                    std::process::exit(2);
                };
                opts.threads = Some(n);
            }
            "--all" => {}
            other if other.starts_with("--") => opts.selected.push(other[2..].to_string()),
            other => {
                eprintln!("unrecognized argument: {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    let want = |name: &str| opts.selected.is_empty() || opts.selected.iter().any(|s| s == name);
    let p_values: Vec<usize> = if opts.quick {
        vec![5, 10, 20, 30]
    } else {
        FIGURE_P_VALUES.to_vec()
    };
    let trials = if opts.quick { 2 } else { DEFAULT_TRIALS };
    let runner = if opts.serial {
        SweepRunner::serial()
    } else if let Some(n) = opts.threads {
        SweepRunner::new(n)
    } else {
        SweepRunner::auto()
    };
    let mut sweep_elapsed = std::time::Duration::ZERO;
    let mut sweep_instances = 0usize;

    if want("table1") || want("table2") {
        print!("{}", render_gusto_tables());
    }

    let figures = [
        ("fig9", Scenario::Small),
        ("fig10", Scenario::Large),
        ("fig11", Scenario::Mixed),
        ("fig12", Scenario::Servers),
    ];
    for (flag, scenario) in figures {
        if !want(flag) {
            continue;
        }
        let clock = Instant::now();
        let table = run_figure_on(
            scenario,
            &p_values,
            trials,
            GeneratorConfig::default(),
            &runner,
        );
        sweep_elapsed += clock.elapsed();
        sweep_instances += p_values.len() * trials as usize;
        print!("{}", table.render());
        if let Err(e) = check_figure_shape(&table) {
            println!("!! shape check failed: {e}");
        } else {
            println!("   shape check: OK (adaptive ≥ baseline, openshop near lb)");
        }
        if opts.csv {
            print!("{}", table.to_csv());
        }
        println!();
    }

    if want("fig12wide") {
        use adaptcomm_bench::experiments::improvement_factor;
        let clock = Instant::now();
        let table = run_figure_on(
            Scenario::Servers,
            &p_values,
            trials,
            GeneratorConfig::wide_area(),
            &runner,
        );
        sweep_elapsed += clock.elapsed();
        sweep_instances += p_values.len() * trials as usize;
        println!("# fig12 under the §3.2 wide heterogeneity range (56 kbit/s – 155 Mbit/s)");
        print!("{}", table.render());
        println!(
            "   aggregate baseline/openshop improvement: {:.2}x (paper: 2-5x)",
            improvement_factor(&table)
        );
        if opts.csv {
            print!("{}", table.to_csv());
        }
        println!();
    }

    if want("thm2") {
        println!("# Theorem 2 tightness: baseline ratio on the ε-instance (P=4, bound P/2 = 2)");
        println!("{:>12} {:>10}", "epsilon", "ratio");
        for (eps, ratio) in theorem2_series() {
            println!("{eps:>12.0e} {ratio:>10.5}");
        }
        println!();
    }

    if want("thm3") {
        let n = if opts.quick { 50 } else { 200 };
        let worst = theorem3_worst_ratio(n);
        println!("# Theorem 3: worst open shop completion / lower bound over {n} random instances");
        println!("{worst:.4}  (guarantee: ≤ 2)\n");
    }

    if want("summary") {
        let clock = Instant::now();
        let s = summary_on(&p_values, trials, &runner);
        sweep_elapsed += clock.elapsed();
        sweep_instances += s.instances;
        print!("{}", s.render());
        println!();
    }

    if sweep_instances > 0 {
        println!(
            "# sweep engine: {sweep_instances} instances in {:.2} s on {} thread(s)",
            sweep_elapsed.as_secs_f64(),
            runner.threads()
        );
        println!();
    }

    if want("adaptivity") {
        let trials = if opts.quick { 2 } else { 5 };
        println!(
            "# §6.3 checkpoint policies under a degrading network (P=12, mean over {trials} runs)"
        );
        println!("{:>12} {:>14} {:>12}", "policy", "makespan", "reschedules");
        for (name, makespan, reschedules) in adaptivity_study(12, trials) {
            println!(
                "{name:>12} {:>12.1}ms {reschedules:>12.1}",
                makespan.as_ms()
            );
        }
        println!();
    }

    if want("refine") {
        use adaptcomm_bench::experiments::refinement_study;
        let trials = if opts.quick { 2 } else { 5 };
        println!("# Refinement study: mean completion / lower bound (P=12, {trials} trials)");
        for (label, ratio) in refinement_study(12, trials) {
            println!("{label:>16} {ratio:>8.4}");
        }
        println!();
    }

    if want("incremental") {
        use adaptcomm_bench::experiments::incremental_study;
        let cycles = if opts.quick { 4 } else { 10 };
        println!("# §6.2 incremental scheduling over {cycles} drifting cycles (P=12)");
        println!(
            "{:>12} {:>14} {:>12}",
            "strategy", "mean ratio", "recomputes"
        );
        for (name, ratio, recomputes) in incremental_study(12, cycles, 5) {
            println!("{name:>12} {ratio:>14.4} {recomputes:>12}");
        }
        println!();
    }

    if want("staging") {
        use adaptcomm_bench::experiments::staging_study;
        println!("# Data staging: satisfaction vs deadline tightness (10-node WAN)");
        println!("{:>12} {:>12} {:>12}", "tightness", "satisfied", "weighted");
        for (tight, frac, weighted) in staging_study(7) {
            println!(
                "{tight:>12.1} {:>11.0}% {:>11.0}%",
                frac * 100.0,
                weighted * 100.0
            );
        }
        println!();
    }

    if want("fluid") {
        use adaptcomm_bench::experiments::fluid_gap_study;
        println!("# Flat cost model vs fluid topology ground truth (2 sites, shared WAN)");
        println!("{:>4} {:>14} {:>14} {:>8}", "P", "flat", "fluid", "ratio");
        for (p, flat, fluid) in fluid_gap_study(&[4, 8, 12, 16]) {
            println!(
                "{p:>4} {flat:>12.1}ms {fluid:>12.1}ms {:>8.3}",
                fluid / flat
            );
        }
        println!();
    }

    if want("barrier") {
        println!("# Ablation: ASAP vs barrier-synchronized execution of the matching schedule");
        println!("{:>4} {:>14} {:>14}", "P", "asap", "barrier");
        for (p, asap, barrier) in barrier_ablation(&p_values, trials) {
            println!(
                "{p:>4} {:>12.1}ms {:>12.1}ms",
                asap.as_ms(),
                barrier.as_ms()
            );
        }
        println!();
    }
}

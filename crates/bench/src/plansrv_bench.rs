//! Plan-server round-trip measurement: the cost of scheduling as a
//! service, split by cache disposition.
//!
//! One measurement spins a real [`adaptcomm_plansrv::PlanServer`] on
//! an ephemeral loopback port and times full client round-trips
//! (frame encode → TCP → admission → solve/replay → frame decode)
//! for the three paths a request can take:
//!
//! * **cold** — a matrix the server has never seen: full solve;
//! * **hit** — the identical matrix again: exact-fingerprint replay;
//! * **warm** — a ±2 % perturbed matrix: cross-job warm start from
//!   the cached job's retained dual potentials.
//!
//! Every sample asserts its disposition, so the three series measure
//! what they claim even if the cache policy changes underneath.

use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_plansrv::proto::{CacheDisposition, PlanOk, PlanResponse, QosSpec};
use adaptcomm_plansrv::{PlanClient, PlanServer, PlanServerConfig};
use adaptcomm_workloads::Scenario;
use std::time::Instant;

/// Round-trip wall-clock samples (milliseconds), one triple per rep.
#[derive(Debug, Clone, Default)]
pub struct PlanServerSamples {
    /// Full-solve round trips (first sight of each matrix).
    pub cold_ms: Vec<f64>,
    /// Exact-fingerprint replay round trips.
    pub hit_ms: Vec<f64>,
    /// Cross-job warm-start round trips (±2 % perturbed matrices).
    pub warm_ms: Vec<f64>,
}

fn expect_ok(resp: PlanResponse, what: &str) -> Box<PlanOk> {
    match resp {
        PlanResponse::Ok(ok) => ok,
        other => panic!("{what}: expected a plan, got {other:?}"),
    }
}

/// ±2 % deterministic perturbation with alternating signs.
fn perturb(m: &CommMatrix) -> CommMatrix {
    CommMatrix::from_fn(m.len(), |s, d| {
        let f = if (s + d) % 2 == 0 { 1.02 } else { 0.98 };
        if s == d {
            0.0
        } else {
            m.row(s)[d] * f
        }
    })
}

/// Measures `reps` cold/hit/warm round-trip triples against a live
/// plan server at processor count `p` (`matching-max` on Figure-11
/// mixed instances, a fresh seed per rep so every cold is cold).
pub fn measure_plan_server(p: usize, reps: usize) -> PlanServerSamples {
    let server =
        PlanServer::bind("127.0.0.1:0", PlanServerConfig::default()).expect("bind plan server");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");
    let mut samples = PlanServerSamples::default();

    for rep in 0..reps.max(1) {
        let matrix = Scenario::Mixed.instance(p, 9_000 + rep as u64).matrix;
        let near = perturb(&matrix);
        let mut timed = |m: &CommMatrix, want: CacheDisposition, what: &str| {
            let clock = Instant::now();
            let ok = expect_ok(
                client
                    .plan("bench", "matching-max", m, QosSpec::default())
                    .expect("round trip"),
                what,
            );
            let ms = clock.elapsed().as_secs_f64() * 1e3;
            assert_eq!(ok.cache, want, "{what}: wrong cache disposition");
            ms
        };
        samples
            .cold_ms
            .push(timed(&matrix, CacheDisposition::Cold, "cold"));
        samples
            .hit_ms
            .push(timed(&matrix, CacheDisposition::Hit, "hit"));
        samples
            .warm_ms
            .push(timed(&near, CacheDisposition::Warm, "warm"));
    }

    drop(client);
    server.shutdown();
    samples
}

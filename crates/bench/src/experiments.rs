//! The experiments of §5, plus the §6 extension studies.

use crate::sweep::{SweepGrid, SweepRunner};
use adaptcomm_core::algorithms::{all_schedulers, Scheduler};
use adaptcomm_core::bounds;
use adaptcomm_core::checkpointed::{CheckpointPolicy, RescheduleRule};
use adaptcomm_core::depgraph;
use adaptcomm_core::execution::execute_steps;
use adaptcomm_core::schedule::SendOrder;
use adaptcomm_model::generator::GeneratorConfig;
use adaptcomm_model::units::Millis;
use adaptcomm_model::variation::{VariationConfig, VariationTrace};
use adaptcomm_sim::dynamic::{run_adaptive, AdaptiveConfig};
use adaptcomm_workloads::Scenario;

/// Processor counts used for the figure sweeps ("Systems with up to 50
/// processors were considered").
pub const FIGURE_P_VALUES: [usize; 10] = [5, 10, 15, 20, 25, 30, 35, 40, 45, 50];

/// Trials (random network draws) per data point.
pub const DEFAULT_TRIALS: u64 = 5;

/// One data point of a figure: mean completion time per algorithm at a
/// given processor count.
#[derive(Debug, Clone)]
pub struct FigureRow {
    /// Number of processors.
    pub p: usize,
    /// `(algorithm name, mean completion)` in scheduler order.
    pub completions: Vec<(&'static str, Millis)>,
    /// Mean lower bound across trials.
    pub lower_bound: Millis,
}

/// A full figure: one row per processor count.
#[derive(Debug, Clone)]
pub struct FigureTable {
    /// Which scenario the figure shows.
    pub scenario: Scenario,
    /// The data rows.
    pub rows: Vec<FigureRow>,
}

impl FigureTable {
    /// Renders the table as aligned text matching the figure's series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let names: Vec<&str> = self
            .rows
            .first()
            .map(|r| r.completions.iter().map(|&(n, _)| n).collect())
            .unwrap_or_default();
        out.push_str(&format!("# {}\n", self.scenario.name()));
        out.push_str(&format!("{:>4} ", "P"));
        for n in &names {
            out.push_str(&format!("{n:>14} "));
        }
        out.push_str(&format!("{:>14}\n", "lower-bound"));
        for r in &self.rows {
            out.push_str(&format!("{:>4} ", r.p));
            for &(_, t) in &r.completions {
                out.push_str(&format!("{:>12.1}ms ", t.as_ms()));
            }
            out.push_str(&format!("{:>12.1}ms\n", r.lower_bound.as_ms()));
        }
        out
    }

    /// Renders the table as CSV (`p,alg1,...,lower_bound`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let names: Vec<&str> = self
            .rows
            .first()
            .map(|r| r.completions.iter().map(|&(n, _)| n).collect())
            .unwrap_or_default();
        out.push_str("p,");
        out.push_str(&names.join(","));
        out.push_str(",lower_bound\n");
        for r in &self.rows {
            out.push_str(&format!("{}", r.p));
            for &(_, t) in &r.completions {
                out.push_str(&format!(",{:.3}", t.as_ms()));
            }
            out.push_str(&format!(",{:.3}\n", r.lower_bound.as_ms()));
        }
        out
    }
}

/// Runs one figure sweep: for each `P`, average completion per algorithm
/// over `trials` random GUSTO-guided networks.
pub fn run_figure(scenario: Scenario, p_values: &[usize], trials: u64) -> FigureTable {
    run_figure_with(scenario, p_values, trials, GeneratorConfig::default())
}

/// [`run_figure`] with a custom network-generator configuration, e.g.
/// [`GeneratorConfig::wide_area`] for the §3.2 heterogeneity range.
pub fn run_figure_with(
    scenario: Scenario,
    p_values: &[usize],
    trials: u64,
    cfg: GeneratorConfig,
) -> FigureTable {
    run_figure_on(scenario, p_values, trials, cfg, &SweepRunner::default())
}

/// [`run_figure_with`] on an explicit [`SweepRunner`] (thread count under
/// caller control; `SweepRunner::serial()` is the reference path).
pub fn run_figure_on(
    scenario: Scenario,
    p_values: &[usize],
    trials: u64,
    cfg: GeneratorConfig,
    runner: &SweepRunner,
) -> FigureTable {
    assert!(trials >= 1, "a figure needs at least one trial per point");
    let grid = SweepGrid::figure(scenario, p_values, trials, cfg);
    let results = runner.run(&grid);
    // Results arrive in grid order (P-major, then trial), so chunking by
    // trial count rebuilds each row's sums in the exact order the old
    // serial loop accumulated them.
    let rows = p_values
        .iter()
        .zip(results.chunks(trials as usize))
        .map(|(&p, chunk)| {
            let schedulers = all_schedulers();
            let mut sums = vec![0.0f64; schedulers.len()];
            let mut lb_sum = 0.0f64;
            for r in chunk {
                debug_assert_eq!(r.point.p, p);
                lb_sum += r.lower_bound_ms;
                for (k, &(_, t)) in r.completions_ms.iter().enumerate() {
                    sums[k] += t;
                }
            }
            FigureRow {
                p,
                completions: schedulers
                    .iter()
                    .enumerate()
                    .map(|(k, s)| (s.name(), Millis::new(sums[k] / trials as f64)))
                    .collect(),
                lower_bound: Millis::new(lb_sum / trials as f64),
            }
        })
        .collect();
    FigureTable { scenario, rows }
}

/// The baseline-vs-best improvement factor of a figure, aggregated over
/// the sweep: `Σ baseline / Σ openshop`. The paper's Figure-12 headline
/// ("2 to 5 times faster than the baseline") corresponds to this factor
/// on the server scenario under wide heterogeneity.
pub fn improvement_factor(table: &FigureTable) -> f64 {
    let mut baseline = 0.0;
    let mut openshop = 0.0;
    for r in &table.rows {
        for &(n, t) in &r.completions {
            match n {
                "baseline" => baseline += t.as_ms(),
                "openshop" => openshop += t.as_ms(),
                _ => {}
            }
        }
    }
    baseline / openshop
}

/// Aggregate lb-ratio statistics per algorithm over a set of instances —
/// the §5 headline numbers ("The open shop algorithm finds schedules that
/// are very close to the lower bound, often within 2%, and always within
/// 10%...").
#[derive(Debug, Clone)]
pub struct SummaryStats {
    /// `(algorithm, mean ratio, worst ratio)`.
    pub ratios: Vec<(&'static str, f64, f64)>,
    /// Number of instances aggregated.
    pub instances: usize,
}

impl SummaryStats {
    /// Renders the summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# completion / lower-bound over {} instances\n{:>14} {:>10} {:>10}\n",
            self.instances, "algorithm", "mean", "worst"
        ));
        for &(name, mean, worst) in &self.ratios {
            out.push_str(&format!("{name:>14} {mean:>10.3} {worst:>10.3}\n"));
        }
        out
    }
}

/// Computes lb-ratio statistics over every figure scenario.
pub fn summary(p_values: &[usize], trials: u64) -> SummaryStats {
    summary_on(p_values, trials, &SweepRunner::default())
}

/// [`summary`] on an explicit [`SweepRunner`].
pub fn summary_on(p_values: &[usize], trials: u64, runner: &SweepRunner) -> SummaryStats {
    let stats = runner.stats(&SweepGrid::summary(p_values, trials));
    SummaryStats {
        ratios: stats
            .per_scheduler
            .iter()
            .map(|&(name, acc)| {
                (
                    name,
                    acc.ratio_sum / stats.instances as f64,
                    acc.ratio_worst,
                )
            })
            .collect(),
        instances: stats.instances,
    }
}

/// Theorem-2 demonstration data: the tightness instance ratio as ε → 0.
pub fn theorem2_series() -> Vec<(f64, f64)> {
    [1e-1, 1e-2, 1e-3, 1e-6]
        .iter()
        .map(|&eps| {
            let m = bounds::theorem2_tightness_instance(eps);
            let t = depgraph::baseline_step_ordered_completion(&m);
            (eps, t.as_ms() / m.lower_bound().as_ms())
        })
        .collect()
}

/// Theorem-3 demonstration data: worst observed open shop ratio over
/// random instances (must stay ≤ 2).
pub fn theorem3_worst_ratio(instances: u64) -> f64 {
    let mut worst: f64 = 0.0;
    for seed in 0..instances {
        let inst = Scenario::Mixed.instance(10 + (seed as usize % 30), seed);
        let s = adaptcomm_core::algorithms::OpenShop.schedule(&inst.matrix);
        worst = worst.max(s.lb_ratio());
    }
    worst
}

/// Barrier ablation: mean ASAP vs barrier completion for the matching
/// schedule across trials. Returns `(asap_mean, barrier_mean)` at each P.
pub fn barrier_ablation(p_values: &[usize], trials: u64) -> Vec<(usize, Millis, Millis)> {
    use adaptcomm_core::algorithms::{MatchingKind, MatchingScheduler};
    let sched = MatchingScheduler::new(MatchingKind::Max);
    p_values
        .iter()
        .map(|&p| {
            let mut asap = 0.0;
            let mut barrier = 0.0;
            for trial in 0..trials {
                let inst = Scenario::Mixed.instance(p, trial * 31 + p as u64);
                let steps = sched.steps(&inst.matrix);
                let order = SendOrder::from_steps(p, &steps);
                asap += adaptcomm_core::execution::execute_listed(&order, &inst.matrix)
                    .completion_time()
                    .as_ms();
                barrier += execute_steps(&steps, &inst.matrix)
                    .completion_time()
                    .as_ms();
            }
            (
                p,
                Millis::new(asap / trials as f64),
                Millis::new(barrier / trials as f64),
            )
        })
        .collect()
}

/// §6.3 adaptivity study: mean makespan under a degrading network for
/// each checkpoint policy. Returns `(policy name, mean makespan, mean
/// reschedules)`.
pub fn adaptivity_study(p: usize, trials: u64) -> Vec<(&'static str, Millis, f64)> {
    let policies: [(&'static str, CheckpointPolicy); 3] = [
        ("never", CheckpointPolicy::Never),
        ("halving", CheckpointPolicy::Halving),
        ("every-event", CheckpointPolicy::EveryEvent),
    ];
    let mut out = Vec::new();
    for (name, policy) in policies {
        let mut makespan_sum = 0.0;
        let mut resched_sum = 0.0;
        for trial in 0..trials {
            let inst = Scenario::Large.instance(p, trial * 131 + 7);
            let order = adaptcomm_core::algorithms::OpenShop.send_order(&inst.matrix);
            let cfg = VariationConfig {
                step: Millis::new(2_000.0),
                volatility: 0.30,
                floor: 0.05,
                ceil: 1.0, // degradation-only drift
            };
            let mut trace = VariationTrace::new(inst.network.clone(), cfg, trial * 17 + 3);
            let sizes = inst.sizes.to_rows();
            let outcome = run_adaptive(
                &order,
                &sizes,
                &mut trace,
                &AdaptiveConfig {
                    policy,
                    rule: RescheduleRule {
                        deviation_threshold: 0.10,
                    },
                    replanner: adaptcomm_sim::dynamic::Replanner::OpenShop,
                },
            );
            makespan_sum += outcome.makespan.as_ms();
            resched_sum += outcome.reschedules as f64;
        }
        out.push((
            name,
            Millis::new(makespan_sum / trials as f64),
            resched_sum / trials as f64,
        ));
    }
    out
}

/// Refinement study: how much do the local-search refiners recover over
/// the one-pass heuristics? Returns `(label, mean lb-ratio)` rows.
pub fn refinement_study(p: usize, trials: u64) -> Vec<(&'static str, f64)> {
    use adaptcomm_core::algorithms::{Greedy, RandomOrder, Scheduler};
    use adaptcomm_core::anneal::{anneal, AnnealConfig};
    use adaptcomm_core::execution::execute_listed;
    use adaptcomm_core::improve::{improve, ImproveConfig};

    let mut sums = [0.0f64; 5];
    for trial in 0..trials {
        let inst = Scenario::Mixed.instance(p, trial * 211 + 13);
        let lb = inst.matrix.lower_bound().as_ms();
        let random = RandomOrder::new(trial).send_order(&inst.matrix);
        let greedy = Greedy.send_order(&inst.matrix);
        sums[0] += execute_listed(&random, &inst.matrix)
            .completion_time()
            .as_ms()
            / lb;
        sums[1] += improve(&random, &inst.matrix, ImproveConfig::default()).after / lb;
        sums[2] += execute_listed(&greedy, &inst.matrix)
            .completion_time()
            .as_ms()
            / lb;
        sums[3] += improve(&greedy, &inst.matrix, ImproveConfig::default()).after / lb;
        sums[4] += anneal(
            &greedy,
            &inst.matrix,
            AnnealConfig {
                iterations: 1_500,
                seed: trial,
                ..Default::default()
            },
        )
        .after
            / lb;
    }
    let labels = [
        "random",
        "random+climb",
        "greedy",
        "greedy+climb",
        "greedy+anneal",
    ];
    labels
        .iter()
        .zip(sums)
        .map(|(&l, s)| (l, s / trials as f64))
        .collect()
}

/// §6.2 incremental-scheduling study: a recurring exchange over a
/// drifting directory, comparing (a) full recompute each cycle, (b) the
/// threshold-based incremental scheduler, and (c) never updating the
/// order. Returns `(strategy, mean lb-ratio, full recomputes)`.
pub fn incremental_study(p: usize, cycles: usize, seed: u64) -> Vec<(&'static str, f64, usize)> {
    use adaptcomm_core::algorithms::{OpenShop, Scheduler};
    use adaptcomm_core::execution::execute_listed;
    use adaptcomm_core::incremental::{IncrementalConfig, IncrementalScheduler};
    use adaptcomm_core::matrix::CommMatrix;
    use adaptcomm_workloads::SizeMatrix;

    let inst = Scenario::Large.instance(p, seed);
    let sizes = SizeMatrix::uniform(p, adaptcomm_model::units::Bytes::MB).to_rows();
    // Gentle drift: a few percent per step so consecutive cycles land in
    // the incremental scheduler's repair band rather than forcing full
    // recomputes every time.
    let cfg = VariationConfig {
        step: Millis::new(2_000.0),
        volatility: 0.05,
        floor: 0.2,
        ceil: 3.0,
    };

    // The cycle matrices, shared by all strategies.
    let mut trace = VariationTrace::new(inst.network.clone(), cfg, seed * 3 + 1);
    let matrices: Vec<CommMatrix> = (1..=cycles)
        .map(|c| {
            let snap = trace.snapshot_at(Millis::new(c as f64 * 10_000.0));
            CommMatrix::from_model(&snap, &sizes)
        })
        .collect();

    let initial = CommMatrix::from_model(&inst.network, &sizes);
    let mut results = Vec::new();

    // (a) full recompute each cycle.
    let mut ratio_sum = 0.0;
    for m in &matrices {
        ratio_sum += OpenShop.schedule(m).completion_time().as_ms() / m.lower_bound().as_ms();
    }
    results.push(("recompute", ratio_sum / cycles as f64, cycles));

    // (b) incremental, both repair strategies.
    for (label, repair) in [
        (
            "inc-resort",
            adaptcomm_core::incremental::RepairStrategy::Resort,
        ),
        (
            "inc-search",
            adaptcomm_core::incremental::RepairStrategy::LocalSearch { max_moves: 150 },
        ),
    ] {
        let cfg = IncrementalConfig {
            repair,
            ..Default::default()
        };
        let mut inc = IncrementalScheduler::new(OpenShop, cfg, initial.clone());
        let mut ratio_sum = 0.0;
        for m in &matrices {
            let (sched, _) = inc.update(m.clone());
            ratio_sum += sched.completion_time().as_ms() / m.lower_bound().as_ms();
        }
        let (_, _, recomputes) = inc.stats();
        results.push((label, ratio_sum / cycles as f64, recomputes - 1));
    }

    // (c) frozen initial order.
    let frozen = OpenShop.send_order(&initial);
    let mut ratio_sum = 0.0;
    for m in &matrices {
        ratio_sum += execute_listed(&frozen, m).completion_time().as_ms() / m.lower_bound().as_ms();
    }
    results.push(("frozen", ratio_sum / cycles as f64, 0));

    results
}

/// Data-staging study: request satisfaction vs deadline tightness on a
/// random theater WAN. Returns `(tightness multiplier, satisfied
/// fraction, weighted satisfaction)` rows; looser deadlines must satisfy
/// at least as much.
pub fn staging_study(seed: u64) -> Vec<(f64, f64, f64)> {
    use adaptcomm_model::cost::LinkEstimate;
    use adaptcomm_model::units::{Bandwidth, Bytes};
    use adaptcomm_staging::{
        schedule_staging, DataItem, LinkGraph, NodeId, Request, StagingProblem,
    };

    let nodes = 10usize;
    let build_graph = || {
        let mut g = LinkGraph::new(nodes);
        for i in 0..nodes {
            let e = LinkEstimate::new(
                Millis::new(((seed + i as u64 * 7) % 60 + 10) as f64),
                Bandwidth::from_kbps(((seed + i as u64 * 13) % 3_000 + 300) as f64),
            );
            g.add_bidi(NodeId(i), NodeId((i + 1) % nodes), e);
        }
        // Two cross-links.
        let x = LinkEstimate::new(Millis::new(30.0), Bandwidth::from_kbps(2_000.0));
        g.add_bidi(NodeId(0), NodeId(nodes / 2), x);
        g.add_bidi(NodeId(2), NodeId(7), x);
        g
    };

    let mut out = Vec::new();
    for tightness in [0.5f64, 1.0, 2.0, 8.0] {
        let mut problem = StagingProblem::new();
        for id in 0..4 {
            problem.add_item(DataItem {
                id,
                size: Bytes::from_kb(((seed + id as u64 * 31) % 400 + 50) * 2),
                sources: vec![NodeId(id % nodes)],
            });
        }
        for r in 0..12u64 {
            problem.add_request(Request {
                item: (r % 4) as usize,
                destination: NodeId(((seed + r * 3 + 1) % nodes as u64) as usize),
                deadline: Millis::new(((seed + r * 17) % 20_000 + 2_000) as f64 * tightness),
                priority: ((seed + r) % 10) as u8,
            });
        }
        let mut graph = build_graph();
        let outcome = schedule_staging(&mut graph, &problem);
        out.push((
            tightness,
            outcome.satisfied() as f64 / problem.requests().len() as f64,
            outcome.weighted_satisfaction(),
        ));
    }
    out
}

/// Flat-model error study: the framework's `T_ij + m/B_ij` abstraction
/// vs. the fluid topology ground truth (equal-share link division, §3.1)
/// on a two-site metacomputing system. Returns
/// `(P, flat makespan ms, fluid makespan ms)` — the ratio is the price
/// of flattening when a schedule's concurrent transfers share the WAN.
pub fn fluid_gap_study(p_values: &[usize]) -> Vec<(usize, f64, f64)> {
    use adaptcomm_core::algorithms::{OpenShop, Scheduler};
    use adaptcomm_core::matrix::CommMatrix;
    use adaptcomm_model::topology::Topology;
    use adaptcomm_model::units::{Bandwidth, Bytes};
    use adaptcomm_sim::fluid::run_fluid;
    use adaptcomm_sim::run_static;

    p_values
        .iter()
        .map(|&p| {
            assert!(p >= 2 && p % 2 == 0, "use even P for the two-site layout");
            let topo = Topology::uniform(
                2,
                p / 2,
                (Millis::new(1.0), Bandwidth::from_mbps(100.0)),
                (Millis::new(25.0), Bandwidth::from_mbps(2.0)),
            );
            let flat = topo.to_net_params();
            let sizes: Vec<Vec<Bytes>> = (0..p)
                .map(|s| {
                    (0..p)
                        .map(|d| {
                            if s == d {
                                Bytes::ZERO
                            } else {
                                Bytes::from_kb(200)
                            }
                        })
                        .collect()
                })
                .collect();
            let matrix = CommMatrix::from_model(&flat, &sizes);
            let order = OpenShop.send_order(&matrix);
            let flat_ms = run_static(&order, &flat, &sizes).makespan.as_ms();
            let fluid_ms = run_fluid(&topo, &order, &sizes).makespan.as_ms();
            (p, flat_ms, fluid_ms)
        })
        .collect()
}

/// Renders Tables 1 and 2 (the embedded GUSTO data).
pub fn render_gusto_tables() -> String {
    use adaptcomm_model::gusto::{bandwidth_kbps, latency_ms, Site};
    let mut out = String::new();
    for (title, cell) in [
        ("Table 1: Latency (ms) between 5 GUSTO sites", true),
        ("Table 2: Bandwidth (kbits/s) between 5 GUSTO sites", false),
    ] {
        out.push_str(&format!("# {title}\n{:>9}", ""));
        for s in Site::ALL {
            out.push_str(&format!("{:>9}", s.name()));
        }
        out.push('\n');
        for a in Site::ALL {
            out.push_str(&format!("{:>9}", a.name()));
            for b in Site::ALL {
                if a == b {
                    out.push_str(&format!("{:>9}", "-"));
                } else if cell {
                    out.push_str(&format!("{:>9.1}", latency_ms(a.index(), b.index())));
                } else {
                    out.push_str(&format!("{:>9.0}", bandwidth_kbps(a.index(), b.index())));
                }
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Verifies the reproduction of a figure's *shape* — the paper's
/// qualitative claims, not its absolute numbers:
///
/// * the open shop heuristic wins on aggregate and stays near the lower
///   bound ("often within 2%, and always within 10%" on the authors'
///   draws; we allow a wider band for ours);
/// * max matching is at least competitive with the baseline on aggregate;
/// * on the server scenario (Figure 12) the baseline loses *big* — the
///   paper reports 2–5× there.
///
/// Per-P noise at small `P` is expected (with near-uniform small messages
/// the caterpillar is almost optimal), so aggregates over the sweep are
/// compared. Returns an error string when a claim is violated.
pub fn check_figure_shape(table: &FigureTable) -> Result<(), String> {
    let mut total: std::collections::HashMap<&str, f64> = Default::default();
    let mut lb_total = 0.0;
    for r in &table.rows {
        lb_total += r.lower_bound.as_ms();
        for &(n, t) in &r.completions {
            *total.entry(n).or_default() += t.as_ms();
        }
    }
    let baseline = total["baseline"];
    let openshop = total["openshop"];
    let matching = total["matching-max"];
    if openshop > baseline * 1.02 {
        return Err(format!(
            "{}: openshop ({openshop:.0}) should beat baseline ({baseline:.0}) on aggregate",
            table.scenario.name()
        ));
    }
    if matching > baseline * 1.10 {
        return Err(format!(
            "{}: matching-max ({matching:.0}) should be competitive with baseline ({baseline:.0})",
            table.scenario.name()
        ));
    }
    if openshop > lb_total * 1.30 {
        return Err(format!(
            "{}: openshop ({openshop:.0}) strays too far from the lower bound ({lb_total:.0})",
            table.scenario.name()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_runs_produce_full_tables() {
        let t = run_figure(Scenario::Small, &[5, 10], 2);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0].completions.len(), 5);
        let text = t.render();
        assert!(text.contains("baseline"));
        assert!(text.contains("openshop"));
        let csv = t.to_csv();
        assert!(csv.starts_with("p,"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn figures_have_the_papers_shape() {
        for scenario in Scenario::FIGURES {
            let t = run_figure(scenario, &[10, 20], 3);
            check_figure_shape(&t).unwrap();
        }
    }

    #[test]
    fn wide_heterogeneity_reproduces_the_big_figure_12_gap() {
        // Under the §3.2 bandwidth range (kb/s to hundreds of Mb/s) the
        // oblivious baseline collapses on the server workload — the
        // paper's "2 to 5 times faster" claim. Our default baseline
        // semantics (blocking sendrecv) shows ≥1.7× at the top of the
        // sweep; the stricter barrier semantics (below) lands inside the
        // paper's band outright.
        let t = run_figure_with(
            Scenario::Servers,
            &[40, 50],
            3,
            GeneratorConfig::wide_area(),
        );
        check_figure_shape(&t).unwrap();
        let factor = improvement_factor(&t);
        assert!(
            factor >= 1.7,
            "expected a ≥1.7× baseline gap under wide heterogeneity, got {factor:.2}"
        );
    }

    #[test]
    fn barrier_baseline_lands_in_the_papers_ratio_band() {
        // "The schedules generated by the baseline algorithm sometimes
        // take upto 6 times longer than the lower bound": with
        // barrier-synchronized step execution on wide heterogeneity the
        // baseline ratio sits in the 2–6 band at P = 50.
        use adaptcomm_core::algorithms::Baseline;
        let mut worst: f64 = 0.0;
        for trial in 0..3u64 {
            let inst = Scenario::Servers.instance_with(
                50,
                trial * 7919 + 50,
                GeneratorConfig::wide_area(),
            );
            let lb = inst.matrix.lower_bound().as_ms();
            let t = execute_steps(&Baseline::steps(50), &inst.matrix)
                .completion_time()
                .as_ms();
            worst = worst.max(t / lb);
        }
        assert!(
            (2.0..=6.5).contains(&worst),
            "barrier baseline worst ratio {worst:.2} outside the paper's band"
        );
    }

    #[test]
    fn summary_ratios_match_paper_bands() {
        let s = summary(&[10, 20, 30], 2);
        let get = |name: &str| s.ratios.iter().find(|r| r.0 == name).unwrap();
        // Paper: open shop within 10% of lb (we allow a little slack for
        // our random draws), matchings ~15%, greedy ~25%, baseline up to
        // several ×.
        let (_, os_mean, os_worst) = *get("openshop");
        assert!(os_mean < 1.12, "open shop mean ratio {os_mean}");
        assert!(os_worst <= 2.0 + 1e-9, "Theorem 3: {os_worst}");
        let (_, bl_mean, bl_worst) = *get("baseline");
        assert!(bl_mean > os_mean, "baseline must trail open shop");
        assert!(bl_worst > 1.3, "baseline should be visibly bad somewhere");
        let (_, greedy_mean, _) = *get("greedy");
        assert!(greedy_mean < 1.6, "greedy mean ratio {greedy_mean}");
    }

    #[test]
    fn theorem_series() {
        let t2 = theorem2_series();
        assert!((t2.last().unwrap().1 - 2.0).abs() < 1e-3, "ratio → P/2 = 2");
        let worst = theorem3_worst_ratio(20);
        assert!((1.0..=2.0 + 1e-9).contains(&worst));
    }

    #[test]
    fn gusto_tables_render() {
        let t = render_gusto_tables();
        assert!(t.contains("USC-ISI"));
        assert!(t.contains("4976"));
        assert!(t.contains("89.5"));
    }

    #[test]
    fn adaptivity_study_reports_all_policies() {
        let rows = adaptivity_study(6, 2);
        assert_eq!(rows.len(), 3);
        let never = rows.iter().find(|r| r.0 == "never").unwrap();
        assert_eq!(never.2, 0.0, "never-policy cannot reschedule");
    }

    #[test]
    fn refinement_study_shows_improvement() {
        let rows = refinement_study(8, 2);
        let get = |name: &str| rows.iter().find(|r| r.0 == name).unwrap().1;
        assert!(get("random+climb") <= get("random") + 1e-9);
        assert!(get("greedy+climb") <= get("greedy") + 1e-9);
        assert!(get("greedy+anneal") <= get("greedy") + 1e-9);
        for (_, ratio) in rows {
            assert!(ratio >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn staging_study_is_monotone_in_deadline_tightness() {
        let rows = staging_study(3);
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!(
                w[1].1 >= w[0].1 - 1e-12,
                "looser deadlines must satisfy at least as many requests"
            );
        }
        // With 8× slack everything should fit on this small WAN.
        assert!(rows.last().unwrap().1 > 0.9);
    }

    #[test]
    fn fluid_gap_grows_with_wan_contention() {
        let rows = fluid_gap_study(&[4, 8]);
        for (p, flat, fluid) in &rows {
            assert!(fluid >= flat, "P={p}: fluid {fluid} < flat {flat}?");
        }
        // More nodes per site → more concurrent WAN flows → bigger gap.
        let gap = |r: &(usize, f64, f64)| r.2 / r.1;
        assert!(
            gap(&rows[1]) >= gap(&rows[0]) - 0.05,
            "contention gap should not shrink with P"
        );
    }

    #[test]
    fn barrier_ablation_runs() {
        let rows = barrier_ablation(&[6, 10], 2);
        assert_eq!(rows.len(), 2);
        for (_, asap, barrier) in rows {
            assert!(asap.as_ms() > 0.0 && barrier.as_ms() > 0.0);
        }
    }
}

//! Scheduler-construction performance tracking (the perf gate).
//!
//! The §6.2 motivation — "the overhead for repeatedly calculating the
//! communication schedule at run-time can be expensive" — makes
//! scheduler construction cost a first-class deliverable, not a
//! side-effect. This module holds the measurement plumbing for the
//! `perfgate` binary: wall-clock statistics over repeated runs, a
//! hand-rolled JSON report (`BENCH_sched.json`, schema
//! `scheduler → P → {median_ms, p90_ms, reps}`; the workspace has no
//! serde_json, so emission *and* parsing live here), and the regression
//! gate comparing a fresh quick run against the committed baseline.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Wall-clock statistics for one `(scheduler, P)` cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfStats {
    /// Median wall time over the repetitions, in milliseconds.
    pub median_ms: f64,
    /// 90th-percentile wall time (nearest-rank), in milliseconds.
    pub p90_ms: f64,
    /// Number of repetitions measured.
    pub reps: usize,
}

impl PerfStats {
    /// Folds raw per-repetition wall times (ms) into summary statistics.
    ///
    /// The percentile uses the nearest-rank method (`⌈q·n⌉`-th smallest),
    /// so with a single repetition median = p90 = that sample.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |q: f64| -> f64 {
            let n = sorted.len();
            let k = ((q * n as f64).ceil() as usize).clamp(1, n);
            sorted[k - 1]
        };
        PerfStats {
            median_ms: rank(0.50),
            p90_ms: rank(0.90),
            reps: sorted.len(),
        }
    }
}

/// A full perf report: `scheduler → P → stats`, ordered for stable
/// serialization (schedulers in insertion order, P ascending).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfReport {
    /// Scheduler names in first-seen order (BTreeMap would alphabetize
    /// and lose the canonical baseline→…→openshop presentation order).
    order: Vec<String>,
    cells: BTreeMap<String, BTreeMap<usize, PerfStats>>,
    /// Committed absolute budgets: `scheduler → P → max median ms`.
    /// Unlike the relative trend gate, a target is an improvement
    /// ratchet — once sub-second matching lands, the `"targets"` block
    /// keeps `--check-history` failing if the median ever climbs back,
    /// even across rebaselines (full runs carry targets forward).
    targets: BTreeMap<String, BTreeMap<usize, f64>>,
}

impl PerfReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the stats for one `(scheduler, P)` cell.
    pub fn insert(&mut self, scheduler: &str, p: usize, stats: PerfStats) {
        if !self.cells.contains_key(scheduler) {
            self.order.push(scheduler.to_string());
        }
        self.cells
            .entry(scheduler.to_string())
            .or_default()
            .insert(p, stats);
    }

    /// Looks up one cell.
    pub fn get(&self, scheduler: &str, p: usize) -> Option<PerfStats> {
        self.cells.get(scheduler).and_then(|m| m.get(&p)).copied()
    }

    /// Scheduler names in presentation order.
    pub fn schedulers(&self) -> &[String] {
        &self.order
    }

    /// The `(P, stats)` cells for one scheduler, P ascending.
    pub fn cells(&self, scheduler: &str) -> Vec<(usize, PerfStats)> {
        self.cells
            .get(scheduler)
            .map(|m| m.iter().map(|(&p, &s)| (p, s)).collect())
            .unwrap_or_default()
    }

    /// Commits an absolute budget for one `(scheduler, P)` cell: the
    /// median must never exceed `max_median_ms`.
    pub fn set_target(&mut self, scheduler: &str, p: usize, max_median_ms: f64) {
        self.targets
            .entry(scheduler.to_string())
            .or_default()
            .insert(p, max_median_ms);
    }

    /// All committed `(scheduler, P, max median ms)` targets.
    pub fn targets(&self) -> Vec<(String, usize, f64)> {
        self.targets
            .iter()
            .flat_map(|(name, cells)| cells.iter().map(move |(&p, &ms)| (name.clone(), p, ms)))
            .collect()
    }

    /// Copies `other`'s targets into `self` (used by full-mode perfgate
    /// runs so rebaselining `BENCH_sched.json` never drops the ratchet).
    pub fn adopt_targets(&mut self, other: &PerfReport) {
        for (name, cells) in &other.targets {
            for (&p, &ms) in cells {
                self.set_target(name, p, ms);
            }
        }
    }

    /// Checks `report`'s measured cells against `self`'s committed
    /// targets. Returns the violations (empty = all budgets met);
    /// target cells the report did not measure are skipped — a quick
    /// run that never reaches P=1024 cannot vacuously pass or fail a
    /// P=1024 budget.
    pub fn check_targets(&self, report: &PerfReport) -> Vec<String> {
        let mut violations = Vec::new();
        for (name, cells) in &self.targets {
            for (&p, &budget) in cells {
                if let Some(stats) = report.get(name, p) {
                    if stats.median_ms > budget {
                        violations.push(format!(
                            "{name} P={p}: {:.3} ms exceeds committed target {budget:.3} ms",
                            stats.median_ms
                        ));
                    }
                }
            }
        }
        violations
    }

    /// Serializes to the committed `BENCH_sched.json` schema.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (si, name) in self.order.iter().enumerate() {
            let _ = writeln!(out, "  {}: {{", json_string(name));
            let cells = &self.cells[name];
            for (pi, (p, s)) in cells.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "    \"{}\": {{\"median_ms\": {}, \"p90_ms\": {}, \"reps\": {}}}{}",
                    p,
                    json_number(s.median_ms),
                    json_number(s.p90_ms),
                    s.reps,
                    if pi + 1 < cells.len() { "," } else { "" }
                );
            }
            let _ = writeln!(
                out,
                "  }}{}",
                if si + 1 < self.order.len() || !self.targets.is_empty() {
                    ","
                } else {
                    ""
                }
            );
        }
        if !self.targets.is_empty() {
            out.push_str("  \"targets\": {\n");
            for (ti, (name, cells)) in self.targets.iter().enumerate() {
                let _ = write!(out, "    {}: {{", json_string(name));
                for (pi, (p, ms)) in cells.iter().enumerate() {
                    let _ = write!(
                        out,
                        "{}\"{}\": {}",
                        if pi > 0 { ", " } else { "" },
                        p,
                        json_number(*ms)
                    );
                }
                let _ = writeln!(
                    out,
                    "}}{}",
                    if ti + 1 < self.targets.len() { "," } else { "" }
                );
            }
            out.push_str("  }\n");
        }
        out.push_str("}\n");
        out
    }

    /// Serializes to the same schema as [`PerfReport::to_json`] but on
    /// one line with no whitespace — the form embedded in
    /// `BENCH_history.jsonl` records. [`PerfReport::from_json`] parses
    /// both forms.
    pub fn to_json_line(&self) -> String {
        let mut out = String::from("{");
        for (si, name) in self.order.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{{", json_string(name));
            let cells = &self.cells[name];
            for (pi, (p, s)) in cells.iter().enumerate() {
                let _ = write!(
                    out,
                    "\"{}\":{{\"median_ms\":{},\"p90_ms\":{},\"reps\":{}}}{}",
                    p,
                    json_number(s.median_ms),
                    json_number(s.p90_ms),
                    s.reps,
                    if pi + 1 < cells.len() { "," } else { "" }
                );
            }
            out.push('}');
        }
        if !self.targets.is_empty() {
            if !self.order.is_empty() {
                out.push(',');
            }
            out.push_str("\"targets\":{");
            for (ti, (name, cells)) in self.targets.iter().enumerate() {
                if ti > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{{", json_string(name));
                for (pi, (p, ms)) in cells.iter().enumerate() {
                    let _ = write!(
                        out,
                        "{}\"{}\":{}",
                        if pi > 0 { "," } else { "" },
                        p,
                        json_number(*ms)
                    );
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Parses a report previously produced by [`PerfReport::to_json`].
    ///
    /// Accepts the exact schema (object of objects of
    /// `{median_ms, p90_ms, reps}`); anything else is an error string
    /// naming the offending position.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let mut p = JsonParser::new(text);
        let report = Self::parse_object(&mut p)?;
        p.end()?;
        Ok(report)
    }

    /// Parses one report object starting at the parser's cursor — the
    /// shared body behind [`PerfReport::from_json`] and the `"report"`
    /// value inside `BENCH_history.jsonl` envelopes.
    fn parse_object(p: &mut JsonParser) -> Result<Self, String> {
        let mut report = PerfReport::new();
        p.expect('{')?;
        if !p.peek_is('}') {
            loop {
                let scheduler = p.string()?;
                p.expect(':')?;
                if scheduler == "targets" {
                    // The reserved targets block: scheduler → P → ms.
                    Self::parse_targets(p, &mut report)?;
                } else {
                    p.expect('{')?;
                    if !p.peek_is('}') {
                        loop {
                            let p_key = p.string()?;
                            let procs: usize = p_key
                                .parse()
                                .map_err(|_| format!("non-numeric P key {p_key:?}"))?;
                            p.expect(':')?;
                            let stats = p.stats_object()?;
                            report.insert(&scheduler, procs, stats);
                            if !p.comma_or_end('}')? {
                                break;
                            }
                        }
                    }
                    p.expect('}')?;
                }
                if !p.comma_or_end('}')? {
                    break;
                }
            }
        }
        p.expect('}')?;
        Ok(report)
    }

    /// Parses the `"targets"` block body (`{"sched": {"1024": ms, ..}, ..}`).
    fn parse_targets(p: &mut JsonParser, report: &mut PerfReport) -> Result<(), String> {
        p.expect('{')?;
        if !p.peek_is('}') {
            loop {
                let scheduler = p.string()?;
                p.expect(':')?;
                p.expect('{')?;
                if !p.peek_is('}') {
                    loop {
                        let p_key = p.string()?;
                        let procs: usize = p_key
                            .parse()
                            .map_err(|_| format!("non-numeric target P key {p_key:?}"))?;
                        p.expect(':')?;
                        let ms = p.number()?;
                        report.set_target(&scheduler, procs, ms);
                        if !p.comma_or_end('}')? {
                            break;
                        }
                    }
                }
                p.expect('}')?;
                if !p.comma_or_end('}')? {
                    break;
                }
            }
        }
        p.expect('}')?;
        Ok(())
    }

    /// The regression gate: every cell of `current` must stay within
    /// `factor ×` the committed baseline's median. Returns the list of
    /// violations (empty = gate passes); cells missing from the baseline
    /// are violations too — a new scheduler must re-baseline.
    pub fn gate(&self, baseline: &PerfReport, factor: f64) -> Vec<String> {
        let mut violations = Vec::new();
        for name in &self.order {
            for (p, stats) in self.cells(name) {
                match baseline.get(name, p) {
                    None => violations.push(format!(
                        "{name} P={p}: no committed baseline cell — re-run perfgate and commit BENCH_sched.json"
                    )),
                    Some(base) => {
                        let budget = base.median_ms * factor;
                        if stats.median_ms > budget {
                            violations.push(format!(
                                "{name} P={p}: {:.2} ms exceeds {factor}x budget {:.2} ms (baseline median {:.2} ms)",
                                stats.median_ms, budget, base.median_ms
                            ));
                        }
                    }
                }
            }
        }
        violations
    }
}

/// One dated `BENCH_history.jsonl` record: the full report embedded in
/// an envelope carrying the Unix timestamp and the perfgate mode that
/// produced it. Single line, no trailing newline — ready to append.
pub fn history_record(ts_unix: u64, mode: &str, report: &PerfReport) -> String {
    format!(
        "{{\"ts_unix\":{ts_unix},\"mode\":{},\"report\":{}}}",
        json_string(mode),
        report.to_json_line()
    )
}

/// Appends `record` (one history line) to the JSONL file at `path`,
/// creating it on first use.
pub fn append_history(path: &str, record: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{record}")
}

/// One parsed `BENCH_history.jsonl` line.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRecord {
    /// Unix timestamp at which the record was appended.
    pub ts_unix: u64,
    /// The perfgate mode that produced it (only `"full"` records carry
    /// stable 5-rep medians, so only those participate in the trend).
    pub mode: String,
    /// The embedded report.
    pub report: PerfReport,
}

/// Parses a whole history file: one envelope per line, blank lines
/// skipped. Errors name the offending line, so a truncated append is
/// diagnosable.
pub fn parse_history(text: &str) -> Result<Vec<HistoryRecord>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_history_line(line).map_err(|e| format!("history line {}: {e}", idx + 1))?);
    }
    Ok(out)
}

fn parse_history_line(line: &str) -> Result<HistoryRecord, String> {
    let mut p = JsonParser::new(line);
    p.expect('{')?;
    let (mut ts_unix, mut mode, mut report) = (None, None, None);
    loop {
        let key = p.string()?;
        p.expect(':')?;
        match key.as_str() {
            "ts_unix" => ts_unix = Some(p.number()? as u64),
            "mode" => mode = Some(p.string()?),
            "report" => report = Some(PerfReport::parse_object(&mut p)?),
            other => return Err(format!("unknown history key {other:?}")),
        }
        if !p.comma_or_end('}')? {
            break;
        }
    }
    p.expect('}')?;
    p.end()?;
    Ok(HistoryRecord {
        ts_unix: ts_unix.ok_or("missing ts_unix")?,
        mode: mode.ok_or("missing mode")?,
        report: report.ok_or("missing report")?,
    })
}

/// The outcome of the history trend gate.
#[derive(Debug, Clone, PartialEq)]
pub enum HistoryCheck {
    /// Fewer than two full-mode records: there is no trend to gate
    /// against yet, which is not a failure.
    NotEnoughHistory {
        /// How many full-mode records the file holds (0 or 1).
        full_records: usize,
    },
    /// The latest full-mode record was compared cell by cell.
    Compared {
        /// How many earlier full-mode records formed the trend.
        priors: usize,
        /// Violations (empty = gate passes).
        violations: Vec<String>,
    },
}

/// The trend gate behind `perfgate --check-history`: each
/// `(scheduler, P)` median of the *latest* full-mode record must stay
/// within `factor ×` the median-of-medians of the same cell across all
/// prior full-mode records. Quick-mode records are ignored (1 rep on a
/// possibly loaded CI machine), and cells with no prior observation
/// pass — a new scheduler or P has no trend to regress against.
pub fn check_history(records: &[HistoryRecord], factor: f64) -> HistoryCheck {
    let full: Vec<&HistoryRecord> = records.iter().filter(|r| r.mode == "full").collect();
    let Some((latest, priors)) = full.split_last() else {
        return HistoryCheck::NotEnoughHistory { full_records: 0 };
    };
    if priors.is_empty() {
        return HistoryCheck::NotEnoughHistory { full_records: 1 };
    }
    let mut violations = Vec::new();
    for name in latest.report.schedulers() {
        for (p, stats) in latest.report.cells(name) {
            let mut medians: Vec<f64> = priors
                .iter()
                .filter_map(|r| r.report.get(name, p))
                .map(|s| s.median_ms)
                .collect();
            if medians.is_empty() {
                continue;
            }
            medians.sort_by(f64::total_cmp);
            // Nearest-rank median, consistent with `PerfStats`.
            let k = ((0.5 * medians.len() as f64).ceil() as usize).clamp(1, medians.len());
            let trend = medians[k - 1];
            let budget = trend * factor;
            if stats.median_ms > budget {
                violations.push(format!(
                    "{name} P={p}: {:.3} ms exceeds {factor}x trend budget {budget:.3} ms \
                     (median of {} prior full run(s): {trend:.3} ms)",
                    stats.median_ms,
                    medians.len(),
                ));
            }
        }
    }
    HistoryCheck::Compared {
        priors: priors.len(),
        violations,
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite f64 so it round-trips through `str::parse::<f64>`.
fn json_number(x: f64) -> String {
    assert!(x.is_finite(), "JSON has no NaN/Inf");
    // `{:?}` on f64 is the shortest representation that round-trips.
    format!("{x:?}")
}

/// A minimal recursive-descent parser for exactly the report schema:
/// objects, double-quoted strings (no escapes needed for our keys, but
/// the common ones are handled), and plain numbers.
struct JsonParser<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        JsonParser { text, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.text[self.pos..]
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek_is(&mut self, c: char) -> bool {
        self.skip_ws();
        self.text[self.pos..].starts_with(c)
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.text[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(format!("expected {c:?} at byte {}", self.pos))
        }
    }

    /// After a value: consumes `,` and returns true, or returns false
    /// when the closing delimiter is next (without consuming it).
    fn comma_or_end(&mut self, close: char) -> Result<bool, String> {
        self.skip_ws();
        if self.text[self.pos..].starts_with(',') {
            self.pos += 1;
            Ok(true)
        } else if self.text[self.pos..].starts_with(close) {
            Ok(false)
        } else {
            Err(format!("expected ',' or {close:?} at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        let mut chars = self.text[self.pos..].char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, e)) => return Err(format!("unsupported escape \\{e}")),
                    None => break,
                },
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let rest = &self.text[self.pos..];
        let len = rest
            .char_indices()
            .find(|(_, c)| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
            .map_or(rest.len(), |(i, _)| i);
        let token = &rest[..len];
        let value: f64 = token
            .parse()
            .map_err(|_| format!("bad number {token:?} at byte {}", self.pos))?;
        self.pos += len;
        Ok(value)
    }

    fn stats_object(&mut self) -> Result<PerfStats, String> {
        self.expect('{')?;
        let (mut median, mut p90, mut reps) = (None, None, None);
        loop {
            let key = self.string()?;
            self.expect(':')?;
            let value = self.number()?;
            match key.as_str() {
                "median_ms" => median = Some(value),
                "p90_ms" => p90 = Some(value),
                "reps" => reps = Some(value as usize),
                other => return Err(format!("unknown stats key {other:?}")),
            }
            if !self.comma_or_end('}')? {
                break;
            }
        }
        self.expect('}')?;
        Ok(PerfStats {
            median_ms: median.ok_or("missing median_ms")?,
            p90_ms: p90.ok_or("missing p90_ms")?,
            reps: reps.ok_or("missing reps")?,
        })
    }

    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos == self.text.len() {
            Ok(())
        } else {
            Err(format!("trailing content at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_samples() {
        let s = PerfStats::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.median_ms, 3.0);
        assert_eq!(s.p90_ms, 5.0);
        assert_eq!(s.reps, 5);
        let one = PerfStats::from_samples(&[7.5]);
        assert_eq!(one.median_ms, 7.5);
        assert_eq!(one.p90_ms, 7.5);
        assert_eq!(one.reps, 1);
    }

    #[test]
    fn json_round_trips() {
        let mut r = PerfReport::new();
        r.insert(
            "openshop",
            64,
            PerfStats {
                median_ms: 1.25,
                p90_ms: 2.5,
                reps: 5,
            },
        );
        r.insert(
            "openshop",
            1024,
            PerfStats {
                median_ms: 480.062_5,
                p90_ms: 512.0,
                reps: 5,
            },
        );
        r.insert(
            "matching-max",
            64,
            PerfStats {
                median_ms: 0.015_625,
                p90_ms: 0.031_25,
                reps: 7,
            },
        );
        let parsed = PerfReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        // Scheduler presentation order survives the round trip.
        assert_eq!(parsed.schedulers(), ["openshop", "matching-max"]);
        assert_eq!(parsed.cells("openshop").len(), 2);
    }

    #[test]
    fn compact_json_round_trips_and_fits_one_line() {
        let mut r = PerfReport::new();
        r.insert(
            "openshop",
            64,
            PerfStats {
                median_ms: 1.25,
                p90_ms: 2.5,
                reps: 5,
            },
        );
        r.insert(
            "greedy",
            128,
            PerfStats {
                median_ms: 0.5,
                p90_ms: 0.75,
                reps: 3,
            },
        );
        let line = r.to_json_line();
        assert!(!line.contains('\n'));
        assert_eq!(PerfReport::from_json(&line).unwrap(), r);
    }

    #[test]
    fn history_record_embeds_a_parseable_report() {
        let mut r = PerfReport::new();
        r.insert(
            "baseline",
            64,
            PerfStats {
                median_ms: 2.0,
                p90_ms: 2.0,
                reps: 1,
            },
        );
        let line = history_record(1_754_000_000, "full", &r);
        assert!(!line.contains('\n'));
        assert!(line.starts_with("{\"ts_unix\":1754000000,\"mode\":\"full\",\"report\":"));
        // The embedded report is exactly the compact serialization and
        // parses back to the original.
        let report_json = line
            .strip_prefix("{\"ts_unix\":1754000000,\"mode\":\"full\",\"report\":")
            .and_then(|s| s.strip_suffix('}'))
            .unwrap();
        assert_eq!(PerfReport::from_json(report_json).unwrap(), r);
    }

    #[test]
    fn history_parses_and_rejects_bad_lines() {
        let cell = |m: f64| PerfStats {
            median_ms: m,
            p90_ms: m,
            reps: 5,
        };
        let mut a = PerfReport::new();
        a.insert("greedy", 64, cell(2.0));
        let mut b = PerfReport::new();
        b.insert("greedy", 64, cell(2.1));
        let text = format!(
            "{}\n\n{}\n",
            history_record(100, "full", &a),
            history_record(200, "quick", &b)
        );
        let records = parse_history(&text).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].ts_unix, 100);
        assert_eq!(records[0].mode, "full");
        assert_eq!(records[0].report, a);
        assert_eq!(records[1].mode, "quick");

        let err = parse_history("{\"ts_unix\":1}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(parse_history("{\"nope\":1}").is_err());
        // The error names the line, not just the record.
        let two = format!("{}\n{{broken", history_record(1, "full", &a));
        assert!(parse_history(&two).unwrap_err().contains("line 2"));
    }

    #[test]
    fn history_gate_needs_two_full_records() {
        let mut r = PerfReport::new();
        r.insert(
            "greedy",
            64,
            PerfStats {
                median_ms: 1.0,
                p90_ms: 1.0,
                reps: 5,
            },
        );
        assert_eq!(
            check_history(&[], 1.25),
            HistoryCheck::NotEnoughHistory { full_records: 0 }
        );
        let one = HistoryRecord {
            ts_unix: 1,
            mode: "full".into(),
            report: r.clone(),
        };
        assert_eq!(
            check_history(std::slice::from_ref(&one), 1.25),
            HistoryCheck::NotEnoughHistory { full_records: 1 }
        );
        // Quick records never count toward the trend.
        let quick = HistoryRecord {
            ts_unix: 2,
            mode: "quick".into(),
            report: r,
        };
        assert_eq!(
            check_history(&[one, quick], 1.25),
            HistoryCheck::NotEnoughHistory { full_records: 1 }
        );
    }

    #[test]
    fn history_gate_flags_regressions_against_the_prior_median() {
        let cell = |m: f64| PerfStats {
            median_ms: m,
            p90_ms: m,
            reps: 5,
        };
        let record = |ts: u64, m: f64| {
            let mut r = PerfReport::new();
            r.insert("greedy", 64, cell(m));
            HistoryRecord {
                ts_unix: ts,
                mode: "full".into(),
                report: r,
            }
        };
        // Priors 10, 12, 11 → nearest-rank median 11, budget 13.75.
        let mut records = vec![record(1, 10.0), record(2, 12.0), record(3, 11.0)];

        records.push(record(4, 13.0));
        match check_history(&records, 1.25) {
            HistoryCheck::Compared { priors, violations } => {
                assert_eq!(priors, 3);
                assert!(violations.is_empty(), "{violations:?}");
            }
            other => panic!("{other:?}"),
        }

        *records.last_mut().unwrap() = record(4, 14.0);
        match check_history(&records, 1.25) {
            HistoryCheck::Compared { violations, .. } => {
                assert_eq!(violations.len(), 1);
                assert!(violations[0].contains("greedy P=64"), "{}", violations[0]);
            }
            other => panic!("{other:?}"),
        }

        // A brand-new cell in the latest record has no trend: passes.
        let mut latest = record(5, 1.0);
        latest.report.insert("newcomer", 1024, cell(500.0));
        records.push(latest);
        match check_history(&records, 1.25) {
            HistoryCheck::Compared { violations, .. } => {
                assert!(violations.is_empty(), "{violations:?}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn targets_round_trip_and_gate() {
        let mut r = PerfReport::new();
        r.insert(
            "matching-max",
            1024,
            PerfStats {
                median_ms: 40.0,
                p90_ms: 55.0,
                reps: 5,
            },
        );
        r.set_target("matching-max", 1024, 60.0);
        r.set_target("matching-min", 1024, 75.5);

        // Both serializations carry the block and parse back equal.
        let parsed = PerfReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        let parsed_line = PerfReport::from_json(&r.to_json_line()).unwrap();
        assert_eq!(parsed_line, r);
        assert_eq!(parsed.targets().len(), 2);

        // Within budget: passes. A target with no measured cell is
        // skipped (matching-min was never measured here).
        assert!(r.check_targets(&r).is_empty());

        // Over budget: named violation.
        let mut slow = PerfReport::new();
        slow.insert(
            "matching-max",
            1024,
            PerfStats {
                median_ms: 61.0,
                p90_ms: 61.0,
                reps: 5,
            },
        );
        let violations = r.check_targets(&slow);
        assert_eq!(violations.len(), 1);
        assert!(
            violations[0].contains("matching-max P=1024"),
            "{}",
            violations[0]
        );
        assert!(violations[0].contains("target 60.000"), "{}", violations[0]);

        // Rebaselining carries the ratchet forward.
        let mut fresh = PerfReport::new();
        fresh.insert(
            "matching-max",
            1024,
            PerfStats {
                median_ms: 39.0,
                p90_ms: 41.0,
                reps: 5,
            },
        );
        fresh.adopt_targets(&r);
        assert_eq!(fresh.targets(), r.targets());
    }

    #[test]
    fn targets_only_report_serializes() {
        // A report with nothing but targets (degenerate but legal).
        let mut r = PerfReport::new();
        r.set_target("matching-max", 1024, 100.0);
        assert_eq!(PerfReport::from_json(&r.to_json()).unwrap(), r);
        assert_eq!(PerfReport::from_json(&r.to_json_line()).unwrap(), r);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(PerfReport::from_json("").is_err());
        assert!(PerfReport::from_json("{").is_err());
        assert!(PerfReport::from_json("{} trailing").is_err());
        assert!(PerfReport::from_json(r#"{"a": {"64": {"median_ms": 1}}}"#).is_err());
        assert!(
            PerfReport::from_json(r#"{"a": {"x": {"median_ms": 1, "p90_ms": 1, "reps": 1}}}"#)
                .is_err()
        );
    }

    #[test]
    fn gate_flags_regressions_and_missing_cells() {
        let cell = |m: f64| PerfStats {
            median_ms: m,
            p90_ms: m,
            reps: 1,
        };
        let mut baseline = PerfReport::new();
        baseline.insert("greedy", 64, cell(10.0));
        let mut ok = PerfReport::new();
        ok.insert("greedy", 64, cell(99.0));
        assert!(ok.gate(&baseline, 10.0).is_empty());
        let mut slow = PerfReport::new();
        slow.insert("greedy", 64, cell(101.0));
        assert_eq!(slow.gate(&baseline, 10.0).len(), 1);
        let mut unknown = PerfReport::new();
        unknown.insert("greedy", 128, cell(1.0));
        assert_eq!(unknown.gate(&baseline, 10.0).len(), 1);
    }
}

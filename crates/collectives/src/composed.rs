//! Composed collectives: all-gather, all-reduce, and the dissemination
//! barrier.
//!
//! * **All-gather** without combining is exactly a total exchange whose
//!   per-sender message sizes are row-constant, so it delegates to the
//!   `adaptcomm-core` schedulers ([`allgather_matrix`] builds the
//!   matrix). [`allgather`] wraps the delegation.
//! * **All-reduce** = reduce to a root, then broadcast from it. The
//!   heterogeneity-aware variant picks the *root that minimizes the
//!   composed completion* — on skewed networks the best root is rarely
//!   rank 0.
//! * **Dissemination barrier** — `⌈log₂P⌉` rounds, round `k`: `P_i`
//!   signals `P_(i+2^k) mod P`. Messages are zero-payload (pure start-up
//!   cost), so this exercises the `T_ij` half of the model.

use crate::broadcast;
use crate::plan::CollectiveSchedule;
use crate::reduce::{reduce, ReduceTree};
use adaptcomm_core::algorithms::Scheduler;
use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_core::schedule::{Schedule, ScheduledEvent};
use adaptcomm_model::cost::CostModel;
use adaptcomm_model::units::{Bytes, Millis};

/// Builds the total-exchange matrix equivalent to an all-gather where
/// processor `i` contributes `contribution[i]` bytes to everyone.
pub fn allgather_matrix<M: CostModel>(model: &M, contribution: &[Bytes]) -> CommMatrix {
    let p = model.len();
    assert_eq!(contribution.len(), p, "one contribution per processor");
    CommMatrix::from_fn(p, |src, dst| {
        if src == dst {
            0.0
        } else {
            model.message_time(src, dst, contribution[src]).as_ms()
        }
    })
}

/// Schedules an all-gather with any total-exchange scheduler.
pub fn allgather<M: CostModel, S: Scheduler>(
    model: &M,
    contribution: &[Bytes],
    scheduler: &S,
) -> Schedule {
    let matrix = allgather_matrix(model, contribution);
    scheduler.schedule(&matrix)
}

/// An all-reduce plan: the reduction phase, the broadcast phase, and the
/// root that glues them.
#[derive(Debug, Clone)]
pub struct AllReduce {
    /// The chosen root.
    pub root: usize,
    /// Phase 1: reduce into the root.
    pub reduce: CollectiveSchedule,
    /// Phase 2: broadcast from the root (start times offset so the
    /// broadcast begins when the reduction completes).
    pub broadcast: CollectiveSchedule,
}

impl AllReduce {
    /// Completion of the whole all-reduce.
    pub fn completion_time(&self) -> Millis {
        self.broadcast.completion_time()
    }
}

/// Builds an all-reduce rooted at `root`: fastest-first reduce, then
/// fastest-first broadcast shifted to start at the reduce completion.
pub fn allreduce_at(matrix: &CommMatrix, root: usize) -> AllReduce {
    let red = reduce(matrix, root, ReduceTree::FastestFirst);
    let offset = red.completion_time();
    let bcast = broadcast::fastest_first(matrix, root);
    // Shift the broadcast by the reduction completion.
    let shifted: Vec<ScheduledEvent> = bcast
        .events()
        .iter()
        .map(|e| ScheduledEvent {
            src: e.src,
            dst: e.dst,
            start: e.start + offset,
            finish: e.finish + offset,
        })
        .collect();
    let broadcast =
        CollectiveSchedule::new(matrix.len(), shifted).expect("time shift preserves validity");
    AllReduce {
        root,
        reduce: red,
        broadcast,
    }
}

/// Builds an all-reduce choosing the root with the smallest composed
/// completion time (ties to the lower rank).
pub fn allreduce_best_root(matrix: &CommMatrix) -> AllReduce {
    (0..matrix.len())
        .map(|r| allreduce_at(matrix, r))
        .min_by(|a, b| {
            a.completion_time()
                .as_ms()
                .total_cmp(&b.completion_time().as_ms())
                .then(a.root.cmp(&b.root))
        })
        .expect("at least one processor")
}

/// The dissemination barrier: in round `k` (`2^k < P`), `P_i` sends a
/// zero-payload signal to `P_(i+2^k) mod P`. After `⌈log₂P⌉` rounds every
/// processor has transitively heard from every other.
pub fn dissemination_barrier(matrix: &CommMatrix) -> CollectiveSchedule {
    let p = matrix.len();
    let mut ready = vec![0.0f64; p];
    let mut events = Vec::new();
    let mut stride = 1usize;
    while stride < p {
        let mut next_ready = ready.clone();
        for i in 0..p {
            let dst = (i + stride) % p;
            let start = ready[i].max(ready[dst]);
            let finish = start + matrix.cost(i, dst).as_ms();
            events.push(ScheduledEvent {
                src: i,
                dst,
                start: Millis::new(start),
                finish: Millis::new(finish),
            });
            // Both endpoints advance to the round's end (the receiver
            // must hear the signal; the sender waits for its own
            // incoming signal from i - stride, accounted symmetrically).
            next_ready[i] = next_ready[i].max(finish);
            next_ready[dst] = next_ready[dst].max(finish);
        }
        ready = next_ready;
        stride *= 2;
    }
    CollectiveSchedule::new(p, events).expect("rounds are permutations")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptcomm_core::algorithms::OpenShop;
    use adaptcomm_model::params::NetParams;
    use adaptcomm_model::units::Bandwidth;

    fn net(p: usize) -> NetParams {
        NetParams::from_fn(p, |s, d| {
            adaptcomm_model::cost::LinkEstimate::new(
                Millis::new(((s * 7 + d * 3) % 25) as f64 + 1.0),
                Bandwidth::from_kbps(((s + 2 * d) % 900 + 100) as f64),
            )
        })
    }

    fn hetero(p: usize) -> CommMatrix {
        CommMatrix::from_fn(p, |s, d| {
            if s == d {
                0.0
            } else {
                ((s * 17 + d * 3) % 29 + 1) as f64
            }
        })
    }

    #[test]
    fn allgather_is_a_valid_total_exchange() {
        let contribution: Vec<Bytes> = (0..6)
            .map(|k| Bytes::from_kb(10 * (k as u64 + 1)))
            .collect();
        let sched = allgather(&net(6), &contribution, &OpenShop);
        sched.validate().unwrap();
        // Row-constant sizes: all messages from one sender cost the same
        // transfer time (startup may differ per pair).
        let m = allgather_matrix(&net(6), &contribution);
        assert_eq!(m.len(), 6);
    }

    #[test]
    fn allreduce_completes_and_respects_phases() {
        let m = hetero(7);
        let ar = allreduce_at(&m, 2);
        // The broadcast must start no earlier than the reduce finished.
        let reduce_end = ar.reduce.completion_time().as_ms();
        for e in ar.broadcast.events() {
            assert!(e.start.as_ms() >= reduce_end - 1e-9);
        }
        assert!(ar.completion_time().as_ms() >= reduce_end);
    }

    #[test]
    fn best_root_is_no_worse_than_any_fixed_root() {
        let m = hetero(8);
        let best = allreduce_best_root(&m);
        for r in 0..8 {
            let fixed = allreduce_at(&m, r);
            assert!(
                best.completion_time().as_ms() <= fixed.completion_time().as_ms() + 1e-9,
                "root {r} beat the 'best' root {}",
                best.root
            );
        }
    }

    #[test]
    fn hub_networks_are_exploited_from_any_root() {
        // Node 3 is a hub (cheap edges in both directions). The
        // fastest-first trees route through it from *any* root, so the
        // composed all-reduce stays near the hub-limited optimum — 6
        // serialized 1 ms leaf reports into the hub, a hop to the root,
        // and the mirror image back out — instead of paying 25 ms edges.
        let m = CommMatrix::from_fn(8, |s, d| {
            if s == d {
                0.0
            } else if s == 3 || d == 3 {
                1.0
            } else {
                25.0
            }
        });
        let best = allreduce_best_root(&m);
        assert!(
            best.completion_time().as_ms() <= 20.0,
            "hub not exploited: {}",
            best.completion_time()
        );
        // And no root is catastrophically bad — the adaptive trees
        // neutralize root placement (the interesting finding here).
        for r in 0..8 {
            assert!(allreduce_at(&m, r).completion_time().as_ms() <= 30.0);
        }
    }

    #[test]
    fn barrier_has_log_rounds_and_everyone_participates() {
        for p in [2usize, 3, 5, 8, 13] {
            let m = hetero(p);
            let plan = dissemination_barrier(&m);
            let rounds = (p as f64).log2().ceil() as usize;
            assert_eq!(plan.events().len(), rounds * p);
            // Every processor sends exactly `rounds` signals.
            for i in 0..p {
                assert_eq!(
                    plan.events().iter().filter(|e| e.src == i).count(),
                    rounds,
                    "P{i} at P={p}"
                );
            }
        }
    }

    #[test]
    fn barrier_on_uniform_latency_is_log_p_rounds_long() {
        // Zero-size signals: cost = startup only. Uniform 5ms startup →
        // barrier = ceil(log2 P) * 5ms.
        let m = CommMatrix::from_fn(8, |s, d| if s == d { 0.0 } else { 5.0 });
        let plan = dissemination_barrier(&m);
        assert_eq!(plan.completion_time().as_ms(), 15.0);
    }
}

//! Generalized collective schedules.
//!
//! Unlike the total-exchange [`adaptcomm_core::schedule::Schedule`],
//! collective patterns have pattern-specific event sets (a broadcast has
//! `P−1` events, a scatter `P−1`, an all-to-some `|S|·|R|`-ish). This
//! container enforces only the universal model constraints — one send and
//! one receive at a time — and leaves coverage checks to each pattern's
//! constructor.

use adaptcomm_core::schedule::ScheduledEvent;
use adaptcomm_model::units::Millis;
use std::fmt;

/// Why a collective plan is invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// Two events with the same sender overlap.
    SenderOverlap(usize),
    /// Two events with the same receiver overlap.
    ReceiverOverlap(usize),
    /// An event references a processor outside `0..P`.
    OutOfRange(usize),
    /// An event starts before time zero.
    NegativeStart,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::SenderOverlap(k) => write!(f, "sender {k} overlaps itself"),
            PlanError::ReceiverOverlap(k) => write!(f, "receiver {k} overlaps itself"),
            PlanError::OutOfRange(k) => write!(f, "processor {k} out of range"),
            PlanError::NegativeStart => write!(f, "event starts before time zero"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A validated set of timed events implementing one collective.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveSchedule {
    p: usize,
    events: Vec<ScheduledEvent>,
}

impl CollectiveSchedule {
    /// Builds and validates a plan over `p` processors.
    pub fn new(p: usize, mut events: Vec<ScheduledEvent>) -> Result<Self, PlanError> {
        events.sort_by(|a, b| {
            a.start
                .as_ms()
                .total_cmp(&b.start.as_ms())
                .then(a.src.cmp(&b.src))
                .then(a.dst.cmp(&b.dst))
        });
        let mut last_send: Vec<Option<ScheduledEvent>> = vec![None; p];
        let mut last_recv: Vec<Option<ScheduledEvent>> = vec![None; p];
        for e in &events {
            if e.src >= p || e.dst >= p {
                return Err(PlanError::OutOfRange(e.src.max(e.dst)));
            }
            if e.start.as_ms() < 0.0 {
                return Err(PlanError::NegativeStart);
            }
            if let Some(prev) = last_send[e.src] {
                if prev.overlaps(e) {
                    return Err(PlanError::SenderOverlap(e.src));
                }
            }
            if let Some(prev) = last_recv[e.dst] {
                if prev.overlaps(e) {
                    return Err(PlanError::ReceiverOverlap(e.dst));
                }
            }
            let keep_later = |slot: &mut Option<ScheduledEvent>, e: &ScheduledEvent| {
                *slot = Some(match *slot {
                    Some(prev) if prev.finish.as_ms() > e.finish.as_ms() => prev,
                    _ => *e,
                });
            };
            keep_later(&mut last_send[e.src], e);
            keep_later(&mut last_recv[e.dst], e);
        }
        Ok(CollectiveSchedule { p, events })
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.p
    }

    /// The events, sorted by start time.
    pub fn events(&self) -> &[ScheduledEvent] {
        &self.events
    }

    /// Completion time of the collective.
    pub fn completion_time(&self) -> Millis {
        self.events
            .iter()
            .map(|e| e.finish)
            .fold(Millis::ZERO, Millis::max)
    }

    /// Time at which a particular processor has finished all its events.
    pub fn finish_of(&self, proc: usize) -> Millis {
        self.events
            .iter()
            .filter(|e| e.src == proc || e.dst == proc)
            .map(|e| e.finish)
            .fold(Millis::ZERO, Millis::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: usize, dst: usize, start: f64, dur: f64) -> ScheduledEvent {
        ScheduledEvent {
            src,
            dst,
            start: Millis::new(start),
            finish: Millis::new(start + dur),
        }
    }

    #[test]
    fn valid_plan_accepted() {
        let plan = CollectiveSchedule::new(
            3,
            vec![ev(0, 1, 0.0, 5.0), ev(0, 2, 5.0, 3.0), ev(1, 2, 0.0, 2.0)],
        )
        .unwrap();
        assert_eq!(plan.completion_time().as_ms(), 8.0);
        assert_eq!(plan.processors(), 3);
        assert_eq!(plan.finish_of(1).as_ms(), 5.0);
        assert_eq!(plan.events().len(), 3);
    }

    #[test]
    fn sender_overlap_rejected() {
        let r = CollectiveSchedule::new(2, vec![ev(0, 1, 0.0, 5.0), ev(0, 1, 3.0, 4.0)]);
        assert_eq!(r.unwrap_err(), PlanError::SenderOverlap(0));
    }

    #[test]
    fn receiver_overlap_rejected() {
        let r = CollectiveSchedule::new(3, vec![ev(0, 2, 0.0, 5.0), ev(1, 2, 3.0, 4.0)]);
        assert_eq!(r.unwrap_err(), PlanError::ReceiverOverlap(2));
    }

    #[test]
    fn out_of_range_rejected() {
        let r = CollectiveSchedule::new(2, vec![ev(0, 5, 0.0, 1.0)]);
        assert_eq!(r.unwrap_err(), PlanError::OutOfRange(5));
    }

    #[test]
    fn negative_start_rejected() {
        let r = CollectiveSchedule::new(2, vec![ev(0, 1, -1.0, 1.0)]);
        assert_eq!(r.unwrap_err(), PlanError::NegativeStart);
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", PlanError::ReceiverOverlap(3)).contains("receiver 3"));
    }
}

//! All-to-some: a subset of senders each owes a distinct message to a
//! subset of receivers.
//!
//! This is the partial-exchange pattern behind the paper's BADD data
//! staging discussion (§2, §6.4) — data items move from holder nodes to
//! requester nodes. The scheduling machinery is the open shop rule from
//! §4.5, generalized to an arbitrary demand relation instead of the full
//! all-pairs set. The paper's Theorem-3 argument carries over: a sender
//! idles only while its remaining receivers are busy, so completion stays
//! within a row-sum plus a column-sum of the demand matrix.

use crate::plan::CollectiveSchedule;
use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_core::schedule::ScheduledEvent;
use adaptcomm_model::units::Millis;

/// A demand: which ordered pairs must communicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Demand {
    p: usize,
    /// `wants[src]` = receivers src owes a message.
    wants: Vec<Vec<usize>>,
}

impl Demand {
    /// Builds a demand set over `p` processors. Duplicate or self pairs
    /// are rejected.
    pub fn new(p: usize, pairs: &[(usize, usize)]) -> Self {
        let mut wants = vec![Vec::new(); p];
        let mut seen = vec![false; p * p];
        for &(s, d) in pairs {
            assert!(s < p && d < p, "pair ({s},{d}) out of range");
            assert!(s != d, "self pair ({s},{s})");
            assert!(!seen[s * p + d], "duplicate pair ({s},{d})");
            seen[s * p + d] = true;
            wants[s].push(d);
        }
        Demand { p, wants }
    }

    /// Everyone-to-subset demand: each processor sends to every receiver
    /// in `receivers` (except itself).
    pub fn all_to(p: usize, receivers: &[usize]) -> Self {
        let mut pairs = Vec::new();
        for s in 0..p {
            for &r in receivers {
                if r != s {
                    pairs.push((s, r));
                }
            }
        }
        Self::new(p, &pairs)
    }

    /// The demanded pairs, sender-major.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.wants
            .iter()
            .enumerate()
            .flat_map(|(s, ds)| ds.iter().map(move |&d| (s, d)))
    }

    /// Number of demanded messages.
    pub fn len(&self) -> usize {
        self.wants.iter().map(|w| w.len()).sum()
    }

    /// True if nothing is demanded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The lower bound for this demand under `matrix`: the largest
    /// per-processor send or receive workload.
    pub fn lower_bound(&self, matrix: &CommMatrix) -> Millis {
        let mut send = vec![0.0f64; self.p];
        let mut recv = vec![0.0f64; self.p];
        for (s, d) in self.pairs() {
            let c = matrix.cost(s, d).as_ms();
            send[s] += c;
            recv[d] += c;
        }
        Millis::new(send.iter().chain(recv.iter()).copied().fold(0.0, f64::max))
    }
}

/// Schedules a demand with the generalized open shop rule.
pub fn schedule_demand(matrix: &CommMatrix, demand: &Demand) -> CollectiveSchedule {
    let p = matrix.len();
    assert_eq!(demand.p, p, "demand does not match the matrix");
    let mut send_avail = vec![0.0f64; p];
    let mut recv_avail = vec![0.0f64; p];
    let mut sets: Vec<Vec<usize>> = demand.wants.clone();
    let mut active: Vec<usize> = (0..p).filter(|&i| !sets[i].is_empty()).collect();
    let mut events = Vec::with_capacity(demand.len());
    while !active.is_empty() {
        let (pos, &i) = active
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| send_avail[a].total_cmp(&send_avail[b]).then(a.cmp(&b)))
            .expect("non-empty");
        let (rpos, &j) = sets[i]
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| recv_avail[a].total_cmp(&recv_avail[b]).then(a.cmp(&b)))
            .expect("active senders have receivers");
        let start = send_avail[i].max(recv_avail[j]);
        let fin = start + matrix.cost(i, j).as_ms();
        events.push(ScheduledEvent {
            src: i,
            dst: j,
            start: Millis::new(start),
            finish: Millis::new(fin),
        });
        send_avail[i] = fin;
        recv_avail[j] = fin;
        sets[i].swap_remove(rpos);
        if sets[i].is_empty() {
            active.swap_remove(pos);
        }
    }
    CollectiveSchedule::new(p, events).expect("open shop respects ports by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hetero(p: usize) -> CommMatrix {
        CommMatrix::from_fn(p, |s, d| {
            if s == d {
                0.0
            } else {
                ((s * 7 + d * 11) % 13 + 1) as f64
            }
        })
    }

    #[test]
    fn demand_construction() {
        let d = Demand::new(4, &[(0, 1), (2, 1), (3, 0)]);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        let pairs: Vec<_> = d.pairs().collect();
        assert!(pairs.contains(&(2, 1)));
    }

    #[test]
    fn all_to_subset() {
        let d = Demand::all_to(5, &[0, 1]);
        // Senders 0..5 to receivers {0,1} minus self: 4 + 4 = 8? No:
        // sender 0 → {1}, sender 1 → {0}, senders 2,3,4 → {0,1} = 2 each.
        assert_eq!(d.len(), 1 + 1 + 2 + 2 + 2);
    }

    #[test]
    fn schedule_covers_demand_exactly() {
        let m = hetero(6);
        let d = Demand::all_to(6, &[0, 2, 4]);
        let plan = schedule_demand(&m, &d);
        assert_eq!(plan.events().len(), d.len());
        let mut want: Vec<_> = d.pairs().collect();
        let mut got: Vec<_> = plan.events().iter().map(|e| (e.src, e.dst)).collect();
        want.sort();
        got.sort();
        assert_eq!(want, got);
    }

    #[test]
    fn stays_within_twice_the_demand_lower_bound() {
        for seed in 0..10usize {
            let m = hetero(8);
            let receivers: Vec<usize> = (0..8).filter(|r| (r + seed) % 3 != 0).collect();
            let d = Demand::all_to(8, &receivers);
            if d.is_empty() {
                continue;
            }
            let plan = schedule_demand(&m, &d);
            let lb = d.lower_bound(&m).as_ms();
            assert!(
                plan.completion_time().as_ms() <= 2.0 * lb + 1e-9,
                "seed {seed}: {} > 2·{lb}",
                plan.completion_time()
            );
        }
    }

    #[test]
    fn empty_demand_yields_empty_plan() {
        let m = hetero(3);
        let d = Demand::new(3, &[]);
        let plan = schedule_demand(&m, &d);
        assert!(plan.events().is_empty());
        assert_eq!(plan.completion_time().as_ms(), 0.0);
    }

    #[test]
    fn single_receiver_demand_serializes_like_gather() {
        let m = hetero(5);
        let d = Demand::all_to(5, &[3]);
        let plan = schedule_demand(&m, &d);
        // Receiver 3 is the bottleneck: completion = its receive load.
        assert!((plan.completion_time().as_ms() - d.lower_bound(&m).as_ms()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "duplicate pair")]
    fn duplicate_pair_rejected() {
        let _ = Demand::new(3, &[(0, 1), (0, 1)]);
    }

    #[test]
    #[should_panic(expected = "self pair")]
    fn self_pair_rejected() {
        let _ = Demand::new(3, &[(1, 1)]);
    }
}

//! Heterogeneity-aware schedules for other collective patterns.
//!
//! The paper's framework is "a general one, and can be used for different
//! collective communication patterns" (§1); the published evaluation only
//! instantiates it for total exchange. This crate instantiates it for the
//! rest of the classic collectives, under the same model (per-pair
//! `T_ij + m/B_ij` costs, one send and one receive at a time, no message
//! combining except where a pattern is defined by combining):
//!
//! * [`plan`] — the generalized schedule container and validity checker
//!   (port constraints, per-pattern coverage);
//! * [`broadcast`] — flat, binomial, and the heterogeneity-aware
//!   *fastest-completion-first* tree;
//! * [`scatter`] / [`gather`] — root-bound patterns where ordering is
//!   provably irrelevant to completion but matters for average latency;
//! * [`reduce`] — mirror of broadcast with associative combining;
//! * [`all_to_some`] — partial exchanges via a generalized open shop
//!   list scheduler.
//!
//! All-gather is intentionally *absent* as a separate implementation: a
//! no-combining all-gather is exactly a total exchange whose per-sender
//! message sizes are row-constant, so `adaptcomm-core`'s schedulers solve
//! it directly (see `examples/collectives.rs`).

//!
//! # Example
//!
//! ```
//! use adaptcomm_collectives::broadcast;
//! use adaptcomm_core::matrix::CommMatrix;
//!
//! // A hub-and-spoke network: node 1 has fast links everywhere.
//! let m = CommMatrix::from_fn(6, |s, d| {
//!     if s == d { 0.0 } else if s == 1 || d == 1 { 1.0 } else { 10.0 }
//! });
//! let greedy = broadcast::fastest_first(&m, 0);
//! let naive = broadcast::flat(&m, 0);
//! assert!(greedy.completion_time().as_ms() <= naive.completion_time().as_ms());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Index-based loops mirror the published pseudocode of the ported
// algorithms; iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]

pub mod all_to_some;
pub mod broadcast;
pub mod composed;
pub mod gather;
pub mod plan;
pub mod reduce;
pub mod scatter;

pub use plan::{CollectiveSchedule, PlanError};

//! Reduce: combine a value from every processor at the root.
//!
//! Reduction is the one collective where combining at intermediate nodes
//! is intrinsic (the operator is associative), so tree schedules apply.
//! We reuse the broadcast machinery: build a heterogeneity-aware
//! broadcast tree from the root, then run it *backwards* — each node
//! sends its combined partial value to its tree parent once all of its
//! children have reported. Combine cost is taken as zero (the paper's
//! model prices communication only).

use crate::broadcast;
use crate::plan::CollectiveSchedule;
use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_core::schedule::ScheduledEvent;
use adaptcomm_model::units::Millis;

/// Which tree the reduction runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceTree {
    /// Flat star: every node sends straight to the root.
    Flat,
    /// The heterogeneity-aware fastest-first broadcast tree, reversed.
    FastestFirst,
}

/// Builds a reduction schedule into `root`.
pub fn reduce(matrix: &CommMatrix, root: usize, tree: ReduceTree) -> CollectiveSchedule {
    let p = matrix.len();
    assert!(root < p, "root {root} out of range");

    // parent[v] for the chosen tree.
    let mut parent = vec![usize::MAX; p];
    match tree {
        ReduceTree::Flat => {
            for v in 0..p {
                if v != root {
                    parent[v] = root;
                }
            }
        }
        ReduceTree::FastestFirst => {
            let bcast = broadcast::fastest_first(matrix, root);
            for e in bcast.events() {
                parent[e.dst] = e.src;
            }
        }
    }

    // children lists.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); p];
    for v in 0..p {
        if v != root {
            children[parent[v]].push(v);
        }
    }

    // Schedule bottom-up: a node may send once all children reported.
    // Receive ports serialize; we greedily admit ready children in
    // earliest-ready order at each parent.
    let mut ready: Vec<Option<f64>> = (0..p)
        .map(|v| {
            if children[v].is_empty() && v != root {
                Some(0.0)
            } else {
                None
            }
        })
        .collect();
    let mut reported = vec![0usize; p];
    let mut recv_avail = vec![0.0f64; p];
    let mut events: Vec<ScheduledEvent> = Vec::with_capacity(p - 1);
    let mut sent = vec![false; p];
    let mut remaining = p - 1;
    while remaining > 0 {
        // Pick the ready, unsent node whose transfer can finish earliest.
        let mut best: Option<(f64, f64, usize)> = None; // (finish, start, node)
        for v in 0..p {
            if v == root || sent[v] {
                continue;
            }
            let Some(r) = ready[v] else { continue };
            let start = r.max(recv_avail[parent[v]]);
            let fin = start + matrix.cost(v, parent[v]).as_ms();
            let cand = (fin, start, v);
            best = Some(match best {
                None => cand,
                Some(b) => {
                    if (cand.0, cand.2) < (b.0, b.2) {
                        cand
                    } else {
                        b
                    }
                }
            });
        }
        let (fin, start, v) = best.expect("a ready node always exists in a tree");
        let par = parent[v];
        events.push(ScheduledEvent {
            src: v,
            dst: par,
            start: Millis::new(start),
            finish: Millis::new(fin),
        });
        sent[v] = true;
        remaining -= 1;
        recv_avail[par] = fin;
        reported[par] += 1;
        if par != root && reported[par] == children[par].len() {
            ready[par] = Some(fin);
        }
    }
    CollectiveSchedule::new(p, events).expect("reduction respects ports by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hetero(p: usize) -> CommMatrix {
        CommMatrix::from_fn(p, |s, d| {
            if s == d {
                0.0
            } else {
                ((s * 5 + d * 3) % 11 + 1) as f64
            }
        })
    }

    /// Checks the reduction semantics: every non-root node sends exactly
    /// once, after all its subtree inputs arrived.
    fn assert_is_reduction(plan: &CollectiveSchedule, root: usize) {
        let p = plan.processors();
        let mut sent = vec![0usize; p];
        let mut last_recv_finish = vec![0.0f64; p];
        for e in plan.events() {
            sent[e.src] += 1;
        }
        for v in 0..p {
            if v != root {
                assert_eq!(sent[v], 1, "node {v} must report exactly once");
            }
        }
        assert_eq!(sent[root], 0);
        // Causality: a node's send starts after every message *to* it.
        for e in plan.events() {
            last_recv_finish[e.dst] = last_recv_finish[e.dst].max(e.finish.as_ms());
        }
        for e in plan.events() {
            let upstream: f64 = plan
                .events()
                .iter()
                .filter(|u| u.dst == e.src)
                .map(|u| u.finish.as_ms())
                .fold(0.0, f64::max);
            assert!(
                e.start.as_ms() >= upstream - 1e-9,
                "node {} sent before its children reported",
                e.src
            );
        }
    }

    #[test]
    fn flat_reduce_equals_gather_completion() {
        let m = hetero(6);
        let plan = reduce(&m, 0, ReduceTree::Flat);
        assert_is_reduction(&plan, 0);
        assert!((plan.completion_time().as_ms() - m.recv_total(0).as_ms()).abs() < 1e-9);
    }

    #[test]
    fn tree_reduce_is_valid_and_never_worse_than_flat_on_hub_networks() {
        // A cheap hub makes the tree clearly better than the star.
        let m = CommMatrix::from_fn(8, |s, d| {
            if s == d {
                0.0
            } else if s == 1 || d == 1 {
                1.0
            } else {
                15.0
            }
        });
        let tree = reduce(&m, 0, ReduceTree::FastestFirst);
        let flat = reduce(&m, 0, ReduceTree::Flat);
        assert_is_reduction(&tree, 0);
        assert!(
            tree.completion_time().as_ms() <= flat.completion_time().as_ms() + 1e-9,
            "tree {} vs flat {}",
            tree.completion_time(),
            flat.completion_time()
        );
    }

    #[test]
    fn reduce_valid_for_all_roots() {
        let m = hetero(7);
        for root in 0..7 {
            for tree in [ReduceTree::Flat, ReduceTree::FastestFirst] {
                let plan = reduce(&m, root, tree);
                assert_is_reduction(&plan, root);
            }
        }
    }

    #[test]
    fn two_processor_reduce() {
        let m = CommMatrix::from_rows(&[vec![0.0, 3.0], vec![7.0, 0.0]]);
        let plan = reduce(&m, 0, ReduceTree::FastestFirst);
        assert_eq!(plan.completion_time().as_ms(), 7.0);
    }
}

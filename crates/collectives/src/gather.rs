//! Gather: every processor sends its distinct message to the root.
//!
//! The mirror of scatter: all bytes funnel into the root's single receive
//! port, so completion equals the root's receive total for any order.
//! Because the *senders* are distinct here, order does free them up at
//! different times — longest-first releases the busiest sender last,
//! shortest-first lets most senders resume computation soonest.

use crate::plan::CollectiveSchedule;
use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_core::schedule::ScheduledEvent;
use adaptcomm_model::units::Millis;

/// Sender admission order at the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherOrder {
    /// Increasing source index.
    ByIndex,
    /// Shortest transfer first.
    ShortestFirst,
}

/// Builds the gather schedule into `root`.
pub fn gather(matrix: &CommMatrix, root: usize, order: GatherOrder) -> CollectiveSchedule {
    let p = matrix.len();
    assert!(root < p, "root {root} out of range");
    let mut srcs: Vec<usize> = (0..p).filter(|&s| s != root).collect();
    if order == GatherOrder::ShortestFirst {
        srcs.sort_by(|&a, &b| {
            matrix
                .cost(a, root)
                .as_ms()
                .total_cmp(&matrix.cost(b, root).as_ms())
                .then(a.cmp(&b))
        });
    }
    let mut t = 0.0f64;
    let mut events = Vec::with_capacity(p - 1);
    for src in srcs {
        let fin = t + matrix.cost(src, root).as_ms();
        events.push(ScheduledEvent {
            src,
            dst: root,
            start: Millis::new(t),
            finish: Millis::new(fin),
        });
        t = fin;
    }
    CollectiveSchedule::new(p, events).expect("gather is trivially valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> CommMatrix {
        CommMatrix::from_fn(5, |s, d| {
            if s == d {
                0.0
            } else {
                ((2 * s + d) % 9 + 1) as f64
            }
        })
    }

    #[test]
    fn completion_equals_root_receive_total() {
        let m = matrix();
        for order in [GatherOrder::ByIndex, GatherOrder::ShortestFirst] {
            let plan = gather(&m, 3, order);
            assert!((plan.completion_time().as_ms() - m.recv_total(3).as_ms()).abs() < 1e-9);
        }
    }

    #[test]
    fn every_sender_sends_exactly_once() {
        let plan = gather(&matrix(), 0, GatherOrder::ByIndex);
        let mut sent = vec![0; 5];
        for e in plan.events() {
            assert_eq!(e.dst, 0);
            sent[e.src] += 1;
        }
        assert_eq!(sent, vec![0, 1, 1, 1, 1]);
    }

    #[test]
    fn shortest_first_is_sorted() {
        let plan = gather(&matrix(), 2, GatherOrder::ShortestFirst);
        let durs: Vec<f64> = plan.events().iter().map(|e| e.duration().as_ms()).collect();
        for w in durs.windows(2) {
            assert!(w[0] <= w[1] + 1e-9);
        }
    }
}

//! Broadcast: one root's message to every other processor.
//!
//! Three schedules:
//!
//! * [`flat`] — the root sends to every receiver itself, sequentially.
//!   Completion = the root's send total; fine for tiny `P`, terrible
//!   otherwise.
//! * [`binomial`] — the classic homogeneous recursion: in round `k`
//!   every informed node forwards to the node `2^k` ranks away. Optimal
//!   on uniform networks (`⌈log₂P⌉` rounds), oblivious to heterogeneity.
//! * [`fastest_first`] — the heterogeneity-aware greedy: repeatedly
//!   commit the `(informed sender, uninformed receiver)` pair that can
//!   *complete* earliest under the current availability profile. This is
//!   the natural instantiation of the paper's framework for broadcast:
//!   the timing diagram is built event by event from directory costs.

use crate::plan::CollectiveSchedule;
use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_core::schedule::ScheduledEvent;
use adaptcomm_model::units::Millis;

/// Flat (sequential) broadcast from `root`.
pub fn flat(matrix: &CommMatrix, root: usize) -> CollectiveSchedule {
    let p = matrix.len();
    assert!(root < p, "root {root} out of range");
    let mut t = 0.0f64;
    let mut events = Vec::with_capacity(p - 1);
    for dst in (0..p).filter(|&d| d != root) {
        let fin = t + matrix.cost(root, dst).as_ms();
        events.push(ScheduledEvent {
            src: root,
            dst,
            start: Millis::new(t),
            finish: Millis::new(fin),
        });
        t = fin;
    }
    CollectiveSchedule::new(p, events).expect("flat broadcast is trivially valid")
}

/// Binomial-tree broadcast from `root` (rank-relative doubling), timed
/// with the real heterogeneous costs.
pub fn binomial(matrix: &CommMatrix, root: usize) -> CollectiveSchedule {
    let p = matrix.len();
    assert!(root < p, "root {root} out of range");
    // ready[v] = when node v has the message and a free send port.
    let mut ready = vec![f64::NAN; p];
    ready[root] = 0.0;
    let mut events = Vec::with_capacity(p - 1);
    let mut stride = 1usize;
    while stride < p {
        // All nodes with relative rank < stride are informed; each sends
        // to relative rank + stride.
        for rel in 0..stride.min(p.saturating_sub(stride)) {
            let target_rel = rel + stride;
            if target_rel >= p {
                continue;
            }
            let src = (root + rel) % p;
            let dst = (root + target_rel) % p;
            let start = ready[src];
            debug_assert!(!start.is_nan(), "sender must be informed");
            let fin = start + matrix.cost(src, dst).as_ms();
            events.push(ScheduledEvent {
                src,
                dst,
                start: Millis::new(start),
                finish: Millis::new(fin),
            });
            ready[src] = fin;
            ready[dst] = fin;
        }
        stride *= 2;
    }
    CollectiveSchedule::new(p, events).expect("binomial tree respects ports by construction")
}

/// Heterogeneity-aware broadcast: earliest-completion-first greedy.
pub fn fastest_first(matrix: &CommMatrix, root: usize) -> CollectiveSchedule {
    let p = matrix.len();
    assert!(root < p, "root {root} out of range");
    let mut informed = vec![false; p];
    let mut avail = vec![0.0f64; p];
    informed[root] = true;
    let mut events = Vec::with_capacity(p - 1);
    for _ in 1..p {
        // Choose the (sender, receiver) pair with the earliest completion.
        let mut best: Option<(f64, usize, usize)> = None;
        for s in 0..p {
            if !informed[s] {
                continue;
            }
            for r in 0..p {
                if informed[r] {
                    continue;
                }
                let fin = avail[s] + matrix.cost(s, r).as_ms();
                let cand = (fin, r, s);
                best = Some(match best {
                    None => cand,
                    Some(b) => {
                        if (cand.0, cand.1, cand.2) < (b.0, b.1, b.2) {
                            cand
                        } else {
                            b
                        }
                    }
                });
            }
        }
        let (fin, r, s) = best.expect("an uninformed node remains");
        events.push(ScheduledEvent {
            src: s,
            dst: r,
            start: Millis::new(avail[s]),
            finish: Millis::new(fin),
        });
        avail[s] = fin;
        avail[r] = fin;
        informed[r] = true;
    }
    CollectiveSchedule::new(p, events).expect("greedy broadcast respects ports")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(p: usize, c: f64) -> CommMatrix {
        CommMatrix::from_fn(p, |s, d| if s == d { 0.0 } else { c })
    }

    /// Verify every node actually receives the message exactly once and
    /// only after its sender was informed.
    fn assert_is_broadcast(plan: &CollectiveSchedule, root: usize) {
        let p = plan.processors();
        let mut informed_at = vec![f64::INFINITY; p];
        informed_at[root] = 0.0;
        let mut received = vec![0usize; p];
        for e in plan.events() {
            assert!(
                e.start.as_ms() >= informed_at[e.src] - 1e-9,
                "node {} forwarded before being informed",
                e.src
            );
            informed_at[e.dst] = informed_at[e.dst].min(e.finish.as_ms());
            received[e.dst] += 1;
        }
        for v in 0..p {
            if v != root {
                assert_eq!(received[v], 1, "node {v} must receive exactly once");
            }
        }
        assert_eq!(received[root], 0, "the root receives nothing");
    }

    #[test]
    fn flat_broadcast_shape() {
        let m = uniform(5, 3.0);
        let plan = flat(&m, 2);
        assert_is_broadcast(&plan, 2);
        assert_eq!(plan.completion_time().as_ms(), 12.0); // 4 sequential sends
    }

    #[test]
    fn binomial_is_logarithmic_on_uniform_networks() {
        for p in [2, 4, 8, 16] {
            let m = uniform(p, 1.0);
            let plan = binomial(&m, 0);
            assert_is_broadcast(&plan, 0);
            let rounds = (p as f64).log2().ceil();
            assert!(
                (plan.completion_time().as_ms() - rounds).abs() < 1e-9,
                "P={p}: got {}, want {rounds}",
                plan.completion_time()
            );
        }
    }

    #[test]
    fn binomial_handles_non_power_of_two_and_nonzero_root() {
        for p in [3, 5, 6, 7, 11] {
            for root in [0, 1, p - 1] {
                let m = uniform(p, 2.0);
                let plan = binomial(&m, root);
                assert_is_broadcast(&plan, root);
            }
        }
    }

    #[test]
    fn fastest_first_matches_binomial_on_uniform_networks() {
        let m = uniform(8, 1.0);
        let greedy = fastest_first(&m, 0);
        assert_is_broadcast(&greedy, 0);
        assert_eq!(greedy.completion_time().as_ms(), 3.0); // log2(8)
    }

    #[test]
    fn fastest_first_beats_binomial_on_heterogeneous_networks() {
        // One fast hub (node 1) everyone should relay through; the
        // binomial tree is stuck with its fixed rank pattern.
        let m = CommMatrix::from_fn(8, |s, d| {
            if s == d {
                0.0
            } else if s == 1 || d == 1 {
                1.0
            } else {
                20.0
            }
        });
        let greedy = fastest_first(&m, 0);
        let tree = binomial(&m, 0);
        assert_is_broadcast(&greedy, 0);
        assert!(
            greedy.completion_time().as_ms() <= tree.completion_time().as_ms() + 1e-9,
            "greedy {} vs binomial {}",
            greedy.completion_time(),
            tree.completion_time()
        );
    }

    #[test]
    fn fastest_first_never_loses_to_flat() {
        let m = CommMatrix::from_fn(7, |s, d| {
            if s == d {
                0.0
            } else {
                ((s * 13 + d * 7) % 17 + 1) as f64
            }
        });
        let greedy = fastest_first(&m, 3);
        let naive = flat(&m, 3);
        assert_is_broadcast(&greedy, 3);
        assert!(greedy.completion_time().as_ms() <= naive.completion_time().as_ms() + 1e-9);
    }

    #[test]
    fn two_processor_broadcast() {
        let m = CommMatrix::from_rows(&[vec![0.0, 4.0], vec![5.0, 0.0]]);
        for f in [flat, binomial, fastest_first] {
            let plan = f(&m, 0);
            assert_eq!(plan.completion_time().as_ms(), 4.0);
        }
    }
}

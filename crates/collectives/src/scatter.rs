//! Scatter: the root sends a *distinct* message to every other processor.
//!
//! Without combine-and-forward (the paper rules it out for voluminous
//! data), every byte leaves through the root's single send port, so the
//! completion time is the root's send total *regardless of order*. Order
//! still matters for the *average* receiver completion: shortest
//! processing time (SPT) first minimizes the mean, a classic single
//! machine scheduling fact. Both orders are provided; tests pin the
//! invariant and the SPT optimality.

use crate::plan::CollectiveSchedule;
use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_core::schedule::ScheduledEvent;
use adaptcomm_model::units::Millis;

/// How the root orders its sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScatterOrder {
    /// Increasing destination index (oblivious).
    ByIndex,
    /// Shortest message time first — minimizes mean receiver completion.
    ShortestFirst,
    /// Longest message time first.
    LongestFirst,
}

/// Builds the scatter schedule from `root` with the given ordering.
pub fn scatter(matrix: &CommMatrix, root: usize, order: ScatterOrder) -> CollectiveSchedule {
    let p = matrix.len();
    assert!(root < p, "root {root} out of range");
    let mut dsts: Vec<usize> = (0..p).filter(|&d| d != root).collect();
    match order {
        ScatterOrder::ByIndex => {}
        ScatterOrder::ShortestFirst => dsts.sort_by(|&a, &b| {
            matrix
                .cost(root, a)
                .as_ms()
                .total_cmp(&matrix.cost(root, b).as_ms())
                .then(a.cmp(&b))
        }),
        ScatterOrder::LongestFirst => dsts.sort_by(|&a, &b| {
            matrix
                .cost(root, b)
                .as_ms()
                .total_cmp(&matrix.cost(root, a).as_ms())
                .then(a.cmp(&b))
        }),
    }
    let mut t = 0.0f64;
    let mut events = Vec::with_capacity(p - 1);
    for dst in dsts {
        let fin = t + matrix.cost(root, dst).as_ms();
        events.push(ScheduledEvent {
            src: root,
            dst,
            start: Millis::new(t),
            finish: Millis::new(fin),
        });
        t = fin;
    }
    CollectiveSchedule::new(p, events).expect("scatter is trivially valid")
}

/// Mean completion time over receivers — the latency metric SPT optimizes.
pub fn mean_receiver_completion(plan: &CollectiveSchedule, root: usize) -> Millis {
    let others: Vec<f64> = plan
        .events()
        .iter()
        .filter(|e| e.src == root)
        .map(|e| e.finish.as_ms())
        .collect();
    if others.is_empty() {
        Millis::ZERO
    } else {
        Millis::new(others.iter().sum::<f64>() / others.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> CommMatrix {
        CommMatrix::from_fn(5, |s, d| {
            if s == d {
                0.0
            } else {
                ((s + 3 * d) % 7 + 1) as f64
            }
        })
    }

    #[test]
    fn completion_is_order_invariant() {
        let m = matrix();
        let total = m.send_total(0).as_ms();
        for order in [
            ScatterOrder::ByIndex,
            ScatterOrder::ShortestFirst,
            ScatterOrder::LongestFirst,
        ] {
            let plan = scatter(&m, 0, order);
            assert!(
                (plan.completion_time().as_ms() - total).abs() < 1e-9,
                "{order:?}: completion must equal the root's send total"
            );
            assert_eq!(plan.events().len(), 4);
        }
    }

    #[test]
    fn spt_minimizes_mean_completion() {
        let m = matrix();
        let spt = mean_receiver_completion(&scatter(&m, 0, ScatterOrder::ShortestFirst), 0);
        let lpt = mean_receiver_completion(&scatter(&m, 0, ScatterOrder::LongestFirst), 0);
        let idx = mean_receiver_completion(&scatter(&m, 0, ScatterOrder::ByIndex), 0);
        assert!(spt.as_ms() <= idx.as_ms() + 1e-9);
        assert!(spt.as_ms() <= lpt.as_ms() + 1e-9);
    }

    #[test]
    fn spt_order_is_sorted() {
        let m = matrix();
        let plan = scatter(&m, 2, ScatterOrder::ShortestFirst);
        let durs: Vec<f64> = plan.events().iter().map(|e| e.duration().as_ms()).collect();
        for w in durs.windows(2) {
            assert!(w[0] <= w[1] + 1e-9);
        }
    }

    #[test]
    fn every_receiver_gets_exactly_one_message() {
        let m = matrix();
        let plan = scatter(&m, 1, ScatterOrder::ByIndex);
        let mut got = vec![0; 5];
        for e in plan.events() {
            assert_eq!(e.src, 1);
            got[e.dst] += 1;
        }
        assert_eq!(got, vec![1, 0, 1, 1, 1]);
    }
}

//! Property tests: every collective plan is valid and semantically
//! complete on arbitrary heterogeneous matrices.
#![allow(clippy::needless_range_loop)] // index loops mirror the checked invariants

use adaptcomm_collectives::all_to_some::{schedule_demand, Demand};
use adaptcomm_collectives::broadcast;
use adaptcomm_collectives::composed::{allreduce_at, dissemination_barrier};
use adaptcomm_collectives::gather::{gather, GatherOrder};
use adaptcomm_collectives::reduce::{reduce, ReduceTree};
use adaptcomm_collectives::scatter::{scatter, ScatterOrder};
use adaptcomm_core::matrix::CommMatrix;
use proptest::prelude::*;

fn comm_matrix(max_p: usize) -> impl Strategy<Value = CommMatrix> {
    (2..=max_p).prop_flat_map(|p| {
        proptest::collection::vec(0.1f64..60.0, p * p).prop_map(move |mut v| {
            for i in 0..p {
                v[i * p + i] = 0.0;
            }
            let rows: Vec<Vec<f64>> = v.chunks(p).map(|r| r.to_vec()).collect();
            CommMatrix::from_rows(&rows)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every broadcast variant informs every node exactly once, never
    /// forwards before being informed, and the greedy variant never
    /// loses to the flat one.
    #[test]
    fn broadcasts_are_complete(m in comm_matrix(10), pick in 0usize..100) {
        let root = pick % m.len();
        let flat = broadcast::flat(&m, root);
        let greedy = broadcast::fastest_first(&m, root);
        for plan in [&flat, &greedy] {
            let p = plan.processors();
            let mut informed_at = vec![f64::INFINITY; p];
            informed_at[root] = 0.0;
            let mut received = vec![0usize; p];
            for e in plan.events() {
                prop_assert!(e.start.as_ms() >= informed_at[e.src] - 1e-9);
                informed_at[e.dst] = informed_at[e.dst].min(e.finish.as_ms());
                received[e.dst] += 1;
            }
            for v in 0..p {
                prop_assert_eq!(received[v], usize::from(v != root));
            }
        }
        prop_assert!(greedy.completion_time().as_ms() <= flat.completion_time().as_ms() + 1e-9);
    }

    /// Reduce trees deliver exactly one report per non-root node, after
    /// all of that node's inputs.
    #[test]
    fn reduces_are_causal(m in comm_matrix(9), pick in 0usize..100) {
        let root = pick % m.len();
        for tree in [ReduceTree::Flat, ReduceTree::FastestFirst] {
            let plan = reduce(&m, root, tree);
            let mut sent = vec![0usize; m.len()];
            for e in plan.events() {
                sent[e.src] += 1;
                let upstream = plan
                    .events()
                    .iter()
                    .filter(|u| u.dst == e.src)
                    .map(|u| u.finish.as_ms())
                    .fold(0.0f64, f64::max);
                prop_assert!(e.start.as_ms() >= upstream - 1e-9);
            }
            for v in 0..m.len() {
                prop_assert_eq!(sent[v], usize::from(v != root));
            }
        }
    }

    /// Scatter and gather completions are order-invariant (root port is
    /// the bottleneck).
    #[test]
    fn scatter_gather_invariants(m in comm_matrix(9), pick in 0usize..100) {
        let root = pick % m.len();
        let by_index = scatter(&m, root, ScatterOrder::ByIndex).completion_time().as_ms();
        let spt = scatter(&m, root, ScatterOrder::ShortestFirst).completion_time().as_ms();
        let lpt = scatter(&m, root, ScatterOrder::LongestFirst).completion_time().as_ms();
        prop_assert!((by_index - spt).abs() < 1e-9);
        prop_assert!((by_index - lpt).abs() < 1e-9);
        prop_assert!((by_index - m.send_total(root).as_ms()).abs() < 1e-9);
        let g1 = gather(&m, root, GatherOrder::ByIndex).completion_time().as_ms();
        let g2 = gather(&m, root, GatherOrder::ShortestFirst).completion_time().as_ms();
        prop_assert!((g1 - g2).abs() < 1e-9);
        prop_assert!((g1 - m.recv_total(root).as_ms()).abs() < 1e-9);
    }

    /// All-to-some stays within twice its demand-specific lower bound
    /// (the Theorem-3 argument carries over).
    #[test]
    fn all_to_some_within_twice_lb(m in comm_matrix(9), mask in 1u32..127) {
        let receivers: Vec<usize> =
            (0..m.len()).filter(|&r| mask & (1 << (r % 7)) != 0).collect();
        if receivers.is_empty() {
            return Ok(());
        }
        let demand = Demand::all_to(m.len(), &receivers);
        if demand.is_empty() {
            return Ok(());
        }
        let plan = schedule_demand(&m, &demand);
        prop_assert_eq!(plan.events().len(), demand.len());
        prop_assert!(
            plan.completion_time().as_ms() <= 2.0 * demand.lower_bound(&m).as_ms() + 1e-6
        );
    }

    /// The all-reduce composition is causally staged and the barrier
    /// sends exactly ⌈log₂P⌉ signals per node.
    #[test]
    fn composed_collectives_hold(m in comm_matrix(9)) {
        let ar = allreduce_at(&m, 0);
        let reduce_end = ar.reduce.completion_time().as_ms();
        for e in ar.broadcast.events() {
            prop_assert!(e.start.as_ms() >= reduce_end - 1e-9);
        }
        let barrier = dissemination_barrier(&m);
        let rounds = (m.len() as f64).log2().ceil() as usize;
        prop_assert_eq!(barrier.events().len(), rounds * m.len());
    }
}

//! Chaos harness: deterministic fault injection for the closed loop.
//!
//! The runtime's recovery machinery (park → backoff-probe →
//! merge-and-replan in `adaptcomm_runtime::adapt`, measurement trust in
//! `adaptcomm_runtime::prober`) is only worth having if something
//! exercises it. This crate injects the three fault classes the paper's
//! setting actually suffers — processor crashes mid-collective, network
//! partitions with scheduled heals, and links that lie about their
//! bandwidth — from one seeded, deterministic [`ChaosPlan`]:
//!
//! * [`ChaosEvolution`] realizes the plan physically: blocked links
//!   collapse to a dead floor, lying links slow to `1/factor`;
//! * [`ChaosTransport`] wraps any byte transport and loses deliveries
//!   that land inside a fault window (the in-flight casualty case);
//! * the plan itself is a
//!   [`MeasurementTamper`](adaptcomm_runtime::prober::MeasurementTamper):
//!   lying links inflate their published fits by `factor`, which is
//!   exactly what the trust cross-check quarantines;
//! * [`run_chaos`] grades a run against its fault-free control —
//!   completion SLO ([`SLO_FACTOR`]), exactly-once receipts, per-fault
//!   recovery times.
//!
//! Determinism is load-bearing: same plan, same seed, same network —
//! same recovery, bit for bit. That is what lets integration tests
//! assert SLOs instead of eyeballing flaky reruns.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod evolution;
pub mod plan;
pub mod runner;
pub mod transport;

pub use evolution::{ChaosEvolution, DEAD_SCALE};
pub use plan::{ChaosEvent, ChaosPlan};
pub use runner::{
    chaos_settings, fault_free_makespan, run_chaos, run_plan, run_plan_with, ChaosReport,
    FaultSummary, CHAOS_ATTEMPTS, CHAOS_DROP_KBPS, SLO_FACTOR,
};
pub use transport::ChaosTransport;

//! Fault injection at the byte path.

use crate::plan::ChaosPlan;
use adaptcomm_model::units::Millis;
use adaptcomm_runtime::transport::ReceiptSummary;
use adaptcomm_runtime::{RuntimeError, Transport};

/// A [`Transport`] decorator that drops deliveries landing inside a
/// fault window. The shaped engine announces each transfer's modeled
/// `[start, finish]`; a payload whose *finish* falls while its link is
/// crashed or partitioned never reaches the destination — the message
/// was in flight when the fault hit — and the engine surfaces the
/// plan's typed error with `lost_in_flight` set, so the recovery driver
/// re-queues it exactly once.
pub struct ChaosTransport<'a, T: Transport + ?Sized> {
    inner: &'a T,
    plan: &'a ChaosPlan,
}

impl<'a, T: Transport + ?Sized> ChaosTransport<'a, T> {
    /// Wraps `inner`, injecting the faults of `plan`.
    pub fn new(inner: &'a T, plan: &'a ChaosPlan) -> Self {
        ChaosTransport { inner, plan }
    }
}

impl<T: Transport + ?Sized> Transport for ChaosTransport<'_, T> {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn deliver(&self, src: usize, dst: usize, payload: Vec<u8>) -> Result<(), RuntimeError> {
        self.inner.deliver(src, dst, payload)
    }

    fn deliver_timed(
        &self,
        src: usize,
        dst: usize,
        payload: Vec<u8>,
        start: Millis,
        finish: Millis,
    ) -> Result<(), RuntimeError> {
        if let Some(err) = self.plan.blocking_error(src, dst, finish) {
            return Err(err);
        }
        self.inner.deliver_timed(src, dst, payload, start, finish)
    }

    fn receipts(&self) -> Vec<ReceiptSummary> {
        self.inner.receipts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptcomm_runtime::ChannelTransport;

    #[test]
    fn deliveries_landing_in_a_fault_window_are_refused() {
        let plan = ChaosPlan::parse(4, "crash:2@100..200").unwrap();
        let inner = ChannelTransport::new(4);
        let chaos = ChaosTransport::new(&inner, &plan);
        chaos
            .deliver_timed(0, 2, vec![1; 8], Millis::new(50.0), Millis::new(90.0))
            .expect("a delivery landing before the crash survives");
        let err = chaos
            .deliver_timed(0, 2, vec![1; 8], Millis::new(90.0), Millis::new(110.0))
            .expect_err("a delivery landing inside the crash is lost");
        assert!(matches!(
            err,
            RuntimeError::ProcessorCrashed { proc: 2, .. }
        ));
        chaos
            .deliver_timed(3, 1, vec![1; 8], Millis::new(90.0), Millis::new(110.0))
            .expect("links not touching the crashed node are unaffected");
        assert_eq!(
            chaos.receipts().iter().map(|r| r.messages).sum::<usize>(),
            2
        );
    }
}

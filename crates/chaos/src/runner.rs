//! Running a plan end-to-end and grading the recovery.
//!
//! [`run_chaos`] executes the same workload twice through the full
//! closed loop — once fault-free as the control, once under the plan —
//! and grades the chaotic run against the control: completion-time SLO
//! (at most [`SLO_FACTOR`] × the fault-free makespan), exactly-once
//! delivery via FNV receipt verification, per-fault recovery times and
//! their histogram, and the quarantine roster.

use crate::evolution::ChaosEvolution;
use crate::plan::ChaosPlan;
use crate::transport::ChaosTransport;
use adaptcomm_core::algorithms::{OpenShop, Scheduler};
use adaptcomm_core::checkpointed::CheckpointPolicy;
use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_directory::DirectoryService;
use adaptcomm_model::params::NetParams;
use adaptcomm_model::units::Bytes;
use adaptcomm_runtime::channel::FaultPolicy;
use adaptcomm_runtime::transport::{expected_receipts, ReceiptSummary};
use adaptcomm_runtime::{
    AdaptReport, AdaptSettings, ChannelTransport, CheckpointedRun, RuntimeError, Transport,
};

/// The documented recovery SLO: a run under injected faults must finish
/// within this multiple of its own fault-free makespan. Generous enough
/// for a fault that heals at ~45 % of the horizon plus backoff probes
/// and the serialized tail of unparked traffic; tight enough that a
/// recovery that churns retries instead of parking blows it.
pub const SLO_FACTOR: f64 = 3.0;

/// Dead-link detection threshold for chaos runs, kbit/s: far below any
/// plausible live link, far above [`crate::evolution::DEAD_SCALE`]
/// times one.
pub const CHAOS_DROP_KBPS: f64 = 0.01;

/// Execution attempts / heal-probe budget for chaos runs. Backoff is
/// exponential, so six probes cover `63 × backoff_base_ms` of modeled
/// time past the drain point.
pub const CHAOS_ATTEMPTS: usize = 6;

/// One graded fault, classified against the injected plan.
#[derive(Debug, Clone)]
pub struct FaultSummary {
    /// Scenario-level fault class (`crash`, `partition`, `liar`) when
    /// the plan covers the link at detection time, otherwise the
    /// runtime's own classification.
    pub kind: &'static str,
    /// The link whose failure surfaced the fault.
    pub link: (usize, usize),
    /// Modeled detection instant, milliseconds.
    pub detected_ms: f64,
    /// Measured recovery time, milliseconds — `None` if traffic never
    /// crossed the link again.
    pub recovery_ms: Option<f64>,
    /// Messages parked when the fault was detected.
    pub parked: usize,
    /// Heal probes spent before the parked traffic was released.
    pub probes: usize,
}

/// What a chaos run did, graded against its fault-free control.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Processor count.
    pub p: usize,
    /// Fault-free makespan of the same workload, milliseconds.
    pub fault_free_ms: f64,
    /// Makespan under the injected plan, milliseconds.
    pub chaos_ms: f64,
    /// Execution attempts the chaotic run needed.
    pub attempts: usize,
    /// Checkpoint replans across the chaotic run.
    pub reschedules: usize,
    /// Faults detected and recovered, in detection order.
    pub faults: Vec<FaultSummary>,
    /// Links the trust cross-check quarantined.
    pub quarantined: Vec<(usize, usize)>,
    /// True when the chaotic run's receipts are bit-identical to a
    /// clean exchange: every payload arrived exactly once.
    pub receipts_ok: bool,
    /// Recovery-time histogram: `(upper_bound_ms, count)` per bucket,
    /// with a final `(inf, count)` overflow bucket.
    pub histogram: Vec<(f64, usize)>,
}

impl ChaosReport {
    /// Completion-time slowdown over the fault-free control.
    pub fn slowdown(&self) -> f64 {
        if self.fault_free_ms > 0.0 {
            self.chaos_ms / self.fault_free_ms
        } else {
            1.0
        }
    }

    /// True when the run met the [`SLO_FACTOR`] completion bound.
    pub fn slo_ok(&self) -> bool {
        self.slowdown() <= SLO_FACTOR
    }

    /// The greppable verdict line CI asserts on, e.g.
    /// `SLO: completion 1.42x fault-free (limit 3.00x) — PASS`.
    pub fn slo_line(&self) -> String {
        format!(
            "SLO: completion {:.2}x fault-free (limit {:.2}x) — {}",
            self.slowdown(),
            SLO_FACTOR,
            if self.slo_ok() { "PASS" } else { "FAIL" }
        )
    }
}

/// The settings every chaos run (and its control) executes under.
pub fn chaos_settings() -> AdaptSettings {
    AdaptSettings {
        policy: CheckpointPolicy::EveryEvent,
        faults: FaultPolicy {
            drop_below_kbps: Some(CHAOS_DROP_KBPS),
            late_factor: None,
        },
        max_attempts: CHAOS_ATTEMPTS,
        ..Default::default()
    }
}

/// One full closed-loop pass under `plan`, returning the adapt report
/// and the raw receipts for exactly-once verification.
pub fn run_plan(
    net: &NetParams,
    sizes: &[Vec<Bytes>],
    plan: &ChaosPlan,
) -> Result<(AdaptReport, Vec<ReceiptSummary>), RuntimeError> {
    run_plan_with(net, sizes, plan, chaos_settings())
}

/// [`run_plan`] under explicit settings — e.g. a larger attempt budget
/// when a plan's heal lands far past the drain point, so the
/// exponential backoff needs more doublings to reach it.
pub fn run_plan_with(
    net: &NetParams,
    sizes: &[Vec<Bytes>],
    plan: &ChaosPlan,
    settings: AdaptSettings,
) -> Result<(AdaptReport, Vec<ReceiptSummary>), RuntimeError> {
    let p = net.len();
    let lists = OpenShop
        .send_order(&CommMatrix::from_model(net, sizes))
        .order;
    let directory = DirectoryService::new(net.clone());
    let mut evolution = ChaosEvolution::new(net.clone(), plan.clone());
    let inner = ChannelTransport::new(p);
    let transport = ChaosTransport::new(&inner, plan);
    let driver = CheckpointedRun::new(&directory, sizes, settings).with_tamper(plan);
    let report = driver.execute(&lists, &mut evolution, &transport)?;
    Ok((report, inner.receipts()))
}

/// The fault-free makespan of the workload under chaos settings — the
/// horizon named scenarios are scaled to and the SLO denominator.
pub fn fault_free_makespan(net: &NetParams, sizes: &[Vec<Bytes>]) -> Result<f64, RuntimeError> {
    run_plan(net, sizes, &ChaosPlan::empty(net.len())).map(|(r, _)| r.makespan.as_ms())
}

/// Runs the control and the chaotic run, then grades the latter.
pub fn run_chaos(
    net: &NetParams,
    sizes: &[Vec<Bytes>],
    plan: &ChaosPlan,
) -> Result<ChaosReport, RuntimeError> {
    let fault_free_ms = fault_free_makespan(net, sizes)?;
    // Log the injected scenario into the flight recorder before the
    // run: a post-mortem dump then shows what was injected right next
    // to the `runtime.fault` / `runtime.heal` notes it provoked.
    for event in &plan.events {
        adaptcomm_obs::flight()
            .note("chaos.inject")
            .attr("spec", event.to_string())
            .emit();
    }
    let (report, receipts) = run_plan(net, sizes, plan)?;
    let faults: Vec<FaultSummary> = report
        .recovery_events
        .iter()
        .map(|ev| FaultSummary {
            kind: plan.classify(ev.link, ev.detected_at, ev.kind.name()),
            link: ev.link,
            detected_ms: ev.detected_at.as_ms(),
            recovery_ms: ev.recovery_time().map(|t| t.as_ms()),
            parked: ev.parked,
            probes: ev.probes,
        })
        .collect();
    let mut histogram: Vec<(f64, usize)> = adaptcomm_obs::MS_BUCKETS
        .iter()
        .map(|&b| (b, 0))
        .chain(std::iter::once((f64::INFINITY, 0)))
        .collect();
    for t in faults.iter().filter_map(|f| f.recovery_ms) {
        let slot = histogram
            .iter()
            .position(|&(bound, _)| t <= bound)
            .unwrap_or(histogram.len() - 1);
        histogram[slot].1 += 1;
    }
    Ok(ChaosReport {
        p: net.len(),
        fault_free_ms,
        chaos_ms: report.makespan.as_ms(),
        attempts: report.attempts,
        reschedules: report.reschedules,
        faults,
        quarantined: report.quarantined_links.clone(),
        receipts_ok: receipts == expected_receipts(sizes, None),
        histogram,
    })
}

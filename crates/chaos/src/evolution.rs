//! The physical network a chaos scenario realizes.

use crate::plan::ChaosPlan;
use adaptcomm_model::cost::LinkEstimate;
use adaptcomm_model::params::NetParams;
use adaptcomm_model::units::Millis;
use adaptcomm_sim::NetworkEvolution;

/// Bandwidth multiplier applied to a blocked link: effectively dead
/// (any positive drop threshold catches it) while keeping the
/// cost-model invariant that bandwidth is strictly positive.
pub const DEAD_SCALE: f64 = 1e-9;

/// A [`NetworkEvolution`] realizing a [`ChaosPlan`] over a fixed base
/// network: blocked links collapse to [`DEAD_SCALE`] of their base
/// bandwidth for the fault window, and lying links realize only
/// `1/factor` of theirs from the onset — while their reporting agent
/// (the plan's [`MeasurementTamper`](adaptcomm_runtime::prober::MeasurementTamper)
/// impl) keeps claiming full speed. Planning estimates are the pre-fault
/// base: the scheduler is never tipped off.
#[derive(Debug, Clone)]
pub struct ChaosEvolution {
    base: NetParams,
    plan: ChaosPlan,
}

impl ChaosEvolution {
    /// A chaotic view of `base` under `plan`.
    pub fn new(base: NetParams, plan: ChaosPlan) -> Self {
        assert_eq!(
            base.len(),
            plan.p,
            "plan and network disagree on processor count"
        );
        ChaosEvolution { base, plan }
    }

    /// The injected scenario.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }
}

impl NetworkEvolution for ChaosEvolution {
    fn processors(&self) -> usize {
        self.base.len()
    }

    fn planning_estimates(&self) -> NetParams {
        self.base.clone()
    }

    fn state_at(&mut self, t: Millis) -> NetParams {
        let plan = &self.plan;
        let base = &self.base;
        NetParams::from_fn(base.len(), |src, dst| {
            let e = base.estimate(src, dst);
            if plan.link_blocked(src, dst, t) {
                LinkEstimate::new(e.startup, e.bandwidth.scaled(DEAD_SCALE))
            } else if let Some(f) = plan.lying_factor(src, dst, t) {
                LinkEstimate::new(e.startup, e.bandwidth.scaled(1.0 / f))
            } else {
                e
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptcomm_model::units::Bandwidth;

    fn base(p: usize) -> NetParams {
        NetParams::uniform(p, Millis::new(2.0), Bandwidth::from_kbps(1_000.0))
    }

    #[test]
    fn faults_shape_the_realized_network_for_their_window_only() {
        let plan = ChaosPlan::parse(4, "crash:1@100..200;liar:0-2@50x4").unwrap();
        let mut evo = ChaosEvolution::new(base(4), plan);
        let before = evo.state_at(Millis::new(10.0));
        assert_eq!(before.estimate(1, 3).bandwidth.as_kbps(), 1_000.0);
        assert_eq!(before.estimate(0, 2).bandwidth.as_kbps(), 1_000.0);
        let during = evo.state_at(Millis::new(150.0));
        assert!(during.estimate(1, 3).bandwidth.as_kbps() < 1e-5);
        assert!(during.estimate(3, 1).bandwidth.as_kbps() < 1e-5);
        assert_eq!(
            during.estimate(0, 2).bandwidth.as_kbps(),
            250.0,
            "a 4x liar realizes a quarter of its base bandwidth"
        );
        let after = evo.state_at(Millis::new(250.0));
        assert_eq!(after.estimate(1, 3).bandwidth.as_kbps(), 1_000.0);
        // Planning never sees the faults.
        assert_eq!(
            evo.planning_estimates().estimate(1, 3).bandwidth.as_kbps(),
            1_000.0
        );
    }
}

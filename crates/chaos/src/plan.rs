//! Seeded, deterministic fault scenarios.
//!
//! A [`ChaosPlan`] is a list of [`ChaosEvent`]s against a fixed
//! processor count: crashes with optional restarts, partitions with
//! scheduled heal times, and lying links whose *reported* bandwidth is
//! a configured multiple of the realized one. Plans come from three
//! places — built literally in tests, parsed from the CLI's compact
//! spec DSL ([`ChaosPlan::parse`]), or generated from a named class and
//! a seed ([`ChaosPlan::generate`]) — and all three produce the same
//! structure, so every consumer (evolution, transport decorator,
//! measurement tamper, report classifier) reads one source of truth.

use adaptcomm_model::units::Millis;
use adaptcomm_runtime::prober::{LinkMeasurement, MeasurementTamper};
use adaptcomm_runtime::RuntimeError;
use std::fmt;

/// One injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosEvent {
    /// Processor `proc` crashes at `at`; every link touching it is dead
    /// until `restart_at` (forever when `None`).
    Crash {
        /// The crashing processor.
        proc: usize,
        /// Crash instant, modeled milliseconds.
        at: Millis,
        /// Restart instant, or `None` for a permanent crash.
        restart_at: Option<Millis>,
    },
    /// Every link between `group` and the rest of the machine is dead
    /// in `[at, heal_at)`, both directions.
    Partition {
        /// Processors on one side of the cut.
        group: Vec<usize>,
        /// Partition instant, modeled milliseconds.
        at: Millis,
        /// Heal instant, modeled milliseconds.
        heal_at: Millis,
    },
    /// From `from` onwards the link `src → dst` realizes only
    /// `1/factor` of its base bandwidth while its reporting agent
    /// claims the full fitted value times `factor` — the adversarial
    /// probe the trust cross-check exists to catch.
    LyingLink {
        /// Sending processor.
        src: usize,
        /// Receiving processor.
        dst: usize,
        /// Onset instant, modeled milliseconds.
        from: Millis,
        /// Ratio of reported to realized bandwidth (> 1 inflates).
        factor: f64,
    },
}

impl fmt::Display for ChaosEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosEvent::Crash {
                proc,
                at,
                restart_at,
            } => match restart_at {
                Some(r) => write!(f, "crash:{proc}@{}..{}", at.as_ms(), r.as_ms()),
                None => write!(f, "crash:{proc}@{}", at.as_ms()),
            },
            ChaosEvent::Partition { group, at, heal_at } => {
                let nodes: Vec<String> = group.iter().map(|n| n.to_string()).collect();
                write!(
                    f,
                    "partition:{}@{}..{}",
                    nodes.join(","),
                    at.as_ms(),
                    heal_at.as_ms()
                )
            }
            ChaosEvent::LyingLink {
                src,
                dst,
                from,
                factor,
            } => write!(f, "liar:{src}-{dst}@{}x{factor}", from.as_ms()),
        }
    }
}

/// A validated, deterministic fault scenario for a `p`-processor run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Processor count the events are indexed against.
    pub p: usize,
    /// Injected faults, in no particular order.
    pub events: Vec<ChaosEvent>,
}

fn in_window(t: Millis, at: Millis, end: Option<Millis>) -> bool {
    t.as_ms() >= at.as_ms() && end.is_none_or(|e| t.as_ms() < e.as_ms())
}

impl ChaosPlan {
    /// A plan injecting nothing — the fault-free control.
    pub fn empty(p: usize) -> Self {
        ChaosPlan {
            p,
            events: Vec::new(),
        }
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks indices, windows and factors; returns the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.p < 2 {
            return Err(format!("need at least 2 processors, got {}", self.p));
        }
        let time_ok = |t: Millis| t.as_ms().is_finite() && t.as_ms() >= 0.0;
        for ev in &self.events {
            match ev {
                ChaosEvent::Crash {
                    proc,
                    at,
                    restart_at,
                } => {
                    if *proc >= self.p {
                        return Err(format!("crash names processor {proc} but p = {}", self.p));
                    }
                    if !time_ok(*at) {
                        return Err(format!("crash time {at} is not a valid instant"));
                    }
                    if let Some(r) = restart_at {
                        if !time_ok(*r) || r.as_ms() <= at.as_ms() {
                            return Err(format!("crash restart {r} must come after {at}"));
                        }
                    }
                }
                ChaosEvent::Partition { group, at, heal_at } => {
                    if group.is_empty() || group.len() >= self.p {
                        return Err(
                            "a partition group must be a proper non-empty subset".to_string()
                        );
                    }
                    if let Some(n) = group.iter().find(|&&n| n >= self.p) {
                        return Err(format!("partition names processor {n} but p = {}", self.p));
                    }
                    if !time_ok(*at) || !time_ok(*heal_at) || heal_at.as_ms() <= at.as_ms() {
                        return Err(format!("partition window {at}..{heal_at} is not ordered"));
                    }
                }
                ChaosEvent::LyingLink {
                    src,
                    dst,
                    from,
                    factor,
                } => {
                    if *src >= self.p || *dst >= self.p || src == dst {
                        return Err(format!(
                            "lying link {src} -> {dst} is not a link of a {}-processor machine",
                            self.p
                        ));
                    }
                    if !time_ok(*from) {
                        return Err(format!("lying-link onset {from} is not a valid instant"));
                    }
                    if !factor.is_finite() || *factor <= 0.0 {
                        return Err(format!("lying factor must be positive, got {factor}"));
                    }
                }
            }
        }
        Ok(())
    }

    /// True when the directed link `src → dst` is dead at `t` because a
    /// crash or partition window covers it.
    pub fn link_blocked(&self, src: usize, dst: usize, t: Millis) -> bool {
        self.blocking_error(src, dst, t).is_some()
    }

    /// The typed error a transfer landing on `src → dst` at `t` dies
    /// with, if a crash or partition window covers the link (crashes
    /// take precedence — a crashed node explains more than a cut).
    pub fn blocking_error(&self, src: usize, dst: usize, t: Millis) -> Option<RuntimeError> {
        for ev in &self.events {
            if let ChaosEvent::Crash {
                proc,
                at,
                restart_at,
            } = ev
            {
                if (src == *proc || dst == *proc) && in_window(t, *at, *restart_at) {
                    return Some(RuntimeError::ProcessorCrashed {
                        proc: *proc,
                        src,
                        dst,
                        at: t,
                    });
                }
            }
        }
        for ev in &self.events {
            if let ChaosEvent::Partition { group, at, heal_at } = ev {
                if group.contains(&src) != group.contains(&dst) && in_window(t, *at, Some(*heal_at))
                {
                    return Some(RuntimeError::LinkPartitioned { src, dst, at: t });
                }
            }
        }
        None
    }

    /// The reported/realized bandwidth ratio active on `src → dst` at
    /// `t`, if a lying link covers it.
    pub fn lying_factor(&self, src: usize, dst: usize, t: Millis) -> Option<f64> {
        self.events.iter().find_map(|ev| match ev {
            ChaosEvent::LyingLink {
                src: s,
                dst: d,
                from,
                factor,
            } if *s == src && *d == dst && in_window(t, *from, None) => Some(*factor),
            _ => None,
        })
    }

    /// Reclassifies a detected fault on `link` at `t` against the
    /// injected scenario: the runtime only sees a dead link, the plan
    /// knows whether a crash, a partition or a lie caused it.
    pub fn classify(
        &self,
        link: (usize, usize),
        t: Millis,
        runtime_kind: &'static str,
    ) -> &'static str {
        match self.blocking_error(link.0, link.1, t) {
            Some(RuntimeError::ProcessorCrashed { .. }) => "crash",
            Some(RuntimeError::LinkPartitioned { .. }) => "partition",
            _ if self.lying_factor(link.0, link.1, t).is_some() => "liar",
            _ => runtime_kind,
        }
    }

    /// The latest heal/restart instant in the plan, if every blocking
    /// window closes — `None` when some fault is permanent.
    pub fn last_heal(&self) -> Option<Millis> {
        let mut latest = Millis::ZERO;
        for ev in &self.events {
            match ev {
                ChaosEvent::Crash { restart_at, .. } => match restart_at {
                    Some(r) => latest = latest.max(*r),
                    None => return None,
                },
                ChaosEvent::Partition { heal_at, .. } => latest = latest.max(*heal_at),
                ChaosEvent::LyingLink { .. } => {}
            }
        }
        Some(latest)
    }
}

/// Lying links tamper with the measurements their reporting agent
/// publishes: the honest fitted bandwidth is inflated by the configured
/// factor. The trust cross-check compares the claim against the same
/// realized timings the fit came from, so the inflation is exactly what
/// gets the link quarantined.
impl MeasurementTamper for ChaosPlan {
    fn tamper(&self, mut honest: LinkMeasurement, now: Millis) -> LinkMeasurement {
        if let Some(f) = self.lying_factor(honest.src, honest.dst, now) {
            honest.bandwidth_kbps *= f;
        }
        honest
    }
}

// ---------------------------------------------------------------------
// Parsing: the CLI's compact spec DSL.
// ---------------------------------------------------------------------

fn parse_ms(s: &str) -> Result<Millis, String> {
    s.trim()
        .parse::<f64>()
        .map(Millis::new)
        .map_err(|_| format!("`{s}` is not a time in milliseconds"))
}

fn parse_window(s: &str) -> Result<(Millis, Millis), String> {
    let (a, b) = s
        .split_once("..")
        .ok_or_else(|| format!("`{s}` is not a window (want START..END)"))?;
    Ok((parse_ms(a)?, parse_ms(b)?))
}

impl ChaosPlan {
    /// Parses the CLI spec DSL: `;`-separated events of the forms
    ///
    /// * `crash:PROC@AT..RESTART` or `crash:PROC@AT` (never restarts),
    /// * `partition:N,N,...@AT..HEAL`,
    /// * `liar:SRC-DST@FROMxFACTOR`,
    ///
    /// e.g. `crash:2@120..400;liar:1-3@50x4`. The result is validated.
    pub fn parse(p: usize, spec: &str) -> Result<ChaosPlan, String> {
        let mut events = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (kind, rest) = part
                .split_once(':')
                .ok_or_else(|| format!("`{part}` has no `kind:` prefix"))?;
            let event = match kind {
                "crash" => {
                    let (proc, when) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("`{rest}` has no `@time`"))?;
                    let proc = proc
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| format!("`{proc}` is not a processor index"))?;
                    match when.split_once("..") {
                        Some((a, r)) => ChaosEvent::Crash {
                            proc,
                            at: parse_ms(a)?,
                            restart_at: Some(parse_ms(r)?),
                        },
                        None => ChaosEvent::Crash {
                            proc,
                            at: parse_ms(when)?,
                            restart_at: None,
                        },
                    }
                }
                "partition" => {
                    let (nodes, window) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("`{rest}` has no `@window`"))?;
                    let group = nodes
                        .split(',')
                        .map(|n| {
                            n.trim()
                                .parse::<usize>()
                                .map_err(|_| format!("`{n}` is not a processor index"))
                        })
                        .collect::<Result<Vec<usize>, String>>()?;
                    let (at, heal_at) = parse_window(window)?;
                    ChaosEvent::Partition { group, at, heal_at }
                }
                "liar" => {
                    let (link, onset) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("`{rest}` has no `@onset`"))?;
                    let (src, dst) = link
                        .split_once('-')
                        .ok_or_else(|| format!("`{link}` is not a link (want SRC-DST)"))?;
                    let src = src
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| format!("`{src}` is not a processor index"))?;
                    let dst = dst
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| format!("`{dst}` is not a processor index"))?;
                    let (from, factor) = onset
                        .split_once('x')
                        .ok_or_else(|| format!("`{onset}` has no `xFACTOR`"))?;
                    ChaosEvent::LyingLink {
                        src,
                        dst,
                        from: parse_ms(from)?,
                        factor: factor
                            .trim()
                            .parse::<f64>()
                            .map_err(|_| format!("`{factor}` is not a factor"))?,
                    }
                }
                other => return Err(format!("unknown fault kind `{other}`")),
            };
            events.push(event);
        }
        let plan = ChaosPlan { p, events };
        plan.validate()?;
        Ok(plan)
    }
}

// ---------------------------------------------------------------------
// Generation: named classes, seeded and horizon-scaled.
// ---------------------------------------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from one splitmix64 step.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn pick(state: &mut u64, p: usize, exclude: &[usize]) -> usize {
    loop {
        let n = (splitmix64(state) % p as u64) as usize;
        if !exclude.contains(&n) {
            return n;
        }
    }
}

impl ChaosPlan {
    /// Builds a named scenario class, deterministic in `(class, p,
    /// seed)` and scaled to the fault-free makespan `horizon_ms` so the
    /// faults land mid-collective and heal before the SLO window
    /// closes:
    ///
    /// * `crash` — one processor crashes at ~15 % of the horizon and
    ///   restarts at ~45 %;
    /// * `partition` — a two-node group is cut at ~10 % and heals at
    ///   ~40 %;
    /// * `liar` — one link reports 4× its realized bandwidth from the
    ///   start;
    /// * `mixed` — all three at once, on disjoint processors.
    pub fn generate(
        class: &str,
        p: usize,
        seed: u64,
        horizon_ms: f64,
    ) -> Result<ChaosPlan, String> {
        if p < 4 {
            return Err(format!("chaos scenarios need p >= 4, got {p}"));
        }
        if !horizon_ms.is_finite() || horizon_ms <= 0.0 {
            return Err(format!("horizon must be positive, got {horizon_ms} ms"));
        }
        let mut state = seed ^ 0xc2b2_ae3d_27d4_eb4f;
        let h = horizon_ms;
        let crash = |state: &mut u64, exclude: &[usize]| {
            let proc = pick(state, p, exclude);
            let at = (0.10 + 0.10 * unit(state)) * h;
            let restart = (0.40 + 0.10 * unit(state)) * h;
            (
                proc,
                ChaosEvent::Crash {
                    proc,
                    at: Millis::new(at),
                    restart_at: Some(Millis::new(restart)),
                },
            )
        };
        let partition = |state: &mut u64, exclude: &[usize]| {
            let a = pick(state, p, exclude);
            let mut ex = exclude.to_vec();
            ex.push(a);
            let b = pick(state, p, &ex);
            let at = (0.05 + 0.10 * unit(state)) * h;
            let heal = (0.35 + 0.10 * unit(state)) * h;
            (
                [a, b],
                ChaosEvent::Partition {
                    group: vec![a, b],
                    at: Millis::new(at),
                    heal_at: Millis::new(heal),
                },
            )
        };
        let liar = |state: &mut u64, exclude: &[usize]| {
            let src = pick(state, p, exclude);
            let mut ex = exclude.to_vec();
            ex.push(src);
            let dst = pick(state, p, &ex);
            ChaosEvent::LyingLink {
                src,
                dst,
                from: Millis::ZERO,
                factor: 4.0,
            }
        };
        let events = match class {
            "crash" => vec![crash(&mut state, &[]).1],
            "partition" => vec![partition(&mut state, &[]).1],
            "liar" => vec![liar(&mut state, &[])],
            "mixed" => {
                if p < 6 {
                    return Err(format!("the mixed scenario needs p >= 6, got {p}"));
                }
                let (c, crash_ev) = crash(&mut state, &[]);
                let (cut, part_ev) = partition(&mut state, &[c]);
                let liar_ev = liar(&mut state, &[c, cut[0], cut[1]]);
                vec![crash_ev, part_ev, liar_ev]
            }
            other => {
                return Err(format!(
                    "unknown scenario class `{other}` (want crash, partition, liar or mixed, \
                     or a spec like crash:2@120..400)"
                ))
            }
        };
        let plan = ChaosPlan { p, events };
        plan.validate()?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_display() {
        let plan = ChaosPlan::parse(8, "crash:2@120..400; partition:0,1@80..300; liar:1-3@50x4")
            .expect("a well-formed spec must parse");
        assert_eq!(plan.events.len(), 3);
        let rendered: Vec<String> = plan.events.iter().map(|e| e.to_string()).collect();
        let reparsed = ChaosPlan::parse(8, &rendered.join(";")).unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn malformed_specs_are_rejected_with_a_reason() {
        for bad in [
            "crash:9@10..20",     // processor out of range
            "partition:0@10..20", // group is the whole... no: singleton ok; use full set
            "liar:1-1@0x4",       // self-link
            "liar:0-1@0x-2",      // non-positive factor
            "crash:1@40..30",     // restart before crash
            "explode:1@5",        // unknown kind
            "crash:1",            // no time
        ] {
            if bad == "partition:0@10..20" {
                continue;
            }
            assert!(
                ChaosPlan::parse(4, bad).is_err(),
                "`{bad}` must be rejected"
            );
        }
        let full = "partition:0,1,2,3@10..20"; // group == whole machine
        assert!(ChaosPlan::parse(4, full).is_err());
    }

    #[test]
    fn windows_block_exactly_their_links() {
        let plan = ChaosPlan::parse(6, "crash:2@100..200;partition:0,1@300..400").unwrap();
        // Crash: every link touching 2, only inside the window.
        assert!(!plan.link_blocked(2, 4, Millis::new(99.0)));
        assert!(plan.link_blocked(2, 4, Millis::new(100.0)));
        assert!(plan.link_blocked(4, 2, Millis::new(199.9)));
        assert!(!plan.link_blocked(2, 4, Millis::new(200.0)));
        assert!(!plan.link_blocked(3, 4, Millis::new(150.0)));
        // Partition: only links crossing the cut.
        assert!(plan.link_blocked(0, 5, Millis::new(350.0)));
        assert!(plan.link_blocked(5, 1, Millis::new(350.0)));
        assert!(
            !plan.link_blocked(0, 1, Millis::new(350.0)),
            "intra-group survives"
        );
        assert!(
            !plan.link_blocked(3, 4, Millis::new(350.0)),
            "outside-group survives"
        );
        // Classification sees through the runtime's generic dead-link.
        assert_eq!(
            plan.classify((2, 4), Millis::new(150.0), "dead-link"),
            "crash"
        );
        assert_eq!(
            plan.classify((0, 5), Millis::new(350.0), "dead-link"),
            "partition"
        );
        assert_eq!(
            plan.classify((3, 4), Millis::new(350.0), "dead-link"),
            "dead-link"
        );
    }

    #[test]
    fn generation_is_deterministic_and_valid() {
        for class in ["crash", "partition", "liar", "mixed"] {
            let a = ChaosPlan::generate(class, 8, 42, 1_000.0).expect(class);
            let b = ChaosPlan::generate(class, 8, 42, 1_000.0).expect(class);
            assert_eq!(a, b, "same seed must give the same {class} plan");
            let c = ChaosPlan::generate(class, 8, 43, 1_000.0).expect(class);
            if class != "liar" {
                // Different seeds move the windows (liar only moves its
                // link, which can collide for small p — times are fixed).
                assert!(a != c || class == "liar");
            }
            a.validate().expect("generated plans validate");
            assert!(
                a.last_heal().is_some(),
                "named scenarios must always heal so SLOs are checkable"
            );
        }
        assert!(ChaosPlan::generate("meteor", 8, 1, 1_000.0).is_err());
        assert!(ChaosPlan::generate("mixed", 4, 1, 1_000.0).is_err());
    }

    #[test]
    fn the_tamper_inflates_only_active_lying_links() {
        let plan = ChaosPlan::parse(4, "liar:1-3@50x4").unwrap();
        let honest = LinkMeasurement {
            src: 1,
            dst: 3,
            startup_ms: 2.0,
            bandwidth_kbps: 500.0,
            samples: 3,
            residual_ms: 0.0,
        };
        let before = plan.tamper(honest, Millis::new(40.0));
        assert_eq!(before.bandwidth_kbps, 500.0, "not yet lying");
        let after = plan.tamper(honest, Millis::new(60.0));
        assert_eq!(after.bandwidth_kbps, 2_000.0, "4x inflation once active");
        let other = LinkMeasurement { src: 0, ..honest };
        assert_eq!(
            plan.tamper(other, Millis::new(60.0)).bandwidth_kbps,
            500.0,
            "other links stay honest"
        );
    }
}

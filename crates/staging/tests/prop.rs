//! Property tests: staging commits are always physically consistent.

use adaptcomm_model::cost::LinkEstimate;
use adaptcomm_model::units::{Bandwidth, Bytes, Millis};
use adaptcomm_staging::scheduler::RequestOutcome;
use adaptcomm_staging::{schedule_staging, DataItem, LinkGraph, NodeId, Request, StagingProblem};
use proptest::prelude::*;

/// A random ring + chords topology with n nodes.
fn random_graph(n: usize, chord_seed: u64) -> LinkGraph {
    let mut g = LinkGraph::new(n);
    let est = |k: u64| {
        LinkEstimate::new(
            Millis::new((k % 80 + 5) as f64),
            Bandwidth::from_kbps((k % 4_000 + 200) as f64),
        )
    };
    for i in 0..n {
        g.add_bidi(NodeId(i), NodeId((i + 1) % n), est(chord_seed + i as u64));
    }
    // A few chords for route diversity.
    for k in 0..n / 2 {
        let a = (chord_seed as usize + k * 7) % n;
        let b = (chord_seed as usize + k * 13 + n / 2) % n;
        if a != b {
            g.add_bidi(NodeId(a), NodeId(b), est(chord_seed + 100 + k as u64));
        }
    }
    g
}

fn random_problem(n: usize, items: usize, requests: usize, seed: u64) -> StagingProblem {
    let mut p = StagingProblem::new();
    for id in 0..items {
        let src = (seed as usize + id * 3) % n;
        p.add_item(DataItem {
            id,
            size: Bytes::from_kb(((seed + id as u64 * 11) % 200 + 1) * 4),
            sources: vec![NodeId(src)],
        });
    }
    for r in 0..requests {
        let dst = (seed as usize + r * 5 + 1) % n;
        p.add_request(Request {
            item: (r + seed as usize) % items,
            destination: NodeId(dst),
            deadline: Millis::new(((seed + r as u64 * 31) % 60_000 + 500) as f64),
            priority: ((seed + r as u64) % 10) as u8,
        });
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satisfied requests always arrive by their deadline; committed hops
    /// never overlap on any link and respect store-and-forward order.
    #[test]
    fn commits_are_physically_consistent(
        n in 4usize..10,
        items in 1usize..4,
        requests in 1usize..8,
        seed in 0u64..500,
    ) {
        let mut g = random_graph(n, seed);
        let p = random_problem(n, items, requests, seed);
        let out = schedule_staging(&mut g, &p);
        prop_assert_eq!(out.outcomes.len(), p.requests().len());

        let mut per_edge: std::collections::HashMap<usize, Vec<(f64, f64)>> = Default::default();
        for (req, outcome) in p.requests().iter().zip(&out.outcomes) {
            if let RequestOutcome::Satisfied { arrival, route } = outcome {
                prop_assert!(arrival.as_ms() <= req.deadline.as_ms() + 1e-6);
                // Hops are causally ordered.
                for w in route.windows(2) {
                    prop_assert!(w[1].start.as_ms() >= w[0].finish.as_ms() - 1e-9);
                }
                if let Some(last) = route.last() {
                    prop_assert!((last.finish.as_ms() - arrival.as_ms()).abs() < 1e-6);
                }
                for hop in route {
                    per_edge.entry(hop.edge.0).or_default()
                        .push((hop.start.as_ms(), hop.finish.as_ms()));
                }
            }
        }
        // No link carries two transfers at once.
        for (_, mut intervals) in per_edge {
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in intervals.windows(2) {
                prop_assert!(w[1].0 >= w[0].1 - 1e-9, "link overlap: {w:?}");
            }
        }
    }

    /// Satisfaction is monotone in deadlines: relaxing every deadline
    /// never satisfies fewer requests under the greedy policy.
    #[test]
    fn relaxing_deadlines_never_hurts(
        n in 4usize..8,
        seed in 0u64..200,
    ) {
        let p_tight = random_problem(n, 2, 5, seed);
        let mut p_loose = StagingProblem::new();
        for item in p_tight.items() {
            p_loose.add_item(item.clone());
        }
        for r in p_tight.requests() {
            p_loose.add_request(Request { deadline: Millis::new(r.deadline.as_ms() * 100.0), ..*r });
        }
        let tight = schedule_staging(&mut random_graph(n, seed), &p_tight);
        let loose = schedule_staging(&mut random_graph(n, seed), &p_loose);
        prop_assert!(loose.satisfied() >= tight.satisfied());
    }
}

//! The greedy staging heuristic.
//!
//! Requests are processed in (priority desc, deadline asc) order. Each
//! request runs a multiple-source earliest-arrival search from every node
//! currently holding (or scheduled to receive) a copy of its item; if the
//! item can arrive by the deadline the route is *committed*: its link
//! slots are reserved and every node along the path becomes a future
//! source with the item available from the moment it finished arriving —
//! that replication is what "staging" buys. Requests that cannot meet
//! their deadline are recorded as unsatisfied (their traffic is not sent:
//! in BADD, late battlefield data is worthless and bandwidth is scarce).

use crate::graph::{EdgeId, LinkGraph, NodeId};
use crate::problem::{Request, StagingProblem};
use adaptcomm_model::units::Millis;
use std::collections::HashMap;

/// One committed hop of a route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommittedHop {
    /// The link used.
    pub edge: EdgeId,
    /// Transfer start.
    pub start: Millis,
    /// Transfer finish (arrival at the hop's head node).
    pub finish: Millis,
}

/// The outcome for a single request.
#[derive(Debug, Clone)]
pub enum RequestOutcome {
    /// Scheduled to arrive at `arrival ≤ deadline` via `route`.
    /// An empty route means a copy was already present (or staged) at
    /// the destination.
    Satisfied {
        /// When the item lands at the requester.
        arrival: Millis,
        /// The committed hops, in order.
        route: Vec<CommittedHop>,
    },
    /// No route can make the deadline; `best_possible` is the earliest
    /// achievable arrival, if the destination is reachable at all.
    Missed {
        /// Earliest feasible arrival (`None` = unreachable).
        best_possible: Option<Millis>,
    },
}

/// The full schedule report.
#[derive(Debug, Clone)]
pub struct StagingOutcome {
    /// Outcome per request, in the problem's registration order.
    pub outcomes: Vec<RequestOutcome>,
    /// The requests, for convenience (registration order).
    pub requests: Vec<Request>,
}

impl StagingOutcome {
    /// Number of satisfied requests.
    pub fn satisfied(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, RequestOutcome::Satisfied { .. }))
            .count()
    }

    /// Priority-weighted satisfaction: Σ (1 + priority) over satisfied
    /// requests divided by the same sum over all requests.
    pub fn weighted_satisfaction(&self) -> f64 {
        let weight = |r: &Request| 1.0 + r.priority as f64;
        let total: f64 = self.requests.iter().map(weight).sum();
        if total == 0.0 {
            return 1.0;
        }
        let won: f64 = self
            .requests
            .iter()
            .zip(&self.outcomes)
            .filter(|(_, o)| matches!(o, RequestOutcome::Satisfied { .. }))
            .map(|(r, _)| weight(r))
            .sum();
        won / total
    }
}

/// Runs the staging heuristic, mutating `graph` with the committed link
/// reservations (so a subsequent planning round sees the residual
/// capacity).
pub fn schedule_staging(graph: &mut LinkGraph, problem: &StagingProblem) -> StagingOutcome {
    // copies[item] = (node, available_from) — initial sources plus every
    // staged replica committed so far.
    let mut copies: HashMap<usize, Vec<(NodeId, Millis)>> = HashMap::new();
    for item in problem.items() {
        copies.insert(
            item.id,
            item.sources.iter().map(|&s| (s, Millis::ZERO)).collect(),
        );
    }

    let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; problem.requests().len()];
    for (index, request) in problem.prioritized_requests() {
        let item = &problem.items()[request.item];
        let sources = copies.get(&request.item).expect("item registered").clone();
        let found = graph.earliest_arrival(&sources, request.destination, item.size);
        let outcome = match found {
            None => RequestOutcome::Missed {
                best_possible: None,
            },
            Some((arrival, hops)) => {
                if arrival.as_ms() <= request.deadline.as_ms() + 1e-9 {
                    // Commit: reserve every hop and register the staged
                    // replicas (intermediate nodes AND the destination).
                    let mut route = Vec::with_capacity(hops.len());
                    for (edge, start, finish) in hops {
                        graph.reserve(edge, start, finish - start);
                        let (_, head) = graph.edge_endpoints(edge);
                        copies
                            .get_mut(&request.item)
                            .expect("item registered")
                            .push((head, finish));
                        route.push(CommittedHop {
                            edge,
                            start,
                            finish,
                        });
                    }
                    RequestOutcome::Satisfied { arrival, route }
                } else {
                    RequestOutcome::Missed {
                        best_possible: Some(arrival),
                    }
                }
            }
        };
        outcomes[index] = Some(outcome);
    }

    StagingOutcome {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every request visited"))
            .collect(),
        requests: problem.requests().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::DataItem;
    use adaptcomm_model::cost::LinkEstimate;
    use adaptcomm_model::units::{Bandwidth, Bytes};

    fn est(startup_ms: f64, kbps: f64) -> LinkEstimate {
        LinkEstimate::new(Millis::new(startup_ms), Bandwidth::from_kbps(kbps))
    }

    /// Repository 0 — relay 1 — theaters 2 and 3. 1 kB transfers take
    /// 6 ms per hop.
    fn theater_graph() -> LinkGraph {
        let mut g = LinkGraph::new(4);
        g.add_link(NodeId(0), NodeId(1), est(5.0, 8_000.0));
        g.add_link(NodeId(1), NodeId(2), est(5.0, 8_000.0));
        g.add_link(NodeId(1), NodeId(3), est(5.0, 8_000.0));
        g
    }

    fn one_item_problem() -> StagingProblem {
        let mut p = StagingProblem::new();
        p.add_item(DataItem {
            id: 0,
            size: Bytes::KB,
            sources: vec![NodeId(0)],
        });
        p
    }

    #[test]
    fn simple_request_is_satisfied() {
        let mut g = theater_graph();
        let mut p = one_item_problem();
        p.add_request(Request {
            item: 0,
            destination: NodeId(2),
            deadline: Millis::new(20.0),
            priority: 1,
        });
        let out = schedule_staging(&mut g, &p);
        assert_eq!(out.satisfied(), 1);
        match &out.outcomes[0] {
            RequestOutcome::Satisfied { arrival, route } => {
                assert!((arrival.as_ms() - 12.0).abs() < 1e-9);
                assert_eq!(route.len(), 2);
            }
            other => panic!("expected satisfied, got {other:?}"),
        }
        assert_eq!(out.weighted_satisfaction(), 1.0);
    }

    #[test]
    fn staged_replica_serves_the_second_request_faster() {
        // Request to theater 2 stages the item at the relay (node 1);
        // the later request to theater 3 is served from the relay — one
        // hop instead of two.
        let mut g = theater_graph();
        let mut p = one_item_problem();
        p.add_request(Request {
            item: 0,
            destination: NodeId(2),
            deadline: Millis::new(100.0),
            priority: 9, // processed first
        });
        p.add_request(Request {
            item: 0,
            destination: NodeId(3),
            deadline: Millis::new(100.0),
            priority: 1,
        });
        let out = schedule_staging(&mut g, &p);
        assert_eq!(out.satisfied(), 2);
        match &out.outcomes[1] {
            RequestOutcome::Satisfied { arrival, route } => {
                // From the relay copy (available at 6): 6 + 6 = 12, and
                // only ONE hop — not a fresh two-hop route from node 0.
                assert_eq!(route.len(), 1, "must reuse the staged copy");
                assert!((arrival.as_ms() - 12.0).abs() < 1e-9);
            }
            other => panic!("expected satisfied, got {other:?}"),
        }
    }

    #[test]
    fn impossible_deadline_is_missed_with_best_effort_report() {
        let mut g = theater_graph();
        let mut p = one_item_problem();
        p.add_request(Request {
            item: 0,
            destination: NodeId(2),
            deadline: Millis::new(5.0), // two hops need 12ms
            priority: 1,
        });
        let out = schedule_staging(&mut g, &p);
        assert_eq!(out.satisfied(), 0);
        match &out.outcomes[0] {
            RequestOutcome::Missed {
                best_possible: Some(t),
            } => {
                assert!((t.as_ms() - 12.0).abs() < 1e-9);
            }
            other => panic!("expected miss with estimate, got {other:?}"),
        }
        assert_eq!(out.weighted_satisfaction(), 0.0);
    }

    #[test]
    fn missed_requests_reserve_no_bandwidth() {
        let mut g = theater_graph();
        let mut p = one_item_problem();
        p.add_request(Request {
            item: 0,
            destination: NodeId(2),
            deadline: Millis::new(1.0), // impossible
            priority: 9,
        });
        p.add_request(Request {
            item: 0,
            destination: NodeId(2),
            deadline: Millis::new(20.0),
            priority: 1,
        });
        let out = schedule_staging(&mut g, &p);
        // The impossible request must not have consumed the link slots
        // the feasible one needs.
        assert_eq!(out.satisfied(), 1);
        match &out.outcomes[1] {
            RequestOutcome::Satisfied { arrival, .. } => {
                assert!((arrival.as_ms() - 12.0).abs() < 1e-9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn high_priority_wins_link_contention() {
        // Two requests for different items over the same single link;
        // only one can make the tight deadline.
        let mut g = LinkGraph::new(2);
        g.add_link(NodeId(0), NodeId(1), est(5.0, 8_000.0)); // 1kB = 6ms
        let mut p = StagingProblem::new();
        p.add_item(DataItem {
            id: 0,
            size: Bytes::KB,
            sources: vec![NodeId(0)],
        });
        p.add_item(DataItem {
            id: 1,
            size: Bytes::KB,
            sources: vec![NodeId(0)],
        });
        let tight = Millis::new(7.0);
        p.add_request(Request {
            item: 0,
            destination: NodeId(1),
            deadline: tight,
            priority: 1,
        });
        p.add_request(Request {
            item: 1,
            destination: NodeId(1),
            deadline: tight,
            priority: 8,
        });
        let out = schedule_staging(&mut g, &p);
        assert!(
            matches!(out.outcomes[1], RequestOutcome::Satisfied { .. }),
            "the high-priority request must win the link"
        );
        assert!(matches!(out.outcomes[0], RequestOutcome::Missed { .. }));
        // Weighted satisfaction reflects the priorities: 9 / (2 + 9).
        assert!((out.weighted_satisfaction() - 9.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn unreachable_destination_reported() {
        let mut g = LinkGraph::new(3); // no links at all
        let mut p = one_item_problem();
        p.add_request(Request {
            item: 0,
            destination: NodeId(2),
            deadline: Millis::new(1e9),
            priority: 0,
        });
        let out = schedule_staging(&mut g, &p);
        assert!(matches!(
            out.outcomes[0],
            RequestOutcome::Missed {
                best_possible: None
            }
        ));
    }

    #[test]
    fn destination_already_holding_the_item() {
        let mut g = theater_graph();
        let mut p = StagingProblem::new();
        p.add_item(DataItem {
            id: 0,
            size: Bytes::KB,
            sources: vec![NodeId(2)],
        });
        p.add_request(Request {
            item: 0,
            destination: NodeId(2),
            deadline: Millis::ZERO,
            priority: 0,
        });
        let out = schedule_staging(&mut g, &p);
        match &out.outcomes[0] {
            RequestOutcome::Satisfied { arrival, route } => {
                assert_eq!(arrival.as_ms(), 0.0);
                assert!(route.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }
}

//! Data items and requests.

use crate::graph::NodeId;
use adaptcomm_model::units::{Bytes, Millis};

/// An immutable data item (satellite image, map overlay, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataItem {
    /// Identifier, referenced by requests.
    pub id: usize,
    /// Item size.
    pub size: Bytes,
    /// Machines initially holding a copy.
    pub sources: Vec<NodeId>,
}

/// A warfighter's (or application's) request for one item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Which item.
    pub item: usize,
    /// Where it must arrive.
    pub destination: NodeId,
    /// Hard real-time deadline.
    pub deadline: Millis,
    /// Priority; larger is more important.
    pub priority: u8,
}

/// A complete staging problem instance.
#[derive(Debug, Clone, Default)]
pub struct StagingProblem {
    items: Vec<DataItem>,
    requests: Vec<Request>,
}

impl StagingProblem {
    /// An empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an item; its `id` must equal its registration index.
    pub fn add_item(&mut self, item: DataItem) -> &mut Self {
        assert_eq!(
            item.id,
            self.items.len(),
            "item ids must be dense and in order"
        );
        assert!(!item.sources.is_empty(), "item {} has no source", item.id);
        self.items.push(item);
        self
    }

    /// Registers a request for an already-registered item.
    pub fn add_request(&mut self, request: Request) -> &mut Self {
        assert!(
            request.item < self.items.len(),
            "request references unknown item"
        );
        self.requests.push(request);
        self
    }

    /// The items.
    pub fn items(&self) -> &[DataItem] {
        &self.items
    }

    /// The requests, in registration order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Requests sorted by the staging policy: priority descending, then
    /// deadline ascending, then registration order (stable).
    pub fn prioritized_requests(&self) -> Vec<(usize, Request)> {
        let mut indexed: Vec<(usize, Request)> =
            self.requests.iter().copied().enumerate().collect();
        indexed.sort_by(|(ia, a), (ib, b)| {
            b.priority
                .cmp(&a.priority)
                .then(a.deadline.as_ms().total_cmp(&b.deadline.as_ms()))
                .then(ia.cmp(ib))
        });
        indexed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(id: usize) -> DataItem {
        DataItem {
            id,
            size: Bytes::KB,
            sources: vec![NodeId(0)],
        }
    }

    #[test]
    fn construction_and_accessors() {
        let mut p = StagingProblem::new();
        p.add_item(item(0)).add_item(item(1));
        p.add_request(Request {
            item: 1,
            destination: NodeId(2),
            deadline: Millis::new(100.0),
            priority: 3,
        });
        assert_eq!(p.items().len(), 2);
        assert_eq!(p.requests().len(), 1);
    }

    #[test]
    fn prioritization_order() {
        let mut p = StagingProblem::new();
        p.add_item(item(0));
        let r = |deadline: f64, priority: u8| Request {
            item: 0,
            destination: NodeId(1),
            deadline: Millis::new(deadline),
            priority,
        };
        p.add_request(r(50.0, 1)); // index 0
        p.add_request(r(10.0, 1)); // index 1: same priority, earlier deadline
        p.add_request(r(99.0, 9)); // index 2: highest priority
        p.add_request(r(10.0, 1)); // index 3: tie with 1 → registration order
        let order: Vec<usize> = p.prioritized_requests().iter().map(|(i, _)| *i).collect();
        assert_eq!(order, vec![2, 1, 3, 0]);
    }

    #[test]
    #[should_panic(expected = "dense and in order")]
    fn out_of_order_item_ids_rejected() {
        let mut p = StagingProblem::new();
        p.add_item(item(5));
    }

    #[test]
    #[should_panic(expected = "unknown item")]
    fn dangling_request_rejected() {
        let mut p = StagingProblem::new();
        p.add_request(Request {
            item: 0,
            destination: NodeId(0),
            deadline: Millis::ZERO,
            priority: 0,
        });
    }

    #[test]
    #[should_panic(expected = "no source")]
    fn sourceless_item_rejected() {
        let mut p = StagingProblem::new();
        p.add_item(DataItem {
            id: 0,
            size: Bytes::KB,
            sources: vec![],
        });
    }
}

//! BADD-style data staging over a store-and-forward WAN graph.
//!
//! The paper's related-work and future-directions sections (§2, §6.4)
//! describe DARPA's BADD program: "data items must be moved from their
//! initial locations to requester nodes. Each data request also has a
//! time-deadline and priority associated with it. In \[24\], a heuristic
//! based on the multiple-source shortest-path algorithm is used to find a
//! communication schedule for this data staging problem."
//!
//! This crate implements that problem in the spirit of Tan, Theys &
//! Siegel's formulation:
//!
//! * [`graph`] — a directed link graph with per-link `T + m/B` costs and
//!   single-transfer-at-a-time serialization, plus a *time-dependent,
//!   multiple-source* earliest-arrival Dijkstra;
//! * [`problem`] — data items (replicated at source machines), requests
//!   with deadlines and priorities;
//! * [`scheduler`] — the greedy staging heuristic: requests in
//!   (priority, deadline) order, each routed along its earliest-arrival
//!   path; committed transfers reserve link time, and every intermediate
//!   node that stored a copy becomes a *new source* for later requests
//!   (the essence of staging).
//!
//! Unlike the total-exchange setting (where combine-and-forward is ruled
//! out because it inflates traffic), staging is *defined* by forwarding:
//! a data item is immutable and may be replicated wherever it passes.

//!
//! # Example
//!
//! ```
//! use adaptcomm_staging::{schedule_staging, DataItem, LinkGraph, NodeId,
//!                         Request, StagingProblem};
//! use adaptcomm_model::cost::LinkEstimate;
//! use adaptcomm_model::units::{Bandwidth, Bytes, Millis};
//!
//! let mut wan = LinkGraph::new(3);
//! let link = LinkEstimate::new(Millis::new(5.0), Bandwidth::from_kbps(8_000.0));
//! wan.add_bidi(NodeId(0), NodeId(1), link);
//! wan.add_bidi(NodeId(1), NodeId(2), link);
//!
//! let mut problem = StagingProblem::new();
//! problem.add_item(DataItem { id: 0, size: Bytes::KB, sources: vec![NodeId(0)] });
//! problem.add_request(Request {
//!     item: 0, destination: NodeId(2),
//!     deadline: Millis::new(20.0), priority: 5,
//! });
//! let outcome = schedule_staging(&mut wan, &problem);
//! assert_eq!(outcome.satisfied(), 1); // two 6 ms hops beat the 20 ms deadline
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod graph;
pub mod problem;
pub mod scheduler;

pub use graph::{LinkGraph, NodeId};
pub use problem::{DataItem, Request, StagingProblem};
pub use scheduler::{schedule_staging, StagingOutcome};

//! The WAN link graph and its time-dependent earliest-arrival search.

use adaptcomm_model::cost::LinkEstimate;
use adaptcomm_model::units::{Bytes, Millis};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A node (machine / router site) in the staging network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifier of a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(pub usize);

#[derive(Debug, Clone)]
struct Edge {
    from: usize,
    to: usize,
    estimate: LinkEstimate,
    /// Committed busy intervals, kept sorted by start (ms).
    reservations: Vec<(f64, f64)>,
}

/// A directed graph of point-to-point links with capacity reservations.
///
/// Each link carries one transfer at a time: a transfer of `m` bytes
/// entering the link at time `t` occupies it for `T + m/B` and must not
/// overlap an existing reservation. Store-and-forward semantics: a
/// multi-hop item fully arrives at a node before the next hop begins.
#[derive(Debug, Clone, Default)]
pub struct LinkGraph {
    nodes: usize,
    edges: Vec<Edge>,
    /// Outgoing edge ids per node.
    out: Vec<Vec<usize>>,
}

impl LinkGraph {
    /// An empty graph over `nodes` machines.
    pub fn new(nodes: usize) -> Self {
        LinkGraph {
            nodes,
            edges: Vec::new(),
            out: vec![Vec::new(); nodes],
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of directed links.
    pub fn edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a directed link and returns its id.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, estimate: LinkEstimate) -> EdgeId {
        assert!(
            from.0 < self.nodes && to.0 < self.nodes,
            "endpoint out of range"
        );
        assert_ne!(from, to, "self-loops are meaningless");
        let id = self.edges.len();
        self.edges.push(Edge {
            from: from.0,
            to: to.0,
            estimate,
            reservations: Vec::new(),
        });
        self.out[from.0].push(id);
        EdgeId(id)
    }

    /// Adds a bidirectional link (two directed edges sharing parameters).
    pub fn add_bidi(&mut self, a: NodeId, b: NodeId, estimate: LinkEstimate) -> (EdgeId, EdgeId) {
        (self.add_link(a, b, estimate), self.add_link(b, a, estimate))
    }

    /// Transfer duration of `m` bytes over edge `e`.
    pub fn transfer_time(&self, e: EdgeId, m: Bytes) -> Millis {
        self.edges[e.0].estimate.message_time(m)
    }

    /// The earliest start ≥ `ready` at which edge `e` can carry an
    /// uninterrupted transfer of duration `dur`, honoring reservations.
    fn earliest_slot(&self, e: usize, ready: f64, dur: f64) -> f64 {
        let mut t = ready;
        for &(s, f) in &self.edges[e].reservations {
            if t + dur <= s + 1e-12 {
                break; // fits before this reservation
            }
            if f > t {
                t = f; // pushed past this reservation
            }
        }
        t
    }

    /// Reserves edge `e` for `[start, start + dur)`. Panics on overlap —
    /// callers must only reserve slots returned by the search.
    pub fn reserve(&mut self, e: EdgeId, start: Millis, dur: Millis) {
        let (s, f) = (start.as_ms(), start.as_ms() + dur.as_ms());
        let res = &mut self.edges[e.0].reservations;
        for &(a, b) in res.iter() {
            assert!(
                f <= a + 1e-9 || s >= b - 1e-9,
                "reservation [{s}, {f}) overlaps existing [{a}, {b})"
            );
        }
        res.push((s, f));
        res.sort_by(|x, y| x.0.total_cmp(&y.0));
    }

    /// One hop of a committed route.
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        (NodeId(self.edges[e.0].from), NodeId(self.edges[e.0].to))
    }

    /// Time-dependent, multiple-source earliest-arrival search for an
    /// `m`-byte item.
    ///
    /// `sources` gives each candidate origin with the time the item is
    /// available there. Returns, if `dst` is reachable, the arrival time
    /// and the hop list `(edge, start, finish)` from the chosen source.
    /// Link waiting respects existing reservations, so the returned slots
    /// can be committed verbatim.
    ///
    /// This is Dijkstra on arrival times; correctness relies on the FIFO
    /// property of the link model (waiting never helps: `earliest_slot`
    /// is monotone in the ready time).
    pub fn earliest_arrival(
        &self,
        sources: &[(NodeId, Millis)],
        dst: NodeId,
        m: Bytes,
    ) -> Option<(Millis, RouteHops)> {
        assert!(!sources.is_empty(), "need at least one source");
        let n = self.nodes;
        let mut arrival = vec![f64::INFINITY; n];
        let mut pred: Vec<Option<(usize, f64, f64)>> = vec![None; n]; // (edge, start, finish)
        let mut heap: BinaryHeap<Reverse<(OrdF64, usize)>> = BinaryHeap::new();
        for &(s, t) in sources {
            assert!(s.0 < n, "source out of range");
            if t.as_ms() < arrival[s.0] {
                arrival[s.0] = t.as_ms();
                heap.push(Reverse((OrdF64(t.as_ms()), s.0)));
            }
        }
        while let Some(Reverse((OrdF64(t), u))) = heap.pop() {
            if t > arrival[u] + 1e-12 {
                continue; // stale entry
            }
            if u == dst.0 {
                break;
            }
            for &e in &self.out[u] {
                let dur = self.edges[e].estimate.message_time(m).as_ms();
                let start = self.earliest_slot(e, t, dur);
                let finish = start + dur;
                let v = self.edges[e].to;
                if finish < arrival[v] - 1e-12 {
                    arrival[v] = finish;
                    pred[v] = Some((e, start, finish));
                    heap.push(Reverse((OrdF64(finish), v)));
                }
            }
        }
        if arrival[dst.0].is_infinite() {
            return None;
        }
        // Reconstruct the hop list.
        let mut hops = Vec::new();
        let mut v = dst.0;
        while let Some((e, s, f)) = pred[v] {
            hops.push((EdgeId(e), Millis::new(s), Millis::new(f)));
            v = self.edges[e].from;
        }
        hops.reverse();
        Some((Millis::new(arrival[dst.0]), hops))
    }
}

/// The hops of a committed route: `(edge, start, finish)` per hop.
pub type RouteHops = Vec<(EdgeId, Millis, Millis)>;

/// Total-ordered f64 key for the Dijkstra heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&o.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptcomm_model::units::Bandwidth;

    fn est(startup_ms: f64, kbps: f64) -> LinkEstimate {
        LinkEstimate::new(Millis::new(startup_ms), Bandwidth::from_kbps(kbps))
    }

    /// 0 → 1 → 2 chain plus a slow shortcut 0 → 2.
    fn chain() -> LinkGraph {
        let mut g = LinkGraph::new(3);
        g.add_link(NodeId(0), NodeId(1), est(5.0, 8_000.0)); // 1kB: 5+1 = 6ms
        g.add_link(NodeId(1), NodeId(2), est(5.0, 8_000.0));
        g.add_link(NodeId(0), NodeId(2), est(50.0, 8_000.0)); // 1kB: 51ms
        g
    }

    #[test]
    fn multi_hop_beats_slow_direct_link() {
        let g = chain();
        let (t, hops) = g
            .earliest_arrival(&[(NodeId(0), Millis::ZERO)], NodeId(2), Bytes::KB)
            .unwrap();
        assert!((t.as_ms() - 12.0).abs() < 1e-9, "two 6ms hops, got {t}");
        assert_eq!(hops.len(), 2);
        // Store-and-forward: hop 2 starts exactly when hop 1 finishes.
        assert_eq!(hops[0].2, hops[1].1);
    }

    #[test]
    fn direct_link_wins_for_big_messages() {
        // For 100 kB the per-hop transfer dominates: one hop of
        // 50 + 100 = 150ms beats two hops of 5 + 100 = 105ms each (210).
        let g = chain();
        let (_, hops) = g
            .earliest_arrival(&[(NodeId(0), Millis::ZERO)], NodeId(2), Bytes::from_kb(100))
            .unwrap();
        assert_eq!(hops.len(), 1, "direct link should win");
    }

    #[test]
    fn multiple_sources_pick_the_nearest() {
        let g = chain();
        let (t, hops) = g
            .earliest_arrival(
                &[(NodeId(0), Millis::ZERO), (NodeId(1), Millis::ZERO)],
                NodeId(2),
                Bytes::KB,
            )
            .unwrap();
        assert!(
            (t.as_ms() - 6.0).abs() < 1e-9,
            "the copy at node 1 is closer"
        );
        assert_eq!(hops.len(), 1);
    }

    #[test]
    fn late_source_availability_is_respected() {
        let g = chain();
        let (t, _) = g
            .earliest_arrival(
                &[(NodeId(0), Millis::ZERO), (NodeId(1), Millis::new(100.0))],
                NodeId(2),
                Bytes::KB,
            )
            .unwrap();
        // Waiting for the node-1 copy (100 + 6) loses to routing from 0.
        assert!((t.as_ms() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn reservations_delay_transfers() {
        let mut g = chain();
        // Block the 0→1 link for [0, 20).
        g.reserve(EdgeId(0), Millis::ZERO, Millis::new(20.0));
        let (t, hops) = g
            .earliest_arrival(&[(NodeId(0), Millis::ZERO)], NodeId(1), Bytes::KB)
            .unwrap();
        assert!(
            (hops[0].1.as_ms() - 20.0).abs() < 1e-9,
            "must wait out the reservation"
        );
        assert!((t.as_ms() - 26.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_fits_before_a_reservation() {
        let mut g = chain();
        g.reserve(EdgeId(0), Millis::new(100.0), Millis::new(50.0));
        let (t, hops) = g
            .earliest_arrival(&[(NodeId(0), Millis::ZERO)], NodeId(1), Bytes::KB)
            .unwrap();
        assert_eq!(hops[0].1.as_ms(), 0.0, "6ms transfer fits before t=100");
        assert!((t.as_ms() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_destination() {
        let mut g = LinkGraph::new(3);
        g.add_link(NodeId(0), NodeId(1), est(1.0, 1_000.0));
        assert!(g
            .earliest_arrival(&[(NodeId(0), Millis::ZERO)], NodeId(2), Bytes::KB)
            .is_none());
    }

    #[test]
    #[should_panic(expected = "overlaps existing")]
    fn conflicting_reservation_rejected() {
        let mut g = chain();
        g.reserve(EdgeId(0), Millis::ZERO, Millis::new(10.0));
        g.reserve(EdgeId(0), Millis::new(5.0), Millis::new(10.0));
    }

    #[test]
    fn bidi_adds_both_directions() {
        let mut g = LinkGraph::new(2);
        g.add_bidi(NodeId(0), NodeId(1), est(1.0, 1_000.0));
        assert_eq!(g.edges(), 2);
        assert!(g
            .earliest_arrival(&[(NodeId(1), Millis::ZERO)], NodeId(0), Bytes::KB)
            .is_some());
    }
}

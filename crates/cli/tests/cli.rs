//! End-to-end tests of the `adaptcomm` binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_adaptcomm"))
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("adaptcomm-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("generate"));
    // No arguments behaves like help.
    let out = bin().output().unwrap();
    assert!(out.status.success());
}

#[test]
fn gusto_prints_both_tables() {
    let out = bin().arg("gusto").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Table 1"));
    assert!(text.contains("4976"));
}

#[test]
fn generate_schedule_compare_round_trip() {
    let out = bin()
        .args(["generate", "--scenario", "fig11", "--p", "6", "--seed", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let csv = String::from_utf8(out.stdout).unwrap();
    assert_eq!(csv.lines().count(), 6);

    let matrix_path = temp_path("matrix.csv");
    std::fs::write(&matrix_path, &csv).unwrap();

    let out = bin()
        .args(["compare", "--matrix", matrix_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let table = String::from_utf8(out.stdout).unwrap();
    assert!(table.contains("openshop"));
    assert!(table.contains("baseline"));

    let svg_path = temp_path("sched.svg");
    let json_path = temp_path("sched.json");
    let out = bin()
        .args([
            "schedule",
            "--matrix",
            matrix_path.to_str().unwrap(),
            "--algorithm",
            "matching-max",
            "--events",
            "--svg",
            svg_path.to_str().unwrap(),
            "--json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let svg = std::fs::read_to_string(&svg_path).unwrap();
    assert!(svg.starts_with("<svg"));
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains(r#""events""#));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("matching-max"));
    // 6 processors → 30 event rows.
    assert_eq!(
        stdout
            .lines()
            .filter(|l| l
                .trim_start()
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit()))
            .count(),
        30
    );

    let _ = std::fs::remove_file(matrix_path);
    let _ = std::fs::remove_file(svg_path);
    let _ = std::fs::remove_file(json_path);
}

#[test]
fn obs_dump_and_summary_round_trip() {
    let trace_path = temp_path("obs-trace.json");
    let out = bin()
        .args([
            "run",
            "--backend",
            "channel",
            "--p",
            "4",
            "--adapt",
            "--obs",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("wrote"));

    // The dump is a Chrome trace document with the driver-track spans.
    let text = std::fs::read_to_string(&trace_path).unwrap();
    assert!(text.contains("traceEvents"));
    assert!(text.contains("\"schedule\""));
    assert!(text.contains("\"transfer\""));

    let out = bin()
        .args(["obs-summary", "--input", trace_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8(out.stdout).unwrap();
    assert!(summary.contains("phase"));
    assert!(summary.contains("transfer"));
    assert!(summary.contains("schedule"));

    // JSONL export of the same run parses as a summary too.
    let jsonl_path = temp_path("obs-trace.jsonl");
    let out = bin()
        .args(["run", "--p", "4", "--obs", jsonl_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(["obs-summary", "--input", jsonl_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    let _ = std::fs::remove_file(trace_path);
    let _ = std::fs::remove_file(jsonl_path);
}

/// A self-contained HTML sanity check: one document, inline SVG, no
/// external fetches (every `http` occurrence is an SVG xmlns).
fn assert_self_contained_html(html: &str) {
    assert!(
        html.starts_with("<!DOCTYPE html>"),
        "must be a full document"
    );
    assert!(html.contains("</html>"));
    assert!(html.contains("<svg"), "charts must be inline SVG");
    assert_eq!(
        html.matches("http").count(),
        html.matches("http://www.w3.org/2000/svg").count(),
        "no external links: every http occurrence must be the SVG xmlns"
    );
    assert!(!html.contains("<script src"));
    assert!(!html.contains("<link "));
}

#[test]
fn report_renders_html_from_both_jsonl_and_chrome_dumps() {
    for (ext, name) in [("jsonl", "jsonl"), ("json", "chrome")] {
        let dump = temp_path(&format!("report-dump-{name}.{ext}"));
        let out = bin()
            .args([
                "run",
                "--p",
                "4",
                "--adapt",
                "--obs",
                dump.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );

        let html_path = temp_path(&format!("report-{name}.html"));
        let out = bin()
            .args([
                "report",
                "--input",
                dump.to_str().unwrap(),
                "--html",
                html_path.to_str().unwrap(),
                "--title",
                "smoke run",
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{name}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let html = std::fs::read_to_string(&html_path).unwrap();
        assert_self_contained_html(&html);
        assert!(html.contains("smoke run"));
        // The adaptive run's prober feeds link series; both dump
        // formats must carry them into the dashboard.
        assert!(html.contains("link."), "{name}: link series missing");

        let _ = std::fs::remove_file(dump);
        let _ = std::fs::remove_file(html_path);
    }
}

#[test]
fn adaptive_run_publishes_a_status_file_top_can_render() {
    let status = temp_path("status.json");
    let out = bin()
        .args([
            "run",
            "--p",
            "4",
            "--adapt",
            "--trigger",
            "detector",
            "--status",
            status.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("trigger detector"));

    // The finished run leaves a `done` status document behind; a single
    // non-interactive frame renders from it.
    let out = bin()
        .args(["top", "--input", status.to_str().unwrap(), "--once"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let frame = String::from_utf8(out.stdout).unwrap();
    assert!(frame.contains("done"));
    assert!(frame.contains("12/12 transfers"));
    assert!(frame.contains("100%"));
    assert!(frame.contains("links"));
    // --once must not emit terminal control sequences.
    assert!(!frame.contains('\x1b'));

    let _ = std::fs::remove_file(status);
}

#[test]
fn status_and_trigger_require_adapt() {
    let out = bin()
        .args(["run", "--p", "4", "--trigger", "detector"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("require --adapt"));

    let out = bin()
        .args(["top", "--input", "/definitely/missing.json", "--once"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn errors_exit_nonzero_with_message() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown command"));

    let out = bin()
        .args(["schedule", "--matrix", "/definitely/missing.csv"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let out = bin()
        .args(["generate", "--scenario", "nope", "--p", "4"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown scenario"));

    let out = bin().args(["generate", "--p", "4"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("--scenario"));
}

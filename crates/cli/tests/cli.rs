//! End-to-end tests of the `adaptcomm` binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_adaptcomm"))
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("adaptcomm-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("generate"));
    // No arguments behaves like help.
    let out = bin().output().unwrap();
    assert!(out.status.success());
}

#[test]
fn gusto_prints_both_tables() {
    let out = bin().arg("gusto").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Table 1"));
    assert!(text.contains("4976"));
}

#[test]
fn generate_schedule_compare_round_trip() {
    let out = bin()
        .args(["generate", "--scenario", "fig11", "--p", "6", "--seed", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let csv = String::from_utf8(out.stdout).unwrap();
    assert_eq!(csv.lines().count(), 6);

    let matrix_path = temp_path("matrix.csv");
    std::fs::write(&matrix_path, &csv).unwrap();

    let out = bin()
        .args(["compare", "--matrix", matrix_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let table = String::from_utf8(out.stdout).unwrap();
    assert!(table.contains("openshop"));
    assert!(table.contains("baseline"));

    let svg_path = temp_path("sched.svg");
    let json_path = temp_path("sched.json");
    let out = bin()
        .args([
            "schedule",
            "--matrix",
            matrix_path.to_str().unwrap(),
            "--algorithm",
            "matching-max",
            "--events",
            "--svg",
            svg_path.to_str().unwrap(),
            "--json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let svg = std::fs::read_to_string(&svg_path).unwrap();
    assert!(svg.starts_with("<svg"));
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains(r#""events""#));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("matching-max"));
    // 6 processors → 30 event rows.
    assert_eq!(
        stdout
            .lines()
            .filter(|l| l
                .trim_start()
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit()))
            .count(),
        30
    );

    let _ = std::fs::remove_file(matrix_path);
    let _ = std::fs::remove_file(svg_path);
    let _ = std::fs::remove_file(json_path);
}

#[test]
fn obs_dump_and_summary_round_trip() {
    let trace_path = temp_path("obs-trace.json");
    let out = bin()
        .args([
            "run",
            "--backend",
            "channel",
            "--p",
            "4",
            "--adapt",
            "--obs",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("wrote"));

    // The dump is a Chrome trace document with the driver-track spans.
    let text = std::fs::read_to_string(&trace_path).unwrap();
    assert!(text.contains("traceEvents"));
    assert!(text.contains("\"schedule\""));
    assert!(text.contains("\"transfer\""));

    let out = bin()
        .args(["obs-summary", "--input", trace_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8(out.stdout).unwrap();
    assert!(summary.contains("phase"));
    assert!(summary.contains("transfer"));
    assert!(summary.contains("schedule"));

    // JSONL export of the same run parses as a summary too.
    let jsonl_path = temp_path("obs-trace.jsonl");
    let out = bin()
        .args(["run", "--p", "4", "--obs", jsonl_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(["obs-summary", "--input", jsonl_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    let _ = std::fs::remove_file(trace_path);
    let _ = std::fs::remove_file(jsonl_path);
}

/// A self-contained HTML sanity check: one document, inline SVG, no
/// external fetches (every `http` occurrence is an SVG xmlns).
fn assert_self_contained_html(html: &str) {
    assert!(
        html.starts_with("<!DOCTYPE html>"),
        "must be a full document"
    );
    assert!(html.contains("</html>"));
    assert!(html.contains("<svg"), "charts must be inline SVG");
    assert_eq!(
        html.matches("http").count(),
        html.matches("http://www.w3.org/2000/svg").count(),
        "no external links: every http occurrence must be the SVG xmlns"
    );
    assert!(!html.contains("<script src"));
    assert!(!html.contains("<link "));
}

#[test]
fn report_renders_html_from_both_jsonl_and_chrome_dumps() {
    for (ext, name) in [("jsonl", "jsonl"), ("json", "chrome")] {
        let dump = temp_path(&format!("report-dump-{name}.{ext}"));
        let out = bin()
            .args([
                "run",
                "--p",
                "4",
                "--adapt",
                "--obs",
                dump.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );

        let html_path = temp_path(&format!("report-{name}.html"));
        let out = bin()
            .args([
                "report",
                "--input",
                dump.to_str().unwrap(),
                "--html",
                html_path.to_str().unwrap(),
                "--title",
                "smoke run",
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{name}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let html = std::fs::read_to_string(&html_path).unwrap();
        assert_self_contained_html(&html);
        assert!(html.contains("smoke run"));
        // The adaptive run's prober feeds link series; both dump
        // formats must carry them into the dashboard.
        assert!(html.contains("link."), "{name}: link series missing");

        let _ = std::fs::remove_file(dump);
        let _ = std::fs::remove_file(html_path);
    }
}

#[test]
fn adaptive_run_publishes_a_status_file_top_can_render() {
    let status = temp_path("status.json");
    let out = bin()
        .args([
            "run",
            "--p",
            "4",
            "--adapt",
            "--trigger",
            "detector",
            "--status",
            status.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("trigger detector"));

    // The finished run leaves a `done` status document behind; a single
    // non-interactive frame renders from it.
    let out = bin()
        .args(["top", "--input", status.to_str().unwrap(), "--once"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let frame = String::from_utf8(out.stdout).unwrap();
    assert!(frame.contains("done"));
    assert!(frame.contains("12/12 transfers"));
    assert!(frame.contains("100%"));
    assert!(frame.contains("links"));
    // --once must not emit terminal control sequences.
    assert!(!frame.contains('\x1b'));

    let _ = std::fs::remove_file(status);
}

#[test]
fn status_and_trigger_require_adapt() {
    let out = bin()
        .args(["run", "--p", "4", "--trigger", "detector"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("require --adapt"));

    let out = bin()
        .args(["top", "--input", "/definitely/missing.json", "--once"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

/// Kills a spawned server on panic so a failed assertion cannot leak a
/// listener into later test runs. `take()` hands the child back for a
/// clean `wait_with_output` on the success path.
struct ChildGuard(Option<std::process::Child>);

impl ChildGuard {
    fn take(&mut self) -> std::process::Child {
        self.0.take().unwrap()
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        if let Some(child) = &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// One blocking HTTP/1.0 exchange against the scrape server, retrying
/// the connect while it races its bind. Returns `(status_line, body)`.
fn http_get(addr: &str, path: &str) -> (String, String) {
    use std::io::{Read as _, Write as _};
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let mut stream = loop {
        match std::net::TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(e) if std::time::Instant::now() >= deadline => {
                panic!("connecting to metrics server {addr}: {e}")
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    };
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

/// The tentpole acceptance test: a real client process and a real
/// server process, each writing its own JSONL capture, merged by
/// `obs-merge` into one Chrome trace in which the client's span and the
/// server's spans share one propagated trace id with correct
/// parent/child nesting across the process boundary — and a raw
/// old-protocol request (no trace field, the pre-trace wire format)
/// still gets served.
#[test]
fn cross_process_trace_merges_into_one_request_tree() {
    use adaptcomm_obs::json::Value;
    use adaptcomm_obs::trace::{id_to_hex, TraceContext};

    let addr = "127.0.0.1:47907";
    let server_jsonl = temp_path("xproc-server.jsonl");
    let client_jsonl = temp_path("xproc-client.jsonl");
    let merged = temp_path("xproc-merged.json");

    let mut server = ChildGuard(Some(
        bin()
            .args([
                "plan-server",
                "--addr",
                addr,
                "--obs",
                server_jsonl.to_str().unwrap(),
            ])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap(),
    ));

    // One traced request from a fresh client: tenant `alice`, seq 0 —
    // every id in the tree is recomputable from that pair.
    let out = bin()
        .args([
            "plan-client",
            "--addr",
            addr,
            "--scenario",
            "fig11",
            "--p",
            "6",
            "--tenant",
            "alice",
            "--obs",
            client_jsonl.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let root = TraceContext::root("alice", 0);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains(&format!("trace: {}", id_to_hex(root.trace_id))),
        "client must print the echoed trace id: {stdout}"
    );

    // An old-protocol client: encode a request with no trace field —
    // byte-identical to the pre-trace wire format — over a raw socket.
    {
        use adaptcomm_plansrv::proto::{
            encode_request, parse_response, PlanRequest, PlanResponse, QosSpec, Request, MAX_FRAME,
            PROTO_VERSION,
        };
        use adaptcomm_runtime::tcp::{read_frame, write_frame};
        let matrix = adaptcomm_core::matrix::CommMatrix::from_fn(4, |s, d| {
            if s == d {
                0.0
            } else {
                (s * 4 + d) as f64
            }
        });
        let request = Request::Plan(PlanRequest {
            tenant: "legacy".into(),
            algorithm: "matching-max".into(),
            matrix: Some(matrix.clone()),
            fingerprint: Some(matrix.fingerprint()),
            qos: QosSpec::default(),
            trace: None,
        });
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, PROTO_VERSION, &encode_request(&request)).unwrap();
        let (tag, payload) = read_frame(&mut stream, MAX_FRAME).unwrap();
        assert_eq!(tag, PROTO_VERSION);
        match parse_response(&payload).unwrap() {
            PlanResponse::Ok(ok) => assert_eq!(ok.trace_id, None, "no trace in, no trace out"),
            other => panic!("legacy request failed: {other:?}"),
        }
    }

    let out = bin()
        .args(["plan-client", "--addr", addr, "--shutdown"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = server.take().wait_with_output().unwrap();
    assert!(out.status.success(), "server exit: {:?}", out.status);

    let out = bin()
        .args([
            "obs-merge",
            "--out",
            merged.to_str().unwrap(),
            "--inputs",
            &format!(
                "{},{}",
                client_jsonl.to_str().unwrap(),
                server_jsonl.to_str().unwrap()
            ),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The merged document: find each span's begin event and check the
    // propagated ids. Nesting is asserted via parent ids, not
    // timestamps — each process keeps its own clock epoch.
    let doc = Value::parse(&std::fs::read_to_string(&merged).unwrap()).unwrap();
    let events = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
    let begin = |name: &str| {
        events
            .iter()
            .find(|e| {
                e.get("ph").and_then(Value::as_str) == Some("B")
                    && e.get("name").and_then(Value::as_str) == Some(name)
            })
            .unwrap_or_else(|| panic!("no begin event for span {name:?}"))
    };
    let arg = |e: &Value, key: &str| {
        e.get("args")
            .and_then(|a| a.get(key))
            .and_then(Value::as_str)
            .map(str::to_string)
    };
    let worker_ctx = root.child(2);
    let client_span = begin("plansrv.client");
    let admission = begin("plansrv.admission");
    let worker = begin("plansrv.worker");
    let solve = begin("plansrv.solve");
    // One trace id across the process boundary.
    for (label, span) in [
        ("client", client_span),
        ("admission", admission),
        ("worker", worker),
        ("solve", solve),
    ] {
        assert_eq!(
            arg(span, "trace_id").as_deref(),
            Some(id_to_hex(root.trace_id).as_str()),
            "{label} span trace id"
        );
    }
    // The client's span IS the root: no parent.
    assert_eq!(
        arg(client_span, "span_id").as_deref(),
        Some(id_to_hex(root.span_id).as_str())
    );
    assert_eq!(arg(client_span, "parent_id"), None);
    // Server-side spans hang off the propagated root, children off the
    // worker — the exact derivation the client can recompute.
    assert_eq!(
        arg(admission, "parent_id").as_deref(),
        Some(id_to_hex(root.span_id).as_str())
    );
    assert_eq!(
        arg(worker, "span_id").as_deref(),
        Some(id_to_hex(worker_ctx.span_id).as_str())
    );
    assert_eq!(
        arg(worker, "parent_id").as_deref(),
        Some(id_to_hex(root.span_id).as_str())
    );
    assert_eq!(
        arg(solve, "parent_id").as_deref(),
        Some(id_to_hex(worker_ctx.span_id).as_str())
    );
    // And the tree genuinely crosses processes: the client span and the
    // worker span live on different Chrome pids.
    assert_ne!(
        client_span.get("pid").and_then(Value::as_f64),
        worker.get("pid").and_then(Value::as_f64)
    );

    let _ = std::fs::remove_file(server_jsonl);
    let _ = std::fs::remove_file(client_jsonl);
    let _ = std::fs::remove_file(merged);
}

#[test]
fn metrics_endpoints_serve_wellformed_output() {
    use adaptcomm_obs::json::Value;

    let addr = "127.0.0.1:47911";
    let metrics_addr = "127.0.0.1:47912";
    let mut server = ChildGuard(Some(
        bin()
            .args(["plan-server", "--addr", addr, "--metrics-port", "47912"])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap(),
    ));

    let out = bin()
        .args([
            "plan-client",
            "--addr",
            addr,
            "--scenario",
            "fig9",
            "--p",
            "4",
            "--tenant",
            "mtr",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // /metrics: Prometheus text with the per-tenant counter under its
    // sanitized name.
    let (status, body) = http_get(metrics_addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(
        body.contains("plansrv_tenant_mtr_requests 1"),
        "metrics body:\n{body}"
    );
    assert!(body.contains("# TYPE"), "metrics body:\n{body}");

    let (status, body) = http_get(metrics_addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body.trim(), "ok");

    // /tenants: JSON that parses with the workspace's own parser.
    let (status, body) = http_get(metrics_addr, "/tenants");
    assert!(status.contains("200"), "{status}");
    let doc = Value::parse(&body).expect("/tenants must be valid JSON");
    let tenants = doc.get("tenants").and_then(Value::as_arr).unwrap();
    let row = tenants
        .iter()
        .find(|t| t.get("name").and_then(Value::as_str) == Some("mtr"))
        .expect("tenant row for mtr");
    assert_eq!(row.get("requests").and_then(Value::as_u64), Some(1));

    let (status, _) = http_get(metrics_addr, "/definitely-not-a-route");
    assert!(status.contains("404"), "{status}");

    let out = bin()
        .args(["plan-client", "--addr", addr, "--shutdown"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = server.take().wait_with_output().unwrap();
    assert!(out.status.success(), "server exit: {:?}", out.status);
}

/// The flight-recorder acceptance path: a chaos run that blows the SLO
/// exits nonzero AND leaves a dump of the recent event window behind,
/// containing the injected faults and the replans they provoked, and
/// the dump replays through `obs-summary`.
#[test]
fn chaos_slo_breach_dumps_flight_recorder() {
    let flight = temp_path("chaos-flight.jsonl");
    // A ring of liar faults at 100x degradation from t=0: the run
    // completes (nothing is dead, so nothing parks), but every link
    // crawls — deterministically far past the 3x completion SLO.
    let out = bin()
        .args([
            "chaos",
            "--p",
            "6",
            "--seed",
            "0",
            "--scenario",
            "liar:0-1@0x100;liar:1-2@0x100;liar:2-3@0x100;\
             liar:3-4@0x100;liar:4-5@0x100;liar:5-0@0x100",
            "--flight",
            flight.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "an SLO breach must exit nonzero");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("blew the SLO"), "{stderr}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("flight recorder dumped to"), "{stdout}");

    // The dump exists, names its trigger, and holds the fault window:
    // the injected specs and the replans they caused.
    let text = std::fs::read_to_string(&flight).unwrap();
    assert!(text.contains("flight.dump"), "dump must name its trigger");
    assert!(text.contains("chaos SLO breach"));
    assert!(text.contains("chaos.inject"));
    assert!(text.contains("runtime.replan"));

    // And it replays through the normal summary pipeline.
    let out = bin()
        .args(["obs-summary", "--input", flight.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8(out.stdout).unwrap();
    assert!(summary.contains("chaos.inject"));

    let _ = std::fs::remove_file(flight);
}

#[test]
fn errors_exit_nonzero_with_message() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown command"));

    let out = bin()
        .args(["schedule", "--matrix", "/definitely/missing.csv"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let out = bin()
        .args(["generate", "--scenario", "nope", "--p", "4"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown scenario"));

    let out = bin().args(["generate", "--p", "4"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("--scenario"));
}

//! Plain-CSV (de)serialization of communication matrices.

use adaptcomm_core::matrix::CommMatrix;

/// Serializes a matrix: one sender per line, comma-separated costs (ms).
pub fn to_csv(matrix: &CommMatrix) -> String {
    let p = matrix.len();
    let mut out = String::new();
    for src in 0..p {
        let row: Vec<String> = (0..p)
            .map(|dst| format!("{}", matrix.cost(src, dst).as_ms()))
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Parses a matrix from CSV text. Blank lines and `#` comments are
/// skipped; rows must be square and entries finite and non-negative.
pub fn from_csv(text: &str) -> Result<CommMatrix, String> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let row: Result<Vec<f64>, String> = line
            .split(',')
            .map(|cell| {
                cell.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("line {}: `{}` is not a number", lineno + 1, cell.trim()))
            })
            .collect();
        rows.push(row?);
    }
    if rows.is_empty() {
        return Err("matrix file contains no data rows".into());
    }
    let p = rows.len();
    for (i, row) in rows.iter().enumerate() {
        if row.len() != p {
            return Err(format!(
                "row {} has {} entries but the matrix has {p} rows",
                i + 1,
                row.len()
            ));
        }
        for (j, &v) in row.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "cost[{i}][{j}] = {v} must be finite and non-negative"
                ));
            }
        }
    }
    Ok(CommMatrix::from_rows(&rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let m = CommMatrix::from_rows(&[
            vec![0.0, 1.5, 2.0],
            vec![3.0, 0.0, 4.25],
            vec![5.0, 6.0, 0.0],
        ]);
        let text = to_csv(&m);
        let back = from_csv(&text).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let m = from_csv("# a comment\n\n0, 1\n2, 0\n").unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.cost(1, 0).as_ms(), 2.0);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(from_csv("").unwrap_err().contains("no data rows"));
        assert!(from_csv("0,x\n1,0\n").unwrap_err().contains("not a number"));
        assert!(from_csv("0,1,2\n1,0\n").unwrap_err().contains("entries"));
        assert!(from_csv("0,-1\n1,0\n")
            .unwrap_err()
            .contains("non-negative"));
    }
}

//! `adaptcomm` — command-line front end.
//!
//! ```text
//! adaptcomm gusto
//! adaptcomm generate --scenario fig11 --p 20 --seed 1 > matrix.csv
//! adaptcomm schedule --algorithm openshop --matrix matrix.csv --diagram
//! adaptcomm schedule --algorithm matching-max --matrix matrix.csv --svg out.svg
//! adaptcomm compare --matrix matrix.csv
//! adaptcomm sweep --scenario all --trials 5 --threads 4
//! adaptcomm run --backend channel --p 8 --adapt
//! ```
//!
//! Matrices are plain CSV: `P` rows of `P` comma-separated costs in
//! milliseconds (sender-major; zero diagonal).

mod args;
mod csv;
mod top;

use adaptcomm_core::algorithms::{all_schedulers, Scheduler};
use adaptcomm_core::matrix::CommMatrix;
use adaptcomm_core::timing::TimingDiagram;
use adaptcomm_workloads::Scenario;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `adaptcomm help` for usage");
            ExitCode::from(2)
        }
    }
}

const HELP: &str = "\
adaptcomm — adaptive communication scheduling (HPDC 1998)

USAGE:
  adaptcomm gusto
      Print the GUSTO latency/bandwidth tables (paper Tables 1-2).

  adaptcomm generate --scenario <fig9|fig10|fig11|fig12|transpose> --p <N>
                     [--seed <u64>] [--n <dim>]
      Emit a communication-cost matrix (CSV, ms) for a paper scenario
      over a random GUSTO-guided network.

  adaptcomm schedule --matrix <file.csv> [--algorithm <name>]
                     [--diagram] [--svg <out.svg>] [--json <out.json>] [--events]
      Schedule a total exchange. Algorithms: baseline, matching-max,
      matching-min, greedy, openshop (default).

  adaptcomm compare --matrix <file.csv> [--threads <N>] [--obs <path>]
      Run every algorithm and print the comparison table. --threads
      (default 1) parallelizes the matching LAP solves; plans are
      bit-identical at any thread count. The `construction` column
      reports how each plan was produced (cold / warm / incremental /
      hit, `-` for stateless schedulers).

  adaptcomm sweep [--scenario <all|fig9|fig10|fig11|fig12>] [--pmin <N>]
                  [--pmax <N>] [--pstep <N>] [--trials <N>] [--threads <N>]
                  [--obs <path>]
      Evaluate every algorithm over the (scenario x P x trial) grid on
      the parallel sweep engine and print lb-ratio statistics. Seeds are
      derived from grid coordinates, so any --threads value produces the
      same numbers. --threads 0 (default) uses all cores; 1 is serial.

  adaptcomm run [--backend <channel|tcp>] [--p <N>] [--scenario <name>]
                [--seed <u64>] [--algorithm <name>] [--adapt]
                [--drift <factor>] [--drift-at <ms>] [--threshold <frac>]
                [--trigger <deviation|detector>]
                [--replanner <openshop|matching-max|matching-min>]
                [--threads <N>] [--status <path>]
                [--pace <us-per-ms>] [--trace] [--obs <path>]
                [--metrics-port <port>]
      Execute a total exchange live: one OS thread per processor moving
      real bytes through the chosen transport under the paper's port
      model. --adapt attaches the measure -> schedule -> execute ->
      adapt loop (probe, publish to the directory, replan at
      checkpoints). --trigger picks the replan decision: `deviation`
      (progress slips past --threshold) or `detector` (per-link CUSUM
      change detection). --replanner picks the replan algorithm
      (default matching-max, which retains its plan across checkpoints
      and serves repeat replans via the paper's §6 incremental
      rescheduling); --threads parallelizes its LAP solves. --drift
      scales a few links' bandwidth by <factor> at --drift-at modeled
      ms to provoke adaptation. --status publishes a live JSON status
      file at every checkpoint for `adaptcomm top` to poll. --trace
      dumps the per-event wall/modeled timeline.

  adaptcomm chaos [--scenario <crash|partition|liar|mixed|spec>] [--p <N>]
                  [--seed <u64>] [--workload <name>] [--obs <path>]
                  [--flight <path>]
      Inject faults into a live total exchange and grade the recovery.
      --scenario names a generated fault class (seeded from --seed and
      scaled to the workload's fault-free makespan) or gives an explicit
      plan spec: `;`-separated `crash:PROC@AT..RESTART`,
      `partition:N,N,..@AT..HEAL`, `liar:SRC-DST@FROMxFACTOR` with times
      in modeled ms (e.g. 'crash:2@120..400;liar:1-3@50x4'). Prints the
      per-fault recovery report, the quarantine roster, the
      recovery-time histogram, and a final `SLO:` verdict line; exits
      nonzero when the SLO is blown or a message was lost or duplicated.
      On an SLO breach the always-on flight recorder dumps its recent
      event window (injected faults, runtime fault/heal notes) to
      --flight (default chaos-flight.jsonl) for post-mortem replay
      through obs-summary.

  adaptcomm top --input <status.json> [--interval <ms>] [--frames <N>]
                [--once] [--capture <obs.jsonl>]
      Watch a running `run --adapt --status <path>` live in the
      terminal: progress, replan events, grant-queue depth, and
      per-link health with sparkline bandwidth history. Refreshes every
      --interval ms (default 250) until the run reports `done`; --once
      renders a single frame and exits (non-interactive / CI).
      --capture points at an obs dump of the run; each frame then ends
      with a `slowest link` blame line from the explain-plane analyzer.

  adaptcomm report --input <obs dump> --html <out.html> [--title <text>]
      Render an observability dump (JSONL or Chrome trace) as a
      self-contained HTML dashboard: inline SVG time-series charts,
      per-phase span table, and a link-health matrix. No external
      assets — the file opens anywhere.

  adaptcomm obs-summary --input <path>
      Summarize an observability dump: per-phase span totals, instants,
      counters. The format follows the extension: `.jsonl` (event
      stream, including flight-recorder dumps), `.prom`/`.txt`
      (Prometheus text), `.json`/`.trace` (Chrome trace). Unknown
      extensions are a typed error naming the supported ones.

  adaptcomm explain (--input <obs dump> | --matrix <file.csv> |
                     --scenario <name> --p <N>) [--seed <u64>] [--n <dim>]
                     [--algorithm <name>] [--k <speedup>] [--top <N>]
                     [--capture <out.jsonl>]
      Explain where a run's completion time comes from. Builds the
      blocking-dependency DAG of the run — from a captured obs dump
      (JSONL or Chrome trace with transfer spans), a matrix scheduled
      with --algorithm (default openshop), or a generated scenario —
      and prints the critical path, the per-link/per-processor blame
      table, a slack histogram, and a COZ-style what-if table: the
      top --top (default 5) links ranked by how much speeding each one
      --k x (default 2) would move the completion, with realized port
      orders held fixed (no re-simulation). --capture writes the
      analyzed transfers back out as a deterministic JSONL capture
      (bit-identical across runs; feed it to obs-diff or report).

  adaptcomm obs-diff --base <dump> --head <dump> [--fail-over <pct>]
      Diff two captures. Spans are aligned per (phase, track) in start
      order and summed over aligned pairs, so truncation skews counts,
      not totals; transfer spans also aggregate per link. Prints
      per-phase and per-link deltas plus the worst regression line.
      With --fail-over, exits nonzero when the worst regression
      exceeds <pct> percent — wire it under perfgate to say *where* a
      regression lives, not just that one exists.

  adaptcomm obs-merge --out <trace.json> --inputs <a.jsonl,b.jsonl,..>
      Merge per-process JSONL captures into one Chrome trace, one
      process lane per input (labeled by file stem). Spans that carry
      the same propagated trace id — e.g. a plan-client request and the
      server-side admission/worker/solve spans it fanned into — line up
      as one cross-process request tree in Perfetto.

  adaptcomm plan-server [--addr <host:port>] [--workers <N>] [--shards <N>]
                        [--cache <entries>] [--near-tolerance <frac>]
                        [--threads <N>] [--pace-ms <ms>] [--obs <path>]
                        [--metrics-port <port>] [--flight-dir <dir>]
      Run the multi-tenant scheduling service: a TCP plan server with a
      fingerprint-keyed plan cache (exact hits replay plans; near hits
      are re-solved incrementally from the cached plan, or warm-start
      the LAP solver when no plan was retained; --threads parallelizes
      the matching solves) and QoS admission control
      (priority tiers, EDF, deadline rejection). --addr defaults to an
      ephemeral loopback port, printed on startup. Runs until a client
      sends the shutdown frame (`plan-client --shutdown`); prints cache
      and per-tenant directory statistics on exit. --pace-ms stretches
      every cold/warm solve for deterministic queueing demos.
      --metrics-port serves a live scrape surface on 127.0.0.1:
      GET /metrics (Prometheus text), /healthz, and /tenants (per-tenant
      JSON: requests, cache dispositions, deadline-hit ratio, rejects,
      latency digest). A streak of deadline rejections auto-dumps the
      flight recorder into --flight-dir (default: working directory).

  adaptcomm plan-client --addr <host:port>
                        (--matrix <file.csv> | --scenario <name> --p <N>)
                        [--seed <u64>] [--algorithm <name>] [--tenant <name>]
                        [--deadline <ms>] [--priority <0-255>]
                        [--critical <s-d,s-d,..>] [--repeat <N>]
                        [--probe] [--shutdown] [--obs <path>]
      Request plans from a running plan server. Prints one `cache: ..`
      line per response (cold / hit / warm / incremental) with epoch, serving
      sequence, completion estimate and solver counters. --probe sends
      a fingerprint-only request (no P^2 matrix on the wire); --repeat
      re-sends the same request to exercise the cache; --shutdown asks
      the server to drain and stop after the requests. --critical pins
      the listed src-dst links to the front of their senders' orders.
      Every request carries a deterministic trace context; --obs captures
      the client-side spans so `obs-merge` can stitch them with the
      server's capture into one cross-process trace.

  adaptcomm help
      This text.

The --obs <path> option (run, compare, sweep, chaos, plan-server,
plan-client) enables the in-process observability registry for the
duration of the command and writes the collected metrics when it
finishes. The export format follows the file extension: `.jsonl` ->
JSONL event stream, `.prom`/`.txt` -> Prometheus-style text dump,
anything else -> Chrome trace_event JSON (load in Perfetto /
chrome://tracing, or feed to obs-summary).
";

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        print!("{HELP}");
        return Ok(());
    };
    let opts = args::Options::parse(&argv[1..])?;

    match command.as_str() {
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        "gusto" => {
            print_gusto();
            Ok(())
        }
        "generate" => generate(&opts),
        "schedule" => schedule(&opts),
        "compare" => compare(&opts),
        "sweep" => sweep(&opts),
        "run" => run_live(&opts),
        "chaos" => chaos_run(&opts),
        "top" => top_live(&opts),
        "report" => report_html(&opts),
        "explain" => explain(&opts),
        "obs-diff" => obs_diff(&opts),
        "obs-summary" => obs_summary(&opts),
        "obs-merge" => obs_merge(&opts),
        "plan-server" => plan_server(&opts),
        "plan-client" => plan_client(&opts),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn print_gusto() {
    use adaptcomm_model::gusto::{bandwidth_kbps, latency_ms, Site};
    println!("Table 1: latency (ms)");
    for a in Site::ALL {
        let row: Vec<String> = Site::ALL
            .iter()
            .map(|b| {
                if a == *b {
                    "-".into()
                } else {
                    format!("{}", latency_ms(a.index(), b.index()))
                }
            })
            .collect();
        println!("{:>8}: {}", a.name(), row.join(", "));
    }
    println!("Table 2: bandwidth (kbit/s)");
    for a in Site::ALL {
        let row: Vec<String> = Site::ALL
            .iter()
            .map(|b| {
                if a == *b {
                    "-".into()
                } else {
                    format!("{}", bandwidth_kbps(a.index(), b.index()))
                }
            })
            .collect();
        println!("{:>8}: {}", a.name(), row.join(", "));
    }
}

/// Arms the global observability registry when `--obs <path>` was
/// given, returning the export path. The registry starts from a clean
/// slate so the dump covers exactly this command.
fn obs_begin(opts: &args::Options) -> Option<String> {
    let path = opts.get("obs")?;
    let obs = adaptcomm_obs::global();
    obs.clear();
    obs.set_enabled(true);
    Some(path)
}

/// Snapshots the global registry, disables it, and writes the dump in
/// the format implied by the file extension: `.jsonl` → JSONL event
/// stream, `.prom`/`.txt` → Prometheus text, anything else → Chrome
/// trace_event JSON.
fn obs_finish(path: &str) -> Result<(), String> {
    let obs = adaptcomm_obs::global();
    let snap = obs.snapshot();
    obs.set_enabled(false);
    let text = if path.ends_with(".jsonl") {
        snap.to_jsonl()
    } else if path.ends_with(".prom") || path.ends_with(".txt") {
        snap.to_prometheus()
    } else {
        snap.to_chrome_trace()
    };
    std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
    println!(
        "wrote {path} ({} span(s), {} instant(s), {} counter(s))",
        snap.spans().count(),
        snap.instants().count(),
        snap.counters.len()
    );
    Ok(())
}

/// `adaptcomm top`: poll a status file and render frames until the run
/// reports `done` (or `--once` / `--frames` bounds the watch).
fn top_live(opts: &args::Options) -> Result<(), String> {
    let path = opts.require("input")?;
    let once = opts.flag("once");
    let interval_ms: u64 = opts.parsed_or("interval", 250)?;
    let max_frames: u64 = opts.parsed_or("frames", 0)?; // 0 = until done
                                                        // With --capture, every frame ends with a "slowest link" blame line
                                                        // from the explain-plane analyzer (computed once; the capture is a
                                                        // finished dump, not the live status file).
    let blame = match opts.get("capture") {
        Some(cpath) => {
            let text =
                std::fs::read_to_string(&cpath).map_err(|e| format!("reading {cpath}: {e}"))?;
            Some(top::blame_line(&text)?)
        }
        None => None,
    };
    let mut rendered = 0u64;
    loop {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if once => return Err(format!("reading {path}: {e}")),
            // The run may not have reached its first checkpoint yet.
            Err(_) => {
                std::thread::sleep(std::time::Duration::from_millis(interval_ms));
                continue;
            }
        };
        let doc = adaptcomm_obs::json::Value::parse(&text)
            .map_err(|e| format!("{path} is not a status document: {e}"))?;
        let frame = top::render_frame(&doc)?;
        if !once {
            // Clear and home, so the frame repaints in place.
            print!("\x1b[2J\x1b[H");
        }
        print!("{frame}");
        if let Some(line) = &blame {
            println!("{line}");
        }
        rendered += 1;
        let done = doc
            .get("state")
            .and_then(adaptcomm_obs::json::Value::as_str)
            == Some("done");
        if once || done || (max_frames > 0 && rendered >= max_frames) {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// `adaptcomm report`: observability dump → self-contained HTML
/// dashboard.
fn report_html(opts: &args::Options) -> Result<(), String> {
    let input = opts.require("input")?;
    let out_path = opts.require("html")?;
    let text = std::fs::read_to_string(&input).map_err(|e| format!("reading {input}: {e}"))?;
    let title = opts.get("title").unwrap_or_else(|| input.clone());
    let html = adaptcomm_obs::report::html_report(&text, &title)?;
    std::fs::write(&out_path, &html).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!("wrote {out_path} ({} bytes)", html.len());
    Ok(())
}

/// `adaptcomm explain`: critical-path blame, slack, and what-if
/// projections for a capture or an analytic schedule.
fn explain(opts: &args::Options) -> Result<(), String> {
    use adaptcomm_obs::causal::{transfers_from_text, CausalDag};

    let k: f64 = opts.parsed_or("k", 2.0)?;
    if k < 1.0 {
        return Err("--k is a speedup factor and must be >= 1".into());
    }
    let top_k: usize = opts.parsed_or("top", 5)?;

    // The run under analysis: a capture, or an analytic schedule (which
    // also knows the matrix lower bound, so the gap can be reported).
    let (dag, lower_bound_ms, label) = if let Some(path) = opts.get("input") {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
        let transfers = transfers_from_text(&text)?;
        if transfers.is_empty() {
            return Err(format!(
                "{path} holds no transfer spans (spans with src/dst attrs); \
                 capture a run with --obs <path.jsonl> first"
            ));
        }
        (CausalDag::new(transfers), None, path)
    } else {
        let matrix = if opts.get("matrix").is_some() {
            load_matrix(opts)?
        } else if let Some(name) = opts.get("scenario") {
            let p: usize = opts.require_parsed("p")?;
            let seed: u64 = opts.parsed_or("seed", 0)?;
            let n: usize = opts.parsed_or("n", p * 8)?;
            scenario_by_name(&name, n)?.instance(p, seed).matrix
        } else {
            return Err(
                "give --input <obs dump>, --matrix <file.csv>, or --scenario <name> --p <N>".into(),
            );
        };
        let algorithm = opts.get("algorithm").unwrap_or_else(|| "openshop".into());
        let schedule = scheduler_by_name(&algorithm)?.schedule(&matrix);
        let label = format!("{algorithm} schedule, P = {}", matrix.len());
        (
            adaptcomm_core::analyze::dag_of(&schedule),
            Some(matrix.lower_bound().as_ms()),
            label,
        )
    };

    println!(
        "explain: {label} | {} transfer(s) | completion {:.3} ms",
        dag.transfers().len(),
        dag.completion_ms()
    );
    if let Some(lb) = lower_bound_ms {
        let gap = if lb > 0.0 {
            (dag.completion_ms() / lb - 1.0) * 100.0
        } else {
            0.0
        };
        println!("lower bound: {lb:.3} ms | gap above t_lb: {gap:.2}%");
    }

    let path = dag.critical_path();
    println!(
        "critical path: {} hop(s) explaining all {:.3} ms",
        path.len(),
        dag.completion_ms()
    );
    println!(
        "  {:>4} {:>4} {:>12} {:>10} {:>10} {:>12}",
        "src", "dst", "start(ms)", "dur(ms)", "wait(ms)", "contrib(ms)"
    );
    for step in &path {
        let t = step.transfer;
        println!(
            "  {:>4} {:>4} {:>12.3} {:>10.3} {:>10.3} {:>12.3}",
            t.src, t.dst, t.start_ms, t.dur_ms, step.wait_ms, step.contribution_ms
        );
    }

    let blame = dag.blame();
    println!("blame (critical-path time per link):");
    println!(
        "  {:>8} {:>10} {:>10} {:>5} {:>7}",
        "link", "busy(ms)", "wait(ms)", "hops", "share%"
    );
    for l in &blame.links {
        println!(
            "  {:>8} {:>10.3} {:>10.3} {:>5} {:>7.1}",
            format!("{}->{}", l.src, l.dst),
            l.busy_ms,
            l.wait_ms,
            l.hops,
            if blame.completion_ms > 0.0 {
                l.busy_ms / blame.completion_ms * 100.0
            } else {
                0.0
            }
        );
    }
    println!("processors on the path:");
    println!("  {:>5} {:>10} {:>10}", "proc", "send(ms)", "recv(ms)");
    for p in &blame.procs {
        println!("  {:>5} {:>10.3} {:>10.3}", p.proc, p.send_ms, p.recv_ms);
    }

    print!("{}", render_slack_histogram(&dag));

    println!("what-if (one link {k:.1}x faster, realized port orders fixed):");
    println!(
        "  {:>8} {:>14} {:>11}",
        "link", "predicted(ms)", "delta(ms)"
    );
    for w in dag.interventions(k, top_k.max(1)) {
        println!(
            "  {:>8} {:>14.3} {:>11.3}",
            format!("{}->{}", w.src, w.dst),
            w.predicted_ms,
            w.delta_ms
        );
    }

    // A deterministic re-emission of the analyzed transfers: timestamps
    // are rounded to whole microseconds from the modeled times, so two
    // generations of the same run are bit-identical (the committed
    // self-diff fixtures depend on this).
    if let Some(out) = opts.get("capture") {
        let snap = synthetic_capture(dag.transfers());
        std::fs::write(&out, snap.to_jsonl()).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {out} ({} transfer span(s))", dag.transfers().len());
    }
    Ok(())
}

/// The slack histogram block of `explain`: how much headroom each
/// transfer has before the completion time moves, bucketed as a
/// fraction of the completion time.
fn render_slack_histogram(dag: &adaptcomm_obs::causal::CausalDag) -> String {
    let slack = dag.slack();
    let comp = dag.completion_ms();
    const EDGES: [f64; 5] = [0.01, 0.05, 0.10, 0.25, 0.50];
    let mut counts = [0usize; 7]; // [critical, <=1%, <=5%, <=10%, <=25%, <=50%, >50%]
    for &s in &slack {
        if s <= 0.0 {
            counts[0] += 1;
        } else {
            let frac = if comp > 0.0 { s / comp } else { 0.0 };
            let idx = EDGES.iter().position(|&e| frac <= e).unwrap_or(5);
            counts[idx + 1] += 1;
        }
    }
    let labels = [
        "0 (critical)".to_string(),
        "<=  1%".to_string(),
        "<=  5%".to_string(),
        "<= 10%".to_string(),
        "<= 25%".to_string(),
        "<= 50%".to_string(),
        " > 50%".to_string(),
    ];
    let peak = counts.iter().copied().max().unwrap_or(0).max(1);
    let mut out = String::from("slack histogram (headroom as % of completion):\n");
    for (label, &n) in labels.iter().zip(&counts) {
        let bar = "#".repeat((n * 40).div_ceil(peak).min(40) * usize::from(n > 0));
        out.push_str(&format!("  {label:>12}: {n:>5} {bar}\n"));
    }
    out
}

/// The `--capture` output of `explain`: the analyzed transfers as
/// `transfer` spans in the exact shape `runtime::obs_bridge` records,
/// with whole-microsecond timestamps so the emission is deterministic.
fn synthetic_capture(transfers: &[adaptcomm_obs::causal::Transfer]) -> adaptcomm_obs::Snapshot {
    use adaptcomm_obs::{AttrValue, Event, Snapshot, SpanRecord};
    Snapshot {
        events: transfers
            .iter()
            .map(|t| {
                Event::Span(SpanRecord {
                    name: "transfer".into(),
                    tid: t.src as u64 + 1,
                    start_us: (t.start_ms * 1_000.0).round() as u64,
                    dur_us: (t.dur_ms * 1_000.0).round() as u64,
                    attrs: vec![
                        ("src".into(), AttrValue::U64(t.src as u64)),
                        ("dst".into(), AttrValue::U64(t.dst as u64)),
                    ],
                    trace: None,
                })
            })
            .collect(),
        ..Default::default()
    }
}

/// `adaptcomm obs-diff`: aligned base/head comparison of two captures,
/// with an optional regression threshold for CI.
fn obs_diff(opts: &args::Options) -> Result<(), String> {
    let base = opts.require("base")?;
    let head = opts.require("head")?;
    let base_text = std::fs::read_to_string(&base).map_err(|e| format!("reading {base}: {e}"))?;
    let head_text = std::fs::read_to_string(&head).map_err(|e| format!("reading {head}: {e}"))?;
    let diff = adaptcomm_obs::causal::diff_captures(&base_text, &head_text)
        .map_err(|e| format!("diffing {base} vs {head}: {e}"))?;
    print!("{}", diff.render());
    if let Some(threshold) = opts.get("fail-over") {
        let threshold: f64 = threshold
            .parse()
            .map_err(|_| "`--fail-over` has an invalid value".to_string())?;
        if let Some((label, pct)) = diff.worst_regression() {
            if pct > threshold {
                return Err(format!(
                    "regression over threshold: {label} (+{pct:.2}% > {threshold}%)"
                ));
            }
        }
    }
    Ok(())
}

fn obs_summary(opts: &args::Options) -> Result<(), String> {
    let path = opts.require("input")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
    // Extension-based dispatch: `.prom` parses as Prometheus text,
    // unknown extensions get a typed error naming what is supported.
    let summary =
        adaptcomm_obs::Summary::from_named_text(&path, &text).map_err(|e| e.to_string())?;
    print!("{}", summary.render());
    Ok(())
}

/// `adaptcomm obs-merge`: stitch per-process JSONL captures into one
/// Chrome trace, one process lane per input. Spans that share a
/// propagated trace id line up as a single cross-process request tree.
fn obs_merge(opts: &args::Options) -> Result<(), String> {
    let out = opts.require("out")?;
    let inputs = opts.require("inputs")?;
    let mut parts: Vec<(String, adaptcomm_obs::Snapshot)> = Vec::new();
    for path in inputs.split(',').filter(|p| !p.is_empty()) {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let snap = adaptcomm_obs::Snapshot::from_jsonl(&text)
            .map_err(|e| format!("{path} is not snapshot JSONL: {e}"))?;
        // The process label is the file stem: client.jsonl -> "client".
        let base = path.rsplit(['/', '\\']).next().unwrap_or(path);
        let label = base.strip_suffix(".jsonl").unwrap_or(base).to_string();
        parts.push((label, snap));
    }
    if parts.is_empty() {
        return Err("`--inputs` needs at least one comma-separated JSONL path".into());
    }
    let trace = adaptcomm_obs::merge_chrome_trace(&parts);
    std::fs::write(&out, &trace).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out} ({} process(es))", parts.len());
    Ok(())
}

/// Starts the scrape server when `--metrics-port` was given. Serving
/// implies an enabled registry — a scrape of a disabled one would read
/// as "all quiet" — so this enables it (obs_begin may already have).
fn metrics_begin(
    opts: &args::Options,
    endpoints: adaptcomm_obs::ScrapeEndpoints,
) -> Result<Option<adaptcomm_obs::MetricsServer>, String> {
    let Some(port) = opts.get("metrics-port") else {
        return Ok(None);
    };
    let port: u16 = port
        .parse()
        .map_err(|_| "`--metrics-port` has an invalid value".to_string())?;
    let obs = adaptcomm_obs::global();
    obs.set_enabled(true);
    let server = adaptcomm_obs::serve_metrics_with(obs.clone(), ("127.0.0.1", port), endpoints)
        .map_err(|e| format!("binding metrics port {port}: {e}"))?;
    println!("metrics on http://{}/metrics", server.local_addr());
    Ok(Some(server))
}

fn scenario_by_name(name: &str, n: usize) -> Result<Scenario, String> {
    Ok(match name {
        "fig9" | "small" => Scenario::Small,
        "fig10" | "large" => Scenario::Large,
        "fig11" | "mixed" => Scenario::Mixed,
        "fig12" | "servers" => Scenario::Servers,
        "transpose" => Scenario::Transpose { n },
        other => return Err(format!("unknown scenario `{other}`")),
    })
}

fn generate(opts: &args::Options) -> Result<(), String> {
    let name = opts.require("scenario")?;
    let p: usize = opts.require_parsed("p")?;
    let seed: u64 = opts.parsed_or("seed", 0)?;
    let n: usize = opts.parsed_or("n", p * 8)?;
    let scenario = scenario_by_name(&name, n)?;
    let inst = scenario.instance(p, seed);
    print!("{}", csv::to_csv(&inst.matrix));
    Ok(())
}

fn load_matrix(opts: &args::Options) -> Result<CommMatrix, String> {
    let path = opts.require("matrix")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
    csv::from_csv(&text)
}

fn scheduler_by_name(name: &str) -> Result<Box<dyn Scheduler>, String> {
    all_schedulers()
        .into_iter()
        .find(|s| s.name() == name)
        .ok_or_else(|| {
            let names: Vec<_> = all_schedulers()
                .iter()
                .map(|s| s.name().to_string())
                .collect();
            format!(
                "unknown algorithm `{name}` (available: {})",
                names.join(", ")
            )
        })
}

fn schedule(opts: &args::Options) -> Result<(), String> {
    let matrix = load_matrix(opts)?;
    let algorithm = opts.get("algorithm").unwrap_or_else(|| "openshop".into());
    let scheduler = scheduler_by_name(&algorithm)?;
    let schedule = scheduler.schedule(&matrix);
    schedule
        .validate()
        .map_err(|e| format!("internal: invalid schedule: {e}"))?;
    println!(
        "{}: completion {} | lower bound {} | ratio {:.4}",
        scheduler.name(),
        schedule.completion_time(),
        matrix.lower_bound(),
        schedule.lb_ratio()
    );
    if opts.flag("events") {
        println!(
            "{:>6} {:>6} {:>12} {:>12}",
            "src", "dst", "start(ms)", "finish(ms)"
        );
        for e in schedule.events() {
            println!(
                "{:>6} {:>6} {:>12.2} {:>12.2}",
                e.src,
                e.dst,
                e.start.as_ms(),
                e.finish.as_ms()
            );
        }
    }
    if opts.flag("diagram") {
        println!("{}", TimingDiagram::of_schedule(&schedule).render(24));
    }
    if let Some(path) = opts.get("json") {
        let json = adaptcomm_core::export::schedule_to_json(&schedule);
        std::fs::write(&path, json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = opts.get("svg") {
        let svg = TimingDiagram::of_schedule(&schedule).render_svg(900, 600);
        std::fs::write(&path, svg).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn sweep(opts: &args::Options) -> Result<(), String> {
    use adaptcomm_bench::experiments::{DEFAULT_TRIALS, FIGURE_P_VALUES};
    use adaptcomm_bench::sweep::{summary_seed, SweepGrid, SweepRunner};
    use adaptcomm_model::generator::GeneratorConfig;

    let scenario_name = opts.get("scenario").unwrap_or_else(|| "all".into());
    let scenarios = if scenario_name == "all" {
        Scenario::FIGURES.to_vec()
    } else {
        vec![scenario_by_name(&scenario_name, 64)?]
    };
    let pmin: usize = opts.parsed_or("pmin", FIGURE_P_VALUES[0])?;
    let pmax: usize = opts.parsed_or("pmax", *FIGURE_P_VALUES.last().unwrap())?;
    let pstep: usize = opts.parsed_or("pstep", 5)?;
    if pmin < 2 || pmax < pmin || pstep == 0 {
        return Err("need 2 <= --pmin <= --pmax and --pstep >= 1".into());
    }
    let trials: u64 = opts.parsed_or("trials", DEFAULT_TRIALS)?;
    if trials == 0 {
        return Err("--trials must be at least 1".into());
    }
    let threads: usize = opts.parsed_or("threads", 0)?;
    let runner = if threads == 0 {
        SweepRunner::auto()
    } else {
        SweepRunner::new(threads)
    };

    let grid = SweepGrid {
        scenarios,
        p_values: (pmin..=pmax).step_by(pstep).collect(),
        trials,
        cfg: GeneratorConfig::default(),
        seed_fn: summary_seed,
    };
    let obs_path = obs_begin(opts);
    let clock = std::time::Instant::now();
    let stats = runner.stats(&grid);
    print!("{}", stats.render());
    println!(
        "{} instances in {:.2} s on {} thread(s)",
        stats.instances,
        clock.elapsed().as_secs_f64(),
        runner.threads()
    );
    if let Some(path) = obs_path {
        obs_finish(&path)?;
    }
    Ok(())
}

fn run_live(opts: &args::Options) -> Result<(), String> {
    use adaptcomm_core::algorithms::MatchingKind;
    use adaptcomm_core::checkpointed::{CheckpointPolicy, RescheduleRule};
    use adaptcomm_directory::DirectoryService;
    use adaptcomm_model::units::Millis;
    use adaptcomm_runtime::{
        execute, execute_adaptive_monitored, AdaptSettings, BackendKind, DetectorSettings,
        ReplanTrigger, Replanner, ShapedConfig,
    };
    use adaptcomm_sim::{Fault, ScriptedFaults};

    let backend: BackendKind = opts
        .get("backend")
        .unwrap_or_else(|| "channel".into())
        .parse()?;
    let p: usize = opts.parsed_or("p", 8)?;
    if p < 2 {
        return Err("--p must be at least 2".into());
    }
    let seed: u64 = opts.parsed_or("seed", 0)?;
    let scenario_name = opts.get("scenario").unwrap_or_else(|| "mixed".into());
    let scenario = scenario_by_name(&scenario_name, p * 8)?;
    let inst = scenario.instance(p, seed);
    let sizes = inst.sizes.to_rows();
    let algorithm = opts.get("algorithm").unwrap_or_else(|| "openshop".into());

    let obs_path = obs_begin(opts);
    let metrics = metrics_begin(opts, adaptcomm_obs::ScrapeEndpoints::new())?;
    let obs = adaptcomm_obs::global();
    let run_start_us = obs.now_us();

    // The initial schedule, as its own driver-track span so a Chrome
    // trace shows scheduling next to the transfers it produced.
    let sched_start_us = obs.now_us();
    let order = scheduler_by_name(&algorithm)?.send_order(&inst.matrix);
    if obs.is_enabled() {
        obs.record_span(adaptcomm_obs::SpanRecord {
            name: "schedule".to_string(),
            tid: 0,
            start_us: sched_start_us,
            dur_us: obs.now_us().saturating_sub(sched_start_us),
            attrs: vec![
                ("algorithm".to_string(), algorithm.as_str().into()),
                ("p".to_string(), p.into()),
            ],
            trace: None,
        });
    }

    let adapt = opts.flag("adapt");
    let drift: f64 = opts.parsed_or("drift", if adapt { 0.25 } else { 1.0 })?;
    if drift <= 0.0 {
        return Err("--drift must be a positive bandwidth factor".into());
    }
    let drift_at: f64 = opts.parsed_or("drift-at", 10.0)?;
    let threshold: f64 = opts.parsed_or("threshold", 0.05)?;
    let pace: f64 = opts.parsed_or("pace", 0.0)?;
    let pace = (pace > 0.0).then_some(pace);

    // A few deterministic links lose bandwidth at the drift instant, so
    // an adaptive run has something to adapt to.
    let script: Vec<Fault> = if (drift - 1.0).abs() > f64::EPSILON {
        (0..p.div_ceil(3))
            .map(|k| Fault {
                at: Millis::new(drift_at),
                src: k,
                dst: (k + 1) % p,
                factor: drift,
            })
            .collect()
    } else {
        Vec::new()
    };
    let faulted = !script.is_empty();
    let mut evolution = ScriptedFaults::new(inst.network.clone(), script);

    let trigger_name = opts.get("trigger").unwrap_or_else(|| "deviation".into());
    let trigger = match trigger_name.as_str() {
        "deviation" => ReplanTrigger::Deviation(RescheduleRule {
            deviation_threshold: threshold,
        }),
        "detector" => ReplanTrigger::Detector(DetectorSettings::default()),
        other => return Err(format!("unknown trigger `{other}` (deviation|detector)")),
    };
    let status_path = opts.get("status");
    if (status_path.is_some() || opts.get("trigger").is_some()) && !adapt {
        return Err("--status and --trigger require --adapt".into());
    }
    // The matching replanner is the default for adaptive runs: it
    // retains its plan and serves replans incrementally (§6). The
    // library default stays open-shop for backward compatibility.
    let replanner_name = opts.get("replanner").unwrap_or_else(|| "matching".into());
    let replanner = match replanner_name.as_str() {
        "openshop" => Replanner::OpenShop,
        "matching" | "matching-max" => Replanner::Matching(MatchingKind::Max),
        "matching-min" => Replanner::Matching(MatchingKind::Min),
        other => {
            return Err(format!(
                "unknown replanner `{other}` (openshop|matching-max|matching-min)"
            ))
        }
    };
    let threads: usize = opts.parsed_or("threads", 1)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    if opts.get("replanner").is_some() && !adapt {
        return Err("--replanner requires --adapt".into());
    }

    let report = if adapt {
        let directory = DirectoryService::new(inst.network.clone());
        let settings = AdaptSettings {
            policy: CheckpointPolicy::EveryEvent,
            trigger,
            pace_us_per_ms: pace,
            replanner,
            threads,
            ..Default::default()
        };
        execute_adaptive_monitored(
            &order.order,
            &sizes,
            &mut evolution,
            &directory,
            backend,
            settings,
            status_path.as_deref().map(std::path::Path::new),
        )
    } else {
        let config = ShapedConfig {
            pace_us_per_ms: pace,
            ..Default::default()
        };
        execute(&order.order, &sizes, &mut evolution, backend, config)
    }
    .map_err(|e| format!("live run failed: {e}"))?;

    if obs.is_enabled() {
        // Every completed transfer becomes a span on its sender's track;
        // the whole command is one root span on the driver track.
        adaptcomm_runtime::obs_bridge::record_transfers(&report.trace, obs);
        obs.record_span(adaptcomm_obs::SpanRecord {
            name: "run".to_string(),
            tid: 0,
            start_us: run_start_us,
            dur_us: obs.now_us().saturating_sub(run_start_us),
            attrs: vec![
                ("backend".to_string(), report.backend.to_string().into()),
                ("algorithm".to_string(), algorithm.as_str().into()),
                ("p".to_string(), p.into()),
            ],
            trace: None,
        });
    }

    println!(
        "live run: backend {} | {} | P = {} | algorithm {} | seed {}",
        report.backend, scenario_name, p, algorithm, seed
    );
    println!(
        "  messages {:>6}   bytes {:>12}   receipts {}",
        report.records.len(),
        report.receipts.iter().map(|r| r.bytes).sum::<u64>(),
        if report.receipts_ok {
            "verified"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "  planned {:>10.2} ms   realized {:>10.2} ms   wall {:>8.2} ms",
        report.planned_makespan.as_ms(),
        report.makespan.as_ms(),
        report.trace.wall_elapsed_us() as f64 / 1000.0
    );
    if faulted {
        println!(
            "  drift: bandwidth x{drift:.2} on {} link(s) at {drift_at:.1} ms",
            p.div_ceil(3)
        );
    }
    if adapt {
        println!(
            "  loop: trigger {trigger_name} | replanner {replanner_name} | {} checkpoint(s), {} reschedule(s) ({} incremental), {} attempt(s), {} measurement(s) published",
            report.checkpoints_evaluated,
            report.reschedules,
            report.incremental_reschedules,
            report.attempts,
            report.measurements_published
        );
    }
    if opts.flag("trace") {
        println!(
            "{:>10} {:>6} {:>6} {:>12} {:>12}",
            "event", "src", "dst", "modeled(ms)", "wall(us)"
        );
        for e in &report.trace.events {
            println!(
                "{:>10} {:>6} {:>6} {:>12.3} {:>12}",
                format!("{:?}", e.kind),
                e.src,
                e.dst,
                e.modeled.as_ms(),
                e.wall_us
            );
        }
    }
    drop(metrics);
    if let Some(path) = obs_path {
        obs_finish(&path)?;
    }
    if !report.receipts_ok {
        return Err(
            "receipt verification failed: physical delivery does not match the size matrix".into(),
        );
    }
    Ok(())
}

/// `adaptcomm chaos`: inject a seeded fault plan into a live exchange
/// and grade the recovery against the fault-free control.
fn chaos_run(opts: &args::Options) -> Result<(), String> {
    use adaptcomm_chaos::{fault_free_makespan, run_chaos, ChaosPlan, SLO_FACTOR};

    let p: usize = opts.parsed_or("p", 8)?;
    if p < 2 {
        return Err("--p must be at least 2".into());
    }
    let seed: u64 = opts.parsed_or("seed", 0)?;
    let scenario = opts.get("scenario").unwrap_or_else(|| "mixed".into());
    let workload_name = opts.get("workload").unwrap_or_else(|| "mixed".into());
    let inst = scenario_by_name(&workload_name, p * 8)?.instance(p, seed);
    let sizes = inst.sizes.to_rows();

    let obs_path = obs_begin(opts);
    let horizon = fault_free_makespan(&inst.network, &sizes)
        .map_err(|e| format!("fault-free control failed: {e}"))?;
    let plan = match scenario.as_str() {
        class @ ("crash" | "partition" | "liar" | "mixed") => {
            ChaosPlan::generate(class, p, seed, horizon)?
        }
        spec => ChaosPlan::parse(p, spec)?,
    };
    let report = run_chaos(&inst.network, &sizes, &plan)
        .map_err(|e| format!("the run did not recover: {e}"))?;

    println!("chaos run: scenario {scenario} | workload {workload_name} | P = {p} | seed {seed}");
    let events: Vec<String> = plan.events.iter().map(|e| e.to_string()).collect();
    println!("  plan: {}", events.join("; "));
    println!(
        "  fault-free {:>10.2} ms   chaotic {:>10.2} ms   attempts {}   reschedules {}",
        report.fault_free_ms, report.chaos_ms, report.attempts, report.reschedules
    );
    if report.faults.is_empty() {
        println!("  faults: none detected");
    } else {
        println!("  faults:");
        for f in &report.faults {
            let recovered = f
                .recovery_ms
                .map(|t| format!("{t:>10.2} ms"))
                .unwrap_or_else(|| "   (never)".into());
            println!(
                "    {:>9}  link {}->{}  detected {:>10.2} ms  recovered {recovered}  parked {:>3}  probes {}",
                f.kind, f.link.0, f.link.1, f.detected_ms, f.parked, f.probes
            );
        }
    }
    if report.quarantined.is_empty() {
        println!("  quarantined: none");
    } else {
        let links: Vec<String> = report
            .quarantined
            .iter()
            .map(|(s, d)| format!("{s}->{d}"))
            .collect();
        println!("  quarantined: {}", links.join(", "));
    }
    let measured: usize = report.histogram.iter().map(|&(_, n)| n).sum();
    if measured > 0 {
        println!("  recovery-time histogram (ms):");
        for &(bound, n) in report.histogram.iter().filter(|&&(_, n)| n > 0) {
            if bound.is_finite() {
                println!("    <= {bound:>8.2}: {n}");
            } else {
                println!("    >  (last)  : {n}");
            }
        }
    }
    println!(
        "  receipts: {}",
        if report.receipts_ok {
            "verified (every payload exactly once)"
        } else {
            "MISMATCH"
        }
    );
    println!("{}", report.slo_line());
    if let Some(path) = obs_path {
        obs_finish(&path)?;
    }
    if !report.receipts_ok {
        return Err("receipt verification failed: a message was lost or duplicated".into());
    }
    if !report.slo_ok() {
        // Post-mortem black box: the recent event window (injected
        // faults, runtime fault/heal notes) goes to disk before the
        // nonzero exit, whether or not --obs was given.
        let flight_path = opts
            .get("flight")
            .unwrap_or_else(|| "chaos-flight.jsonl".into());
        let reason = format!(
            "chaos SLO breach at {:.2}x fault-free (limit {SLO_FACTOR:.2}x)",
            report.slowdown()
        );
        match adaptcomm_obs::flight().dump(std::path::Path::new(&flight_path), &reason) {
            Ok(()) => println!("  flight recorder dumped to {flight_path}"),
            Err(e) => eprintln!("  flight recorder: cannot write {flight_path}: {e}"),
        }
        return Err(format!(
            "recovery blew the SLO: {:.2}x fault-free exceeds the {SLO_FACTOR:.2}x limit",
            report.slowdown()
        ));
    }
    Ok(())
}

fn compare(opts: &args::Options) -> Result<(), String> {
    use adaptcomm_core::algorithms::all_schedulers_threaded;
    let matrix = load_matrix(opts)?;
    let threads: usize = opts.parsed_or("threads", 1)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let obs_path = obs_begin(opts);
    let obs = adaptcomm_obs::global();
    println!(
        "P = {}, lower bound {}, {} solver thread(s)",
        matrix.len(),
        matrix.lower_bound(),
        threads
    );
    println!(
        "{:>14} {:>14} {:>8} {:>12} {:>12}",
        "algorithm", "completion", "ratio", "sched-ms", "construction"
    );
    for scheduler in all_schedulers_threaded(threads) {
        // Construction cost is reported alongside quality — the §6.2
        // concern that run-time scheduling overhead can dominate.
        let span = obs.span("schedule").attr("algorithm", scheduler.name());
        let clock = std::time::Instant::now();
        let s = scheduler.schedule(&matrix);
        let sched_ms = clock.elapsed().as_secs_f64() * 1e3;
        span.end();
        // How the plan was produced: cold/warm/incremental/hit for the
        // matching schedulers (which retain a reuse surface), "-" for
        // algorithms without one. A second `schedule` on the same
        // scheduler value would report "hit".
        let disposition = scheduler.construction_disposition().unwrap_or("-");
        println!(
            "{:>14} {:>14} {:>8.4} {:>12.3} {:>12}",
            scheduler.name(),
            format!("{}", s.completion_time()),
            s.lb_ratio(),
            sched_ms,
            disposition
        );
    }
    if let Some(path) = obs_path {
        obs_finish(&path)?;
    }
    Ok(())
}

/// `adaptcomm plan-server`: run the scheduling service until a client
/// sends the shutdown control frame.
fn plan_server(opts: &args::Options) -> Result<(), String> {
    use adaptcomm_plansrv::{PlanServer, PlanServerConfig};

    let obs_path = obs_begin(opts);
    // The scrape surface: /metrics + /healthz plus the per-tenant JSON
    // rollup, all read from the global registry the service records to.
    let metrics = metrics_begin(
        opts,
        adaptcomm_obs::ScrapeEndpoints::new().json("/tenants", || {
            let snap = adaptcomm_obs::global().snapshot();
            adaptcomm_obs::json::Value::parse(&adaptcomm_plansrv::server::tenants_json(&snap))
                .expect("tenants_json emits valid JSON")
        }),
    )?;
    // Arm the black box: a deadline-rejection streak dumps the recent
    // event window into --flight-dir (default: the working directory).
    let flight_dir = opts.get("flight-dir").unwrap_or_else(|| ".".into());
    adaptcomm_obs::flight().set_auto_dir(Some(flight_dir.into()));
    let addr = opts.get("addr").unwrap_or_else(|| "127.0.0.1:0".into());
    let pace_ms: f64 = opts.parsed_or("pace-ms", 0.0)?;
    let config = PlanServerConfig {
        shards: opts.parsed_or("shards", 4)?,
        workers: opts.parsed_or("workers", 2)?,
        cache_capacity: opts.parsed_or("cache", 256)?,
        near_tolerance: opts.parsed_or("near-tolerance", 0.10)?,
        default_est_ms: opts.parsed_or("est-ms", 10.0)?,
        pace: (pace_ms > 0.0).then(|| std::time::Duration::from_secs_f64(pace_ms / 1e3)),
        threads: opts.parsed_or("threads", 1)?,
    };
    let server = PlanServer::bind(&addr, config).map_err(|e| format!("binding {addr}: {e}"))?;
    println!("plan server listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let service = std::sync::Arc::clone(server.service());
    server.join();

    let stats = service.cache_stats();
    println!(
        "plan server stopped: {} plan(s) cached, {} exact hit(s), {} incremental hit(s), \
         {} warm hit(s), {} miss(es), {} eviction(s)",
        stats.inserts,
        stats.exact_hits,
        stats.incremental_hits,
        stats.warm_hits,
        stats.misses,
        stats.evictions
    );
    for (tenant, dir) in service.directory().per_tenant_stats() {
        println!(
            "tenant {tenant}: {} publish(es), {} quer(ies), epoch {}",
            dir.publishes,
            dir.queries,
            service.directory().epoch(&tenant)
        );
    }
    drop(metrics);
    if let Some(path) = obs_path {
        obs_finish(&path)?;
    }
    Ok(())
}

/// `adaptcomm plan-client`: request plans from a running server and
/// print one greppable `cache: ..` line per response.
fn plan_client(opts: &args::Options) -> Result<(), String> {
    use adaptcomm_plansrv::proto::{PlanResponse, QosSpec};
    use adaptcomm_plansrv::PlanClient;

    let addr = opts.require("addr")?;
    let shutdown = opts.flag("shutdown");
    // With --obs, the client records its own `plansrv.client` spans
    // (each carrying the request's trace context); merging that dump
    // with the server's via `obs-merge` yields one cross-process tree.
    let obs_path = obs_begin(opts);
    let mut client = PlanClient::connect_retry(addr.as_str(), std::time::Duration::from_secs(5))
        .map_err(|e| format!("connecting to {addr}: {e}"))?;

    // The request matrix: a CSV file, or a generated scenario. With
    // `--shutdown` alone, there is no request to send.
    let matrix = if opts.get("matrix").is_some() {
        Some(load_matrix(opts)?)
    } else if let Some(name) = opts.get("scenario") {
        let p: usize = opts.require_parsed("p")?;
        let seed: u64 = opts.parsed_or("seed", 0)?;
        let n: usize = opts.parsed_or("n", p * 8)?;
        Some(scenario_by_name(&name, n)?.instance(p, seed).matrix)
    } else if shutdown {
        None
    } else {
        return Err("give --matrix <file.csv> or --scenario <name> --p <N> (or --shutdown)".into());
    };

    if let Some(matrix) = matrix {
        let tenant = opts.get("tenant").unwrap_or_else(|| "cli".into());
        let algorithm = opts
            .get("algorithm")
            .unwrap_or_else(|| "matching-max".into());
        scheduler_by_name(&algorithm)?; // fail fast with the name list
        let priority: u64 = opts.parsed_or("priority", 0)?;
        let qos = QosSpec {
            deadline_ms: opts
                .get("deadline")
                .map(|d| d.parse())
                .transpose()
                .map_err(|_| "`--deadline` has an invalid value".to_string())?,
            priority: u8::try_from(priority).map_err(|_| "`--priority` must fit in 0-255")?,
            critical_links: parse_critical(&opts.get("critical").unwrap_or_default())?,
        };
        let repeat: usize = opts.parsed_or("repeat", 1)?;
        for _ in 0..repeat.max(1) {
            let response = if opts.flag("probe") {
                client.probe(&tenant, &algorithm, matrix.fingerprint(), qos.clone())
            } else {
                client.plan(&tenant, &algorithm, &matrix, qos.clone())
            }
            .map_err(|e| e.to_string())?;
            print_plan_response(&response)?;
        }
    }

    if shutdown {
        match client.shutdown().map_err(|e| e.to_string())? {
            PlanResponse::Bye => println!("server acknowledged shutdown"),
            other => return Err(format!("unexpected shutdown reply: {other:?}")),
        }
    }
    if let Some(path) = obs_path {
        obs_finish(&path)?;
    }
    Ok(())
}

/// Parses `--critical "0-3,2-5"` into `(src, dst)` pairs.
fn parse_critical(spec: &str) -> Result<Vec<(usize, usize)>, String> {
    spec.split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            let (s, d) = part
                .split_once('-')
                .ok_or_else(|| format!("`--critical` entries are `src-dst`, got `{part}`"))?;
            Ok((
                s.trim()
                    .parse()
                    .map_err(|_| format!("bad src in `{part}`"))?,
                d.trim()
                    .parse()
                    .map_err(|_| format!("bad dst in `{part}`"))?,
            ))
        })
        .collect()
}

fn print_plan_response(response: &adaptcomm_plansrv::proto::PlanResponse) -> Result<(), String> {
    use adaptcomm_plansrv::proto::PlanResponse;
    match response {
        PlanResponse::Ok(ok) => {
            println!(
                "cache: {}  epoch: {}  seq: {}  completion: {:.3} ms  service: {:.3} ms  \
                 round1: {} scan(s){}  total: {} scan(s){}",
                ok.cache.as_str(),
                ok.epoch,
                ok.served_seq,
                ok.completion_ms,
                ok.stats.service_ms,
                ok.stats.round1_col_scans,
                if ok.stats.round1_warm { " (warm)" } else { "" },
                ok.stats.total_col_scans,
                match ok.trace_id {
                    Some(id) => format!("  trace: {}", adaptcomm_obs::trace::id_to_hex(id)),
                    None => String::new(),
                },
            );
            if let Some(q) = &ok.quality {
                let hops: Vec<String> = q
                    .critical_path
                    .iter()
                    .map(|(s, d)| format!("{s}->{d}"))
                    .collect();
                println!(
                    "quality: lb-gap {:.2}%  critical path: {}",
                    q.lb_gap_pct,
                    hops.join(" ")
                );
            }
            Ok(())
        }
        PlanResponse::NeedMatrix => {
            println!("cache: need-matrix  (resend with --matrix or --scenario)");
            Ok(())
        }
        PlanResponse::Rejected {
            retry_after_ms,
            detail,
        } => {
            println!("rejected: retry after {retry_after_ms:.3} ms  ({detail})");
            Ok(())
        }
        PlanResponse::Error { detail } => Err(format!("server error: {detail}")),
        PlanResponse::Bye => Err("unexpected bye".into()),
    }
}

//! Minimal `--key value` / `--flag` argument parsing (no dependencies).

use std::collections::HashMap;

/// Parsed options: `--key value` pairs and bare `--flag`s.
#[derive(Debug, Default)]
pub struct Options {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

/// Keys that take no value.
const FLAG_KEYS: &[&str] = &[
    "diagram", "events", "adapt", "trace", "once", "probe", "shutdown",
];

impl Options {
    /// Parses the argument list following the subcommand.
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut out = Options::default();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("expected `--option`, found `{arg}`"));
            };
            if FLAG_KEYS.contains(&key) {
                out.flags.push(key.to_string());
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("`--{key}` needs a value"))?;
                if value.starts_with("--") {
                    return Err(format!("`--{key}` needs a value, found `{value}`"));
                }
                out.values.insert(key.to_string(), value.clone());
                i += 2;
            }
        }
        Ok(out)
    }

    /// A value option, if present.
    pub fn get(&self, key: &str) -> Option<String> {
        self.values.get(key).cloned()
    }

    /// A required value option.
    pub fn require(&self, key: &str) -> Result<String, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option `--{key}`"))
    }

    /// A required option parsed to `T`.
    pub fn require_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.require(key)?
            .parse()
            .map_err(|_| format!("`--{key}` has an invalid value"))
    }

    /// An optional option parsed to `T`, with a default.
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("`--{key}` has an invalid value")),
        }
    }

    /// True if a bare flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_and_flags() {
        let o = Options::parse(&strs(&["--p", "20", "--diagram", "--seed", "7"])).unwrap();
        assert_eq!(o.get("p").as_deref(), Some("20"));
        assert!(o.flag("diagram"));
        assert!(!o.flag("events"));
        assert_eq!(o.parsed_or::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(o.parsed_or::<u64>("absent", 42).unwrap(), 42);
        assert_eq!(o.require_parsed::<usize>("p").unwrap(), 20);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Options::parse(&strs(&["--p"])).is_err());
        assert!(Options::parse(&strs(&["--p", "--diagram"])).is_err());
        assert!(Options::parse(&strs(&["stray"])).is_err());
    }

    #[test]
    fn missing_required_reported() {
        let o = Options::parse(&[]).unwrap();
        assert!(o.require("matrix").unwrap_err().contains("--matrix"));
        assert!(o.require_parsed::<usize>("p").is_err());
    }

    #[test]
    fn bad_parse_reported() {
        let o = Options::parse(&strs(&["--p", "abc"])).unwrap();
        assert!(o.require_parsed::<usize>("p").is_err());
        assert!(o.parsed_or::<usize>("p", 1).is_err());
    }
}

//! Frame rendering for `adaptcomm top`.
//!
//! The live view is a pure function from one status document (the JSON
//! file `run --adapt --status <path>` atomically rewrites at every
//! checkpoint — see `adaptcomm_runtime::telemetry`) to one text frame:
//! run progress, replan events, grant-queue depth, and a per-link
//! health table with sparkline bandwidth history. The polling loop in
//! `main.rs` just reads, renders, and repeats.

use adaptcomm_obs::json::Value;

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// A sparkline over `values`, one glyph per point, scaled to the
/// series' own min..max (a flat series renders mid-height).
fn sparkline(values: &[f64]) -> String {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let mut out: String = values
        .iter()
        .map(|&v| {
            let idx = if hi > lo {
                (((v - lo) / (hi - lo)) * 7.0).round() as usize
            } else {
                3
            };
            SPARK[idx.min(7)]
        })
        .collect();
    // A lone measurement still deserves a visible mark: render it at
    // the same two-glyph width a flat pair gets, instead of one
    // easily-missed character.
    if values.len() == 1 {
        let glyph = out.chars().next().unwrap();
        out.push(glyph);
    }
    out
}

/// The "slowest link" line `adaptcomm top --capture <path>` appends
/// under each frame: the link carrying the most critical-path time in
/// the captured run, from the explain-plane analyzer.
pub fn blame_line(capture_text: &str) -> Result<String, String> {
    use adaptcomm_obs::causal::{transfers_from_text, CausalDag};
    let dag = CausalDag::new(transfers_from_text(capture_text)?);
    let blame = dag.blame();
    match blame.links.first() {
        Some(l) => Ok(format!(
            "slowest link: {}->{}  {:.2} ms on the critical path \
             ({} hop(s), {:.0}% of {:.2} ms)",
            l.src,
            l.dst,
            l.busy_ms,
            l.hops,
            if blame.completion_ms > 0.0 {
                l.busy_ms / blame.completion_ms * 100.0
            } else {
                0.0
            },
            blame.completion_ms
        )),
        None => Ok("slowest link: no transfer spans in the capture".into()),
    }
}

/// `[[t, v], ...]` JSON points → the values.
fn series_values(v: Option<&Value>) -> Vec<f64> {
    v.and_then(Value::as_arr)
        .map(|points| {
            points
                .iter()
                .filter_map(|p| {
                    let pair = p.as_arr()?;
                    pair.get(1)?.as_f64()
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Renders one frame from a parsed status document. Errors name the
/// missing field, so a half-configured run is diagnosable.
pub fn render_frame(doc: &Value) -> Result<String, String> {
    let state = doc
        .get("state")
        .and_then(Value::as_str)
        .ok_or("status file has no `state`")?;
    let p = doc.get("p").and_then(Value::as_u64).unwrap_or(0);
    let now_ms = doc.get("now_ms").and_then(Value::as_f64).unwrap_or(0.0);
    let completed = doc.get("completed").and_then(Value::as_u64).unwrap_or(0);
    let total = doc.get("total").and_then(Value::as_u64).unwrap_or(0);
    let checkpoints = doc.get("checkpoints").and_then(Value::as_u64).unwrap_or(0);
    let replans = doc.get("replans").and_then(Value::as_arr).unwrap_or(&[]);

    let mut out = String::new();
    out.push_str(&format!(
        "adaptcomm top — {state} | P {p} | modeled {now_ms:.1} ms | \
         {completed}/{total} transfers | {checkpoints} checkpoint(s) | {} replan(s)\n",
        replans.len()
    ));

    // Progress bar over completed transfers.
    let width = 40usize;
    let frac = if total > 0 {
        completed as f64 / total as f64
    } else {
        0.0
    };
    let filled = ((frac * width as f64).round() as usize).min(width);
    out.push_str(&format!(
        "progress [{}{}] {:>3.0}%\n",
        "#".repeat(filled),
        "·".repeat(width - filled),
        frac * 100.0
    ));

    let depth = series_values(doc.get("queue_depth"));
    if !depth.is_empty() {
        out.push_str(&format!(
            "queue depth {} (now {:.0})\n",
            sparkline(&depth),
            depth.last().copied().unwrap_or(0.0)
        ));
    }

    if !replans.is_empty() {
        let marks: Vec<String> = replans
            .iter()
            .filter_map(|r| {
                let ckpt = r.get("checkpoint")?.as_u64()?;
                let at = r.get("now_ms")?.as_f64()?;
                Some(format!("#{ckpt} @ {at:.1} ms"))
            })
            .collect();
        out.push_str(&format!("replans: {}\n", marks.join(", ")));
    }

    let links = doc.get("links").and_then(Value::as_arr).unwrap_or(&[]);
    if links.is_empty() {
        out.push_str("links: no measurements published yet\n");
    } else {
        out.push_str("links (worst first):\n");
        out.push_str(&format!(
            "  {:>3} {:>3} {:<8} {:>5} {:>10} {:>7}  recent bandwidth\n",
            "src", "dst", "state", "score", "bw(kbps)", "T(ms)"
        ));
        for link in links {
            let src = link.get("src").and_then(Value::as_u64).unwrap_or(0);
            let dst = link.get("dst").and_then(Value::as_u64).unwrap_or(0);
            let state = link.get("state").and_then(Value::as_str).unwrap_or("?");
            let score = link.get("score").and_then(Value::as_f64).unwrap_or(0.0);
            let bw = link
                .get("bandwidth_kbps")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            let startup = link
                .get("startup_ms")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            let history = series_values(link.get("series"));
            out.push_str(&format!(
                "  {src:>3} {dst:>3} {state:<8} {score:>5.2} {bw:>10.1} {startup:>7.2}  {}\n",
                sparkline(&history)
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const STATUS: &str = r#"{"p": 4, "state": "running", "now_ms": 104.2,
        "completed": 3, "total": 12, "checkpoints": 3,
        "replans": [{"checkpoint": 2, "now_ms": 61.0}],
        "queue_depth": [[8.3, 11.0], [14.1, 10.0], [104.2, 9.0]],
        "links": [{"src": 0, "dst": 1, "state": "degraded", "score": 0.61,
                   "bandwidth_kbps": 180.5, "startup_ms": 2.1,
                   "series": [[8.3, 510.0], [14.1, 300.0], [104.2, 180.5]]}]}"#;

    #[test]
    fn frame_shows_progress_replans_and_links() {
        let doc = Value::parse(STATUS).unwrap();
        let frame = render_frame(&doc).unwrap();
        assert!(frame.contains("running"));
        assert!(frame.contains("3/12 transfers"));
        assert!(frame.contains("1 replan(s)"));
        assert!(frame.contains("#2 @ 61.0 ms"));
        assert!(frame.contains("degraded"));
        assert!(frame.contains("180.5"));
        assert!(frame.contains("25%"));
        // Falling bandwidth renders a descending sparkline ending low.
        assert!(frame.contains('█') && frame.contains('▁'));
    }

    #[test]
    fn missing_state_is_an_error_and_no_links_is_not() {
        let doc = Value::parse(r#"{"p": 2}"#).unwrap();
        assert!(render_frame(&doc).unwrap_err().contains("state"));
        let doc = Value::parse(
            r#"{"state": "running", "p": 2, "completed": 0, "total": 2,
                "checkpoints": 0, "replans": [], "queue_depth": [], "links": []}"#,
        )
        .unwrap();
        let frame = render_frame(&doc).unwrap();
        assert!(frame.contains("no measurements published yet"));
    }

    #[test]
    fn sparkline_scales_and_handles_flat_series() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert!(s.starts_with('▁') && s.ends_with('█'));
        assert_eq!(sparkline(&[5.0, 5.0]), "▄▄");
        // One point widens to the flat-pair rendering, not one glyph.
        assert_eq!(sparkline(&[7.0]), "▄▄");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn blame_line_names_the_critical_link() {
        use adaptcomm_obs::{AttrValue, Event, Snapshot, SpanRecord};
        let span = |src: u64, dst: u64, start_us: u64, dur_us: u64| {
            Event::Span(SpanRecord {
                name: "transfer".into(),
                tid: src + 1,
                start_us,
                dur_us,
                attrs: vec![
                    ("src".into(), AttrValue::U64(src)),
                    ("dst".into(), AttrValue::U64(dst)),
                ],
                trace: None,
            })
        };
        let snap = Snapshot {
            events: vec![span(0, 1, 0, 10_000), span(0, 2, 10_000, 30_000)],
            ..Default::default()
        };
        let line = blame_line(&snap.to_jsonl()).unwrap();
        assert!(line.contains("slowest link: 0->2"), "{line}");
        assert!(line.contains("30.00 ms"), "{line}");
        let empty = blame_line(&Snapshot::default().to_jsonl()).unwrap();
        assert!(empty.contains("no transfer spans"), "{empty}");
    }
}

//! Acceptance test for the live runtime (ISSUE 2): a P >= 8 mixed-size
//! all-to-all personalized exchange executes over real OS threads, the
//! closed loop reschedules at least once under injected link drift, and
//! the realized completion cross-validates against the discrete-event
//! simulator.

use adaptcomm::prelude::*;
use adaptcomm::runtime::channel::{run_shaped, CheckpointAction, FaultPolicy};
use adaptcomm::runtime::transport::{expected_receipts, ChannelTransport, Transport};
use adaptcomm::scheduling::checkpointed::{CheckpointPolicy, RescheduleRule};
use adaptcomm::sim::dynamic::{run_adaptive, AdaptiveConfig, Replanner};
use adaptcomm::sim::{Fault, ScriptedFaults};

const P: usize = 8;
const SEED: u64 = 3;

fn drift_script() -> Vec<Fault> {
    // Three links lose most of their bandwidth early in the exchange.
    vec![
        Fault {
            at: Millis::new(20.0),
            src: 0,
            dst: 1,
            factor: 0.2,
        },
        Fault {
            at: Millis::new(20.0),
            src: 2,
            dst: 5,
            factor: 0.25,
        },
        Fault {
            at: Millis::new(40.0),
            src: 6,
            dst: 3,
            factor: 0.3,
        },
    ]
}

fn workload() -> (NetParams, Vec<Vec<Bytes>>, SendOrder) {
    let inst = Scenario::Mixed.instance(P, SEED);
    let sizes = inst.sizes.to_rows();
    let order = OpenShop.send_order(&inst.matrix);
    (inst.network, sizes, order)
}

/// Oblivious cross-validation: with the identical drift script and no
/// adaptation, the live engine and the simulator realize the same
/// timeline (well inside the 5% acceptance bound).
#[test]
fn live_run_matches_simulator_under_drift() {
    let (net, sizes, order) = workload();
    let mut sim_evo = ScriptedFaults::new(net.clone(), drift_script());
    let sim = run_adaptive(&order, &sizes, &mut sim_evo, &AdaptiveConfig::oblivious());

    let transport = ChannelTransport::new(P);
    let mut live_evo = ScriptedFaults::new(net, drift_script());
    let out = run_shaped(
        &order.order,
        &sizes,
        &mut live_evo,
        &transport,
        ShapedConfig::default(),
        |_| CheckpointAction::Continue,
    )
    .expect("drift without dead links must complete");

    assert_eq!(out.records.len(), P * (P - 1));
    let rel = (out.makespan.as_ms() - sim.makespan.as_ms()).abs() / sim.makespan.as_ms();
    assert!(
        rel < 0.05,
        "live {} vs sim {} ms ({}% off)",
        out.makespan.as_ms(),
        sim.makespan.as_ms(),
        rel * 100.0
    );
    assert_eq!(transport.receipts(), expected_receipts(&sizes, None));
}

/// The full loop: measure, publish, decide, adapt. Injected drift must
/// force at least one checkpoint reschedule, every byte must arrive, and
/// the realized completion must stay within 5% of what the simulator
/// predicts for the same adaptation policy over the same drift.
#[test]
fn closed_loop_adapts_and_cross_validates() {
    let (net, sizes, order) = workload();
    let policy = CheckpointPolicy::EveryEvent;
    let rule = RescheduleRule {
        deviation_threshold: 0.05,
    };

    let mut sim_evo = ScriptedFaults::new(net.clone(), drift_script());
    let sim = run_adaptive(
        &order,
        &sizes,
        &mut sim_evo,
        &AdaptiveConfig {
            policy,
            rule,
            replanner: Replanner::default(),
        },
    );
    assert!(sim.reschedules >= 1, "the scenario must provoke adaptation");

    let directory = DirectoryService::new(net.clone());
    let epoch_before = directory.snapshot().sequence();
    let mut live_evo = ScriptedFaults::new(net, drift_script());
    let report = execute_adaptive(
        &order.order,
        &sizes,
        &mut live_evo,
        &directory,
        BackendKind::Channel,
        AdaptSettings {
            policy,
            trigger: ReplanTrigger::Deviation(rule),
            faults: FaultPolicy::default(),
            ..Default::default()
        },
    )
    .expect("the adaptive run must complete");

    assert_eq!(report.records.len(), P * (P - 1));
    assert!(report.receipts_ok, "every payload must physically arrive");
    assert!(
        report.reschedules >= 1,
        "injected drift must trigger at least one live reschedule"
    );
    assert!(
        report.measurements_published > 0,
        "the prober must publish live estimates"
    );
    assert!(
        directory.snapshot().sequence() > epoch_before,
        "published measurements must refresh the directory epoch"
    );
    let rel = (report.makespan.as_ms() - sim.makespan.as_ms()).abs() / sim.makespan.as_ms();
    assert!(
        rel < 0.05,
        "adaptive live {} vs adaptive sim {} ms ({}% off)",
        report.makespan.as_ms(),
        sim.makespan.as_ms(),
        rel * 100.0
    );
    // Port-model invariant holds on the realized records, across replans.
    for proc in 0..P {
        for side in [true, false] {
            let mut evs: Vec<_> = report
                .records
                .iter()
                .filter(|r| if side { r.src == proc } else { r.dst == proc })
                .collect();
            evs.sort_by(|a, b| a.start.as_ms().total_cmp(&b.start.as_ms()));
            for w in evs.windows(2) {
                assert!(w[0].finish.as_ms() <= w[1].start.as_ms() + 1e-9);
            }
        }
    }
}

//! End-to-end integration: directory → workload → scheduler → simulator.

use adaptcomm::directory::load::{CompetingFlow, LoadInjector};
use adaptcomm::directory::DirectoryService;
use adaptcomm::model::variation::{VariationConfig, VariationTrace};
use adaptcomm::prelude::*;
use adaptcomm::scheduling::checkpointed::{CheckpointPolicy, RescheduleRule};
use adaptcomm::sim::dynamic::{run_adaptive, AdaptiveConfig, Replanner};
use adaptcomm::sim::run_static;

#[test]
fn directory_to_schedule_to_simulation_round_trip() {
    // A directory serving the GUSTO snapshot under background load.
    let clean = adaptcomm::model::gusto::gusto_params();
    let mut injector = LoadInjector::new();
    injector.add_flow(CompetingFlow {
        src: 1,
        dst: 4,
        intensity: 2,
    });
    let directory = DirectoryService::new(clean);
    directory.publish(injector.apply(directory.snapshot().params()));

    // Application side: query, build the matrix, schedule, execute.
    let snapshot = directory.snapshot();
    let sizes = SizeMatrix::uniform(snapshot.params().len(), Bytes::MB);
    let matrix = CommMatrix::from_model(snapshot.params(), &sizes.to_rows());
    // The background load is visible: the (1,4) transfer costs ~3× its
    // clean-network time (intensity 2 → bandwidth ÷ 3).
    let clean_matrix =
        CommMatrix::from_model(&adaptcomm::model::gusto::gusto_params(), &sizes.to_rows());
    assert!(matrix.cost(1, 4).as_ms() > 2.5 * clean_matrix.cost(1, 4).as_ms());
    for scheduler in all_schedulers() {
        let schedule = scheduler.schedule(&matrix);
        schedule.validate().unwrap();
        let run = run_static(
            &scheduler.send_order(&matrix),
            snapshot.params(),
            &sizes.to_rows(),
        );
        assert_eq!(run.records.len(), 5 * 4);
    }
}

#[test]
fn simulator_and_analytic_execution_agree_for_every_scenario() {
    for scenario in Scenario::FIGURES {
        let inst = scenario.instance(9, 4);
        let sizes = inst.sizes.to_rows();
        for scheduler in all_schedulers() {
            let order = scheduler.send_order(&inst.matrix);
            let analytic = adaptcomm::scheduling::execution::execute_listed(&order, &inst.matrix);
            let simulated = run_static(&order, &inst.network, &sizes);
            assert!(
                (analytic.completion_time().as_ms() - simulated.makespan.as_ms()).abs() < 1e-6,
                "{} on {}: {} vs {}",
                scheduler.name(),
                scenario.name(),
                analytic.completion_time(),
                simulated.makespan
            );
        }
    }
}

#[test]
fn adaptive_execution_beats_oblivious_on_average_under_degradation() {
    let inst = Scenario::Large.instance(10, 3);
    let order = OpenShop.send_order(&inst.matrix);
    let sizes = inst.sizes.to_rows();
    let drift = VariationConfig {
        step: Millis::new(1_000.0),
        volatility: 0.35,
        floor: 0.05,
        ceil: 1.0,
    };
    let mut adaptive_total = 0.0;
    let mut oblivious_total = 0.0;
    for seed in 0..10 {
        let mut t1 = VariationTrace::new(inst.network.clone(), drift, seed);
        oblivious_total += run_adaptive(&order, &sizes, &mut t1, &AdaptiveConfig::oblivious())
            .makespan
            .as_ms();
        let mut t2 = VariationTrace::new(inst.network.clone(), drift, seed);
        adaptive_total += run_adaptive(
            &order,
            &sizes,
            &mut t2,
            &AdaptiveConfig {
                policy: CheckpointPolicy::EveryEvent,
                rule: RescheduleRule {
                    deviation_threshold: 0.10,
                },
                replanner: Replanner::default(),
            },
        )
        .makespan
        .as_ms();
    }
    assert!(
        adaptive_total < oblivious_total,
        "adaptive {adaptive_total} should beat oblivious {oblivious_total} on average"
    );
}

#[test]
fn trace_driven_directory_feeds_incremental_scheduler() {
    use adaptcomm::scheduling::incremental::{IncrementalConfig, IncrementalScheduler};
    let base = adaptcomm::model::gusto::gusto_params();
    let trace = VariationTrace::new(base.clone(), VariationConfig::default(), 11);
    let directory = DirectoryService::with_trace(trace);
    let sizes = SizeMatrix::uniform(5, Bytes::MB).to_rows();
    let initial = CommMatrix::from_model(directory.snapshot().params(), &sizes);
    let mut inc = IncrementalScheduler::new(OpenShop, IncrementalConfig::default(), initial);
    for cycle in 1..=5 {
        directory.advance_clock(Millis::new(cycle as f64 * 10_000.0));
        let matrix = CommMatrix::from_model(directory.snapshot().params(), &sizes);
        let (schedule, _action) = inc.update(matrix);
        schedule.validate().unwrap();
    }
    let (kept, repaired, recomputed) = inc.stats();
    assert_eq!(kept + repaired + recomputed, 6); // initial compute + 5 updates
}

#[test]
fn facade_prelude_exposes_the_whole_workflow() {
    // Compile-time check that the prelude is sufficient for the README
    // workflow, plus a smoke run.
    let network = NetParams::uniform(4, Millis::new(10.0), Bandwidth::from_kbps(1_000.0));
    let matrix = CommMatrix::uniform_message(&network, Bytes::KB);
    let schedule = OpenShop.schedule(&matrix);
    assert!(schedule.validate().is_ok());
    let art = TimingDiagram::of_schedule(&schedule).render(10);
    assert!(art.contains("P0"));
    let order: SendOrder = OpenShop.send_order(&matrix);
    assert_eq!(order.processors(), 4);
    let ev: &ScheduledEvent = &schedule.events()[0];
    assert!(ev.start.as_ms() >= 0.0);
    let s: Schedule = Baseline.schedule(&matrix);
    assert!(s.lb_ratio() >= 1.0);
    let _ = (Greedy, MatchingScheduler::new(MatchingKind::Max));
}

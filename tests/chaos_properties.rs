//! Property test for partition recovery (ISSUE 6, satellite): ANY
//! single network partition with a scheduled heal must (a) complete the
//! exchange with bit-identical receipts to the fault-free run — every
//! payload delivered exactly once, verified down to the FNV checksum —
//! and (b) show a recovery time that is monotone non-decreasing in the
//! heal time: the longer the cut stays open, the longer the parked
//! traffic waits.
//!
//! The monotonicity clause is asserted in the regime where it is a
//! theorem of the recovery design: heal instants past the point where
//! the reachable traffic has drained. There every cross-cut delivery is
//! refused under every heal variant, so the three runs share one
//! timeline up to the backoff probe loop, and the wake instant — hence
//! the recovery time — can only grow with the heal time. (Below the
//! drain point an earlier heal changes *which* deliveries are refused,
//! the runs diverge from the first fault on, and no ordering is
//! promised.)
//!
//! The assertion is exact — no tolerance. The engine settles transport
//! refusals into the modeled timeline in completion order (the earliest
//! modeled refusal becomes the detected fault, not the first worker
//! thread to notice), so the whole failure path is deterministic and
//! the measured recovery times are reproducible bit for bit.

use adaptcomm::chaos::{chaos_settings, fault_free_makespan, run_plan_with, ChaosPlan};
use adaptcomm::prelude::*;
use adaptcomm::runtime::transport::expected_receipts;
use proptest::prelude::*;

const P: usize = 8;

/// Heal instants as multiples of the fault-free horizon, increasing.
/// All chosen past the drain point of the degraded run, where
/// monotonicity holds by design (see module docs).
const HEAL_FRACTIONS: [f64; 3] = [1.5, 1.75, 2.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn a_healed_partition_is_lossless_and_monotone_in_heal_time(seed in 0u64..1000) {
        let inst = Scenario::Mixed.instance(P, seed);
        let net = inst.network;
        let sizes = inst.sizes.to_rows();
        let expected = expected_receipts(&sizes, None);
        let horizon = fault_free_makespan(&net, &sizes)
            .expect("the fault-free control completes");

        // A seeded two-processor group cut off early in the exchange.
        let a = (seed % P as u64) as usize;
        let b = (a + 1 + (seed / P as u64) as usize % (P - 1)) % P;
        let at = 0.05 * horizon;

        // Heals land far past the drain point, so the backoff needs
        // more doublings than the default probe budget provides.
        let settings = AdaptSettings {
            max_attempts: 24,
            ..chaos_settings()
        };

        let mut recoveries = Vec::new();
        for frac in HEAL_FRACTIONS {
            let heal = frac * horizon;
            let spec = format!("partition:{a},{b}@{at}..{heal}");
            let plan = ChaosPlan::parse(P, &spec).expect("the spec is well-formed");
            let (report, receipts) = run_plan_with(&net, &sizes, &plan, settings)
                .expect("a healed partition must recover");
            prop_assert_eq!(
                &receipts,
                &expected,
                "heal at {:.0} ms lost or duplicated a message",
                heal
            );
            let recovery = report
                .recovery_events
                .iter()
                .filter_map(|ev| ev.recovery_time())
                .map(|t| t.as_ms())
                .fold(0.0f64, f64::max);
            prop_assert!(
                recovery > 0.0,
                "the partition at {:.0}..{:.0} ms was never detected or never recovered",
                at,
                heal
            );
            recoveries.push(recovery);
        }
        for w in recoveries.windows(2) {
            prop_assert!(
                w[1] >= w[0],
                "recovery time must be monotone in heal time, got {:?} for heals {:?}",
                recoveries,
                HEAL_FRACTIONS
            );
        }
    }
}

//! Acceptance tests for the chaos harness (ISSUE 6): each fault class —
//! processor crash, network partition, lying link — is injected into
//! the P = 8 mixed all-to-all personalized exchange, and the closed
//! loop must recover within the documented SLO (completion within
//! `SLO_FACTOR` × the fault-free makespan) without losing or
//! duplicating a single message (FNV receipt verification). A frozen
//! fault-free network is the control: zero recovery events, zero
//! quarantines.

use adaptcomm::chaos::{fault_free_makespan, run_chaos, run_plan, ChaosPlan, SLO_FACTOR};
use adaptcomm::prelude::*;
use adaptcomm::runtime::transport::expected_receipts;

const P: usize = 8;
const SEED: u64 = 3;

fn workload() -> (NetParams, Vec<Vec<Bytes>>) {
    let inst = Scenario::Mixed.instance(P, SEED);
    (inst.network, inst.sizes.to_rows())
}

fn grade(class: &str) -> adaptcomm::chaos::ChaosReport {
    let (net, sizes) = workload();
    let horizon = fault_free_makespan(&net, &sizes).expect("the control run is fault-free");
    let plan = ChaosPlan::generate(class, P, SEED, horizon).expect("a named class generates");
    run_chaos(&net, &sizes, &plan).expect("the loop must recover from injected faults")
}

#[test]
fn a_processor_crash_recovers_within_the_slo() {
    let report = grade("crash");
    assert!(
        report.slo_ok(),
        "crash recovery blew the SLO: {}",
        report.slo_line()
    );
    assert!(
        report.receipts_ok,
        "crash recovery lost or duplicated messages"
    );
    assert!(
        report.attempts >= 2,
        "a crash mid-collective must force recovery"
    );
    assert!(
        report.faults.iter().any(|f| f.kind == "crash"),
        "the recovery report must classify the fault as a crash, got {:?}",
        report.faults
    );
    assert!(
        report
            .faults
            .iter()
            .any(|f| f.recovery_ms.is_some_and(|t| t > 0.0)),
        "recovery time must be measured"
    );
}

#[test]
fn a_network_partition_recovers_within_the_slo() {
    let report = grade("partition");
    assert!(
        report.slo_ok(),
        "partition recovery blew the SLO: {}",
        report.slo_line()
    );
    assert!(
        report.receipts_ok,
        "partition recovery lost or duplicated messages"
    );
    assert!(report.attempts >= 2, "a partition must force recovery");
    assert!(
        report.faults.iter().any(|f| f.kind == "partition"),
        "the recovery report must classify the fault as a partition, got {:?}",
        report.faults
    );
    // The histogram holds every measured recovery.
    let measured = report
        .faults
        .iter()
        .filter(|f| f.recovery_ms.is_some())
        .count();
    let counted: usize = report.histogram.iter().map(|&(_, n)| n).sum();
    assert_eq!(measured, counted);
}

#[test]
fn a_lying_link_is_quarantined_and_never_prices_a_replan() {
    let report = grade("liar");
    assert!(
        report.slo_ok(),
        "lying-link run blew the SLO: {}",
        report.slo_line()
    );
    assert!(report.receipts_ok, "a lying link must not lose messages");
    assert!(
        !report.quarantined.is_empty(),
        "the trust cross-check must quarantine the liar"
    );
    let (net, sizes) = workload();
    let horizon = fault_free_makespan(&net, &sizes).unwrap();
    let plan = ChaosPlan::generate("liar", P, SEED, horizon).unwrap();
    let lied = plan
        .events
        .iter()
        .find_map(|e| match e {
            adaptcomm::chaos::ChaosEvent::LyingLink { src, dst, .. } => Some((*src, *dst)),
            _ => None,
        })
        .expect("the liar class injects a lying link");
    assert!(
        report.quarantined.contains(&lied),
        "the quarantined link {:?} must be the one that lied ({lied:?})",
        report.quarantined
    );
}

#[test]
fn the_mixed_scenario_survives_all_three_fault_classes_at_once() {
    let report = grade("mixed");
    assert!(
        report.slo_ok(),
        "mixed-chaos recovery blew the SLO: {}",
        report.slo_line()
    );
    assert!(
        report.receipts_ok,
        "mixed chaos lost or duplicated messages"
    );
    assert!(
        !report.quarantined.is_empty(),
        "the mixed scenario's liar must be quarantined"
    );
    assert!(
        !report.faults.is_empty(),
        "the mixed scenario's crash and partition must surface as recovery events"
    );
    // The documented SLO factor is 3x (DESIGN.md §11); fail loudly if
    // someone quietly relaxes it.
    const _: () = assert!(SLO_FACTOR == 3.0);
}

/// The control: a frozen, fault-free network under the identical chaos
/// settings shows zero recovery events, zero quarantines, one attempt.
#[test]
fn a_fault_free_network_shows_zero_recoveries_and_zero_quarantines() {
    let (net, sizes) = workload();
    let (report, receipts) =
        run_plan(&net, &sizes, &ChaosPlan::empty(P)).expect("fault-free must complete");
    assert_eq!(report.attempts, 1);
    assert!(
        report.recovery_events.is_empty(),
        "no faults, no recoveries"
    );
    assert!(report.retried_links.is_empty(), "no faults, no retries");
    assert!(
        report.quarantined_links.is_empty(),
        "honest reporting never quarantines"
    );
    assert_eq!(receipts, expected_receipts(&sizes, None));
}

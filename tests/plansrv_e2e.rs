//! End-to-end plan-server acceptance: two tenants at P = 64, exact
//! cache replay, ±2 % cross-job warm start (provably cheaper by
//! `lap::SolveStats`), bit-identity against the in-process scheduler,
//! and §6 admission control (deadline rejection, priority tiers).

use adaptcomm::plansrv::proto::{CacheDisposition, PlanOk, PlanResponse, QosSpec};
use adaptcomm::plansrv::{PlanClient, PlanServer, PlanServerConfig};
use adaptcomm::prelude::*;
use adaptcomm::workloads::Scenario;
use std::time::Duration;

fn expect_ok(resp: PlanResponse) -> Box<PlanOk> {
    match resp {
        PlanResponse::Ok(ok) => ok,
        other => panic!("expected a plan, got {other:?}"),
    }
}

/// ±2 % deterministic perturbation: alternating signs per cell.
fn perturb(m: &CommMatrix) -> CommMatrix {
    CommMatrix::from_fn(m.len(), |s, d| {
        let f = if (s + d) % 2 == 0 { 1.02 } else { 0.98 };
        if s == d {
            0.0
        } else {
            m.row(s)[d] * f
        }
    })
}

#[test]
fn two_tenants_cache_hits_and_cross_job_warm_starts() {
    let server = PlanServer::bind("127.0.0.1:0", PlanServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let matrix = Scenario::Mixed.instance(64, 11).matrix;

    // Two tenants submit the same P=64 job concurrently.
    let results: Vec<Box<PlanOk>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ["tenant-a", "tenant-b"]
            .into_iter()
            .map(|tenant| {
                let matrix = &matrix;
                scope.spawn(move || {
                    let mut client = PlanClient::connect(addr).expect("connect");
                    expect_ok(
                        client
                            .plan(tenant, "matching-max", matrix, QosSpec::default())
                            .expect("roundtrip"),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread"))
            .collect()
    });

    // Both plans are bit-identical to the in-process scheduler.
    let expected = MatchingScheduler::new(MatchingKind::Max).send_order(&matrix);
    for ok in &results {
        assert_eq!(ok.order, expected, "served plan differs from in-process");
    }
    // At least one of the concurrent requests did the cold solve.
    let cold = results
        .iter()
        .find(|ok| ok.cache == CacheDisposition::Cold)
        .expect("someone must solve cold");
    assert!(!cold.stats.round1_warm);
    assert!(cold.stats.round1_col_scans > 0);

    let mut client = PlanClient::connect(addr).expect("connect");

    // A second identical request is served from the cache, verbatim.
    let hit = expect_ok(
        client
            .plan("tenant-a", "matching-max", &matrix, QosSpec::default())
            .expect("roundtrip"),
    );
    assert_eq!(hit.cache, CacheDisposition::Hit);
    assert_eq!(hit.order, expected);
    assert_eq!(hit.epoch, 0, "same fingerprint must not bump the epoch");

    // A fingerprint-only probe replays the same plan without shipping
    // the P² matrix; an unknown fingerprint asks for the matrix.
    let probed = expect_ok(
        client
            .probe(
                "tenant-a",
                "matching-max",
                matrix.fingerprint(),
                QosSpec::default(),
            )
            .expect("roundtrip"),
    );
    assert_eq!(probed.cache, CacheDisposition::Hit);
    assert_eq!(probed.order, expected);
    assert!(matches!(
        client
            .probe(
                "tenant-a",
                "matching-max",
                !matrix.fingerprint(),
                QosSpec::default()
            )
            .expect("roundtrip"),
        PlanResponse::NeedMatrix
    ));

    // A ±2 % perturbed matrix is served via a cross-job warm start:
    // round 1 runs warm and does measurably less work than the cold
    // solve did (the `lap::SolveStats` column-scan counter).
    let near = perturb(&matrix);
    let warm = expect_ok(
        client
            .plan("tenant-a", "matching-max", &near, QosSpec::default())
            .expect("roundtrip"),
    );
    assert_eq!(warm.cache, CacheDisposition::Warm);
    assert!(warm.stats.round1_warm, "round 1 must run the warm path");
    assert!(
        warm.stats.round1_col_scans < cold.stats.round1_col_scans,
        "warm start must be cheaper than cold: {} vs {}",
        warm.stats.round1_col_scans,
        cold.stats.round1_col_scans
    );
    // Warm starts are exact: the plan matches a cold in-process solve
    // of the perturbed instance bit-for-bit.
    let expected_near = MatchingScheduler::new(MatchingKind::Max).send_order(&near);
    assert_eq!(warm.order, expected_near);
    // The fingerprint changed, so the tenant's directory advanced.
    assert_eq!(warm.epoch, 1);

    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn admission_rejects_unmeetable_deadlines_and_prefers_priority() {
    // One deliberately slow worker makes queueing deterministic.
    let config = PlanServerConfig {
        workers: 1,
        pace: Some(Duration::from_millis(500)),
        ..Default::default()
    };
    let server = PlanServer::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    let matrix = Scenario::Small.instance(16, 3).matrix;

    std::thread::scope(|scope| {
        // t=0: a bulk request occupies the only worker for ~500 ms.
        let bulk = {
            let matrix = &matrix;
            scope.spawn(move || {
                let mut client = PlanClient::connect(addr).expect("connect");
                expect_ok(
                    client
                        .plan("tenant-bulk", "greedy", matrix, QosSpec::default())
                        .expect("roundtrip"),
                )
            })
        };
        std::thread::sleep(Duration::from_millis(100));

        // t=100: an open-deadline tier-0 request queues behind it.
        let low = {
            let matrix = &matrix;
            scope.spawn(move || {
                let mut client = PlanClient::connect(addr).expect("connect");
                expect_ok(
                    client
                        .plan("tenant-low", "greedy", matrix, QosSpec::default())
                        .expect("roundtrip"),
                )
            })
        };
        std::thread::sleep(Duration::from_millis(100));

        // t=200: a 100 ms deadline is unmeetable while ~500 ms of work
        // is in flight — rejected immediately, with retry-after.
        let mut client = PlanClient::connect(addr).expect("connect");
        let qos = QosSpec {
            deadline_ms: Some(100.0),
            ..Default::default()
        };
        match client
            .plan("tenant-urgent", "greedy", &matrix, qos)
            .expect("roundtrip")
        {
            PlanResponse::Rejected {
                retry_after_ms,
                detail,
            } => {
                assert!(retry_after_ms > 0.0, "retry-after must be positive");
                assert!(detail.contains("deadline"), "{detail}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }

        // t=200: a higher-priority tenant IS admitted despite arriving
        // after the tier-0 request — and is served before it.
        let vip = expect_ok(
            client
                .plan(
                    "tenant-vip",
                    "greedy",
                    &matrix,
                    QosSpec {
                        priority: 5,
                        ..Default::default()
                    },
                )
                .expect("roundtrip"),
        );

        let bulk = bulk.join().expect("bulk thread");
        let low = low.join().expect("low thread");
        assert!(
            bulk.served_seq < vip.served_seq,
            "the in-flight request completes first"
        );
        assert!(
            vip.served_seq < low.served_seq,
            "priority 5 must be served before the earlier tier-0 request \
             (vip seq {}, low seq {})",
            vip.served_seq,
            low.served_seq
        );
    });

    server.shutdown();
}

//! Cross-crate integration for the §2 substrates: task mapping feeding a
//! communication phase, and data staging over a directory-derived WAN.

use adaptcomm::mapping::{etc, map_tasks, schedule_dag, HeterogeneityClass, Heuristic, TaskGraph};
use adaptcomm::prelude::*;
use adaptcomm::staging::{schedule_staging, DataItem, LinkGraph, NodeId, Request, StagingProblem};

#[test]
fn mapping_then_total_exchange_end_to_end() {
    // Compute phase: map 40 tasks onto the 5 GUSTO machines.
    let etc_matrix = etc::generate(40, 5, HeterogeneityClass::Inconsistent, 20.0, 8.0, 3);
    let mapping = map_tasks(&etc_matrix, Heuristic::Sufferage);
    assert!(mapping.makespan >= etc_matrix.lower_bound());

    // Communication phase: redistribute results (size ∝ tasks run).
    let network = adaptcomm::model::gusto::gusto_params();
    let counts: Vec<u64> = (0..5)
        .map(|m| mapping.assignment.iter().filter(|&&x| x == m).count() as u64)
        .collect();
    assert_eq!(counts.iter().sum::<u64>(), 40);
    let comm = CommMatrix::from_fn(5, |src, dst| {
        if src == dst {
            0.0
        } else {
            network
                .time(src, dst, Bytes::from_kb(10 * counts[src]))
                .as_ms()
        }
    });
    for scheduler in all_schedulers() {
        let s = scheduler.schedule(&comm);
        s.validate().unwrap();
        assert!(s.completion_time().as_ms() >= comm.lower_bound().as_ms() - 1e-9);
    }
}

#[test]
fn dag_scheduling_uses_the_network_model() {
    // A fork-join DAG over GUSTO machines: expensive WAN edges must steer
    // placement decisions.
    let mut graph = TaskGraph::new(6);
    graph
        .add_edge(0, 1, Bytes::from_kb(500))
        .add_edge(0, 2, Bytes::from_kb(500))
        .add_edge(1, 3, Bytes::from_kb(500))
        .add_edge(2, 4, Bytes::from_kb(500))
        .add_edge(3, 5, Bytes::from_kb(500))
        .add_edge(4, 5, Bytes::from_kb(500));
    let etc_matrix = etc::generate(6, 5, HeterogeneityClass::SemiConsistent, 5.0, 4.0, 9);
    let network = adaptcomm::model::gusto::gusto_params();
    let schedule = schedule_dag(&graph, &etc_matrix, &network);
    // Basic sanity plus dependency preservation across crates.
    for v in 0..6 {
        for &(u, bytes) in graph.preds(v) {
            let (pu, pv) = (schedule.placement[u], schedule.placement[v]);
            let arrival = if pu.machine == pv.machine {
                pu.finish
            } else {
                pu.finish + network.time(pu.machine, pv.machine, bytes).as_ms()
            };
            assert!(pv.start >= arrival - 1e-9);
        }
    }
    assert!(schedule.makespan > 0.0);
}

#[test]
fn staging_over_a_gusto_shaped_wan() {
    // Build the staging WAN from the GUSTO tables themselves: sites are
    // nodes, table entries are links.
    let mut wan = LinkGraph::new(5);
    for a in 0..5usize {
        for b in (a + 1)..5 {
            wan.add_bidi(
                NodeId(a),
                NodeId(b),
                adaptcomm::model::cost::LinkEstimate::new(
                    Millis::new(adaptcomm::model::gusto::latency_ms(a, b)),
                    Bandwidth::from_kbps(adaptcomm::model::gusto::bandwidth_kbps(a, b)),
                ),
            );
        }
    }
    let mut problem = StagingProblem::new();
    problem.add_item(DataItem {
        id: 0,
        size: Bytes::MB,
        sources: vec![NodeId(0)],
    });
    for dst in 1..5 {
        problem.add_request(Request {
            item: 0,
            destination: NodeId(dst),
            deadline: Millis::from_secs(120.0),
            priority: dst as u8,
        });
    }
    let outcome = schedule_staging(&mut wan, &problem);
    assert_eq!(
        outcome.satisfied(),
        4,
        "a 2-minute budget is ample on GUSTO"
    );
    // With a fully connected WAN, direct routes dominate but staging may
    // still relay through fast pairs (USC-ISI ↔ NCSA at ~5 Mbit/s).
    assert!(outcome.weighted_satisfaction() > 0.99);
}

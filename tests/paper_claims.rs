//! The paper's §5 quantitative claims, verified end to end over random
//! GUSTO-guided instances. Absolute numbers cannot match a 1998 testbed;
//! these tests pin the *shape*: who wins, by what kind of factor, and
//! that the theoretical guarantees hold everywhere.
//!
//! The instance grid is evaluated through the parallel [`SweepRunner`],
//! whose per-instance seeds are derived from grid coordinates — the same
//! engine (and therefore the same numbers) the `figures` binary and the
//! CLI `sweep` subcommand use.

use adaptcomm::prelude::*;
use adaptcomm::scheduling::bounds;
use adaptcomm::scheduling::depgraph;
use adaptcomm_bench::sweep::{InstanceResult, SweepGrid, SweepRunner};
use adaptcomm_model::generator::GeneratorConfig;

/// The claim grid: every figure scenario × four processor counts × three
/// trials, with the historical `trial * 37 + p` seed family.
fn claim_grid() -> SweepGrid {
    SweepGrid {
        scenarios: Scenario::FIGURES.to_vec(),
        p_values: vec![10, 20, 35, 50],
        trials: 3,
        cfg: GeneratorConfig::default(),
        seed_fn: |_, p, trial| trial * 37 + p as u64,
    }
}

fn claim_results() -> Vec<InstanceResult> {
    SweepRunner::default().run(&claim_grid())
}

/// Collects lb-ratios of one scheduler over evaluated instances.
fn ratios(name: &str, results: &[InstanceResult]) -> Vec<f64> {
    results
        .iter()
        .map(|r| {
            r.ratio(name)
                .unwrap_or_else(|| panic!("unknown scheduler {name}"))
        })
        .collect()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

#[test]
fn openshop_is_closest_to_the_lower_bound() {
    // Paper: "often within 2%, and always within 10%". Our random draws
    // differ from the authors'; we hold open shop to a mean within 5%
    // and a worst case within the Theorem-3 guarantee.
    let results = claim_results();
    let os = ratios("openshop", &results);
    assert!(mean(&os) < 1.05, "open shop mean ratio {}", mean(&os));
    assert!(max(&os) <= 2.0 + 1e-9, "Theorem 3 violated: {}", max(&os));

    // And it is the best algorithm on aggregate.
    for other in ["baseline", "matching-max", "matching-min", "greedy"] {
        let r = ratios(other, &results);
        assert!(
            mean(&os) <= mean(&r) + 1e-9,
            "open shop ({}) lost to {other} ({})",
            mean(&os),
            mean(&r)
        );
    }
}

#[test]
fn matchings_and_greedy_sit_between_openshop_and_baseline() {
    // Paper bands: matchings within ~15% of lb, greedy within ~25%.
    let results = claim_results();
    let mm = mean(&ratios("matching-max", &results));
    let greedy = mean(&ratios("greedy", &results));
    let baseline = mean(&ratios("baseline", &results));
    assert!(mm < 1.20, "matching-max mean ratio {mm}");
    assert!(greedy < 1.30, "greedy mean ratio {greedy}");
    assert!(
        baseline > mm,
        "baseline ({baseline}) should trail matching ({mm})"
    );
}

#[test]
fn sweep_results_are_thread_count_invariant() {
    // The acceptance property of the parallel engine: the same grid run
    // serially and with several workers must produce bit-identical
    // per-instance results (coordinate-derived seeds, grid-order
    // reassembly).
    let grid = claim_grid();
    let serial = SweepRunner::serial().run(&grid);
    let threaded = SweepRunner::new(4).run(&grid);
    assert_eq!(serial, threaded);
}

#[test]
fn baseline_is_the_clear_loser_and_degrades_with_p() {
    // The baseline's mean ratio grows with P on the server workload —
    // the visual signature of Figure 12.
    let grid = SweepGrid {
        scenarios: vec![Scenario::Servers],
        p_values: vec![10, 50],
        trials: 4,
        cfg: GeneratorConfig::default(),
        seed_fn: |_, _, trial| trial,
    };
    let results = SweepRunner::default().run(&grid);
    let ratio_at = |p: usize| {
        let at_p: Vec<InstanceResult> =
            results.iter().filter(|r| r.point.p == p).cloned().collect();
        mean(&ratios("baseline", &at_p))
    };
    let r10 = ratio_at(10);
    let r50 = ratio_at(50);
    assert!(
        r50 > r10 + 0.15,
        "baseline ratio should grow with P: {r10} at P=10 vs {r50} at P=50"
    );
}

#[test]
fn theorem_2_bound_holds_and_is_tight() {
    // Bound on random instances.
    for scenario in Scenario::FIGURES {
        for seed in 0..5u64 {
            let m = scenario.instance(12, seed).matrix;
            let t = depgraph::baseline_step_ordered_completion(&m).as_ms();
            let bound = bounds::baseline_bound_factor(12) * m.lower_bound().as_ms();
            assert!(t <= bound + 1e-6);
        }
    }
    // Tightness on the paper's ε-instance.
    let m = bounds::theorem2_tightness_instance(1e-9);
    let ratio = depgraph::baseline_step_ordered_completion(&m).as_ms() / m.lower_bound().as_ms();
    assert!((ratio - 2.0).abs() < 1e-6);
}

#[test]
fn scheduling_cost_scales_as_documented() {
    // O(P³) algorithms must stay well under the O(P⁴) matching for the
    // same instance — a coarse complexity smoke test at P=50 (exact
    // wall-time scaling is measured by the Criterion benches).
    use std::time::Instant;
    let m = Scenario::Mixed.instance(50, 1).matrix;
    let t_open = {
        let start = Instant::now();
        let _ = OpenShop.schedule(&m);
        start.elapsed()
    };
    let t_match = {
        let start = Instant::now();
        let _ = MatchingScheduler::new(MatchingKind::Max).schedule(&m);
        start.elapsed()
    };
    // Both complete quickly; no strict ratio (machine noise), just sanity.
    assert!(t_open.as_millis() < 2_000);
    assert!(t_match.as_millis() < 10_000);
}

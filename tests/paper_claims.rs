//! The paper's §5 quantitative claims, verified end to end over random
//! GUSTO-guided instances. Absolute numbers cannot match a 1998 testbed;
//! these tests pin the *shape*: who wins, by what kind of factor, and
//! that the theoretical guarantees hold everywhere.

use adaptcomm::prelude::*;
use adaptcomm::scheduling::bounds;
use adaptcomm::scheduling::depgraph;

/// Collects lb-ratios of one scheduler over a sweep of instances.
fn ratios(name: &str, instances: &[CommMatrix]) -> Vec<f64> {
    let scheduler = all_schedulers()
        .into_iter()
        .find(|s| s.name() == name)
        .unwrap_or_else(|| panic!("unknown scheduler {name}"));
    instances
        .iter()
        .map(|m| scheduler.schedule(m).completion_time() / m.lower_bound())
        .collect()
}

fn instances() -> Vec<CommMatrix> {
    let mut out = Vec::new();
    for scenario in Scenario::FIGURES {
        for p in [10usize, 20, 35, 50] {
            for seed in 0..3u64 {
                out.push(scenario.instance(p, seed * 37 + p as u64).matrix);
            }
        }
    }
    out
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

#[test]
fn openshop_is_closest_to_the_lower_bound() {
    // Paper: "often within 2%, and always within 10%". Our random draws
    // differ from the authors'; we hold open shop to a mean within 5%
    // and a worst case within the Theorem-3 guarantee.
    let inst = instances();
    let os = ratios("openshop", &inst);
    assert!(mean(&os) < 1.05, "open shop mean ratio {}", mean(&os));
    assert!(max(&os) <= 2.0 + 1e-9, "Theorem 3 violated: {}", max(&os));

    // And it is the best algorithm on aggregate.
    for other in ["baseline", "matching-max", "matching-min", "greedy"] {
        let r = ratios(other, &inst);
        assert!(
            mean(&os) <= mean(&r) + 1e-9,
            "open shop ({}) lost to {other} ({})",
            mean(&os),
            mean(&r)
        );
    }
}

#[test]
fn matchings_and_greedy_sit_between_openshop_and_baseline() {
    // Paper bands: matchings within ~15% of lb, greedy within ~25%.
    let inst = instances();
    let mm = mean(&ratios("matching-max", &inst));
    let greedy = mean(&ratios("greedy", &inst));
    let baseline = mean(&ratios("baseline", &inst));
    assert!(mm < 1.20, "matching-max mean ratio {mm}");
    assert!(greedy < 1.30, "greedy mean ratio {greedy}");
    assert!(
        baseline > mm,
        "baseline ({baseline}) should trail matching ({mm})"
    );
}

#[test]
fn baseline_is_the_clear_loser_and_degrades_with_p() {
    // The baseline's mean ratio grows with P on the server workload —
    // the visual signature of Figure 12.
    let ratio_at = |p: usize| {
        let ms: Vec<CommMatrix> = (0..4)
            .map(|s| Scenario::Servers.instance(p, s).matrix)
            .collect();
        mean(&ratios("baseline", &ms))
    };
    let r10 = ratio_at(10);
    let r50 = ratio_at(50);
    assert!(
        r50 > r10 + 0.15,
        "baseline ratio should grow with P: {r10} at P=10 vs {r50} at P=50"
    );
}

#[test]
fn theorem_2_bound_holds_and_is_tight() {
    // Bound on random instances.
    for scenario in Scenario::FIGURES {
        for seed in 0..5u64 {
            let m = scenario.instance(12, seed).matrix;
            let t = depgraph::baseline_step_ordered_completion(&m).as_ms();
            let bound = bounds::baseline_bound_factor(12) * m.lower_bound().as_ms();
            assert!(t <= bound + 1e-6);
        }
    }
    // Tightness on the paper's ε-instance.
    let m = bounds::theorem2_tightness_instance(1e-9);
    let ratio = depgraph::baseline_step_ordered_completion(&m).as_ms() / m.lower_bound().as_ms();
    assert!((ratio - 2.0).abs() < 1e-6);
}

#[test]
fn scheduling_cost_scales_as_documented() {
    // O(P³) algorithms must stay well under the O(P⁴) matching for the
    // same instance — a coarse complexity smoke test at P=50 (exact
    // wall-time scaling is measured by the Criterion benches).
    use std::time::Instant;
    let m = Scenario::Mixed.instance(50, 1).matrix;
    let t_open = {
        let start = Instant::now();
        let _ = OpenShop.schedule(&m);
        start.elapsed()
    };
    let t_match = {
        let start = Instant::now();
        let _ = MatchingScheduler::new(MatchingKind::Max).schedule(&m);
        start.elapsed()
    };
    // Both complete quickly; no strict ratio (machine noise), just sanity.
    assert!(t_open.as_millis() < 2_000);
    assert!(t_match.as_millis() < 10_000);
}

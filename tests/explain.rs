//! Integration tests for the explain plane: the causal DAG must agree
//! with the simulator bit-for-bit, what-if projections must be sound
//! (monotone, zero off the critical path, and at least half-realized
//! under re-simulation), and capture diffing must report a clean run
//! as clean.

use adaptcomm::obs::causal::diff_captures;
use adaptcomm::prelude::*;
use adaptcomm::scheduling::analyze::{apply_speedup, dag_of};
use adaptcomm::scheduling::execution::execute_listed;
use adaptcomm::sim::run_static;

/// Property: on random GUSTO-derived matrices across every scenario and
/// every scheduler, the DAG's completion equals the analytic simulator's
/// bit-exactly, and the critical-path contributions telescope to it.
#[test]
fn critical_path_explains_completion_for_every_scheduler() {
    for scenario in Scenario::FIGURES {
        for p in [5, 12, 32] {
            for seed in [1, 7] {
                let inst = scenario.instance(p, seed);
                for scheduler in all_schedulers() {
                    let order = scheduler.send_order(&inst.matrix);
                    let schedule = execute_listed(&order, &inst.matrix);
                    let dag = dag_of(&schedule);
                    let label = format!(
                        "{} on {} P={p} seed={seed}",
                        scheduler.name(),
                        scenario.name()
                    );
                    assert_eq!(
                        dag.completion_ms(),
                        schedule.completion_time().as_ms(),
                        "DAG completion must be bit-exact: {label}"
                    );
                    let telescoped: f64 =
                        dag.critical_path().iter().map(|s| s.contribution_ms).sum();
                    assert_eq!(
                        telescoped,
                        schedule.completion_time().as_ms(),
                        "critical path must explain all of the makespan: {label}"
                    );
                    // Critical events carry zero slack; every slack is finite.
                    let slack = dag.slack();
                    assert!(slack.iter().all(|s| s.is_finite() && *s >= 0.0), "{label}");
                }
            }
        }
    }
}

/// Acceptance (P = 8): the explained critical path matches the
/// discrete-event simulator, and the top what-if intervention survives
/// re-simulation with at least half its predicted improvement.
#[test]
fn p8_acceptance_path_is_exact_and_top_what_if_is_realized() {
    let inst = Scenario::Mixed.instance(8, 4);
    let order = OpenShop.send_order(&inst.matrix);
    let schedule = execute_listed(&order, &inst.matrix);
    let dag = dag_of(&schedule);

    // Bit-exact against the analytic executor; within float noise of the
    // discrete-event simulator (they accumulate in different orders).
    assert_eq!(dag.completion_ms(), schedule.completion_time().as_ms());
    let sim = run_static(&order, &inst.network, &inst.sizes.to_rows());
    assert!(
        (dag.completion_ms() - sim.makespan.as_ms()).abs() < 1e-6,
        "DAG {} vs simulator {}",
        dag.completion_ms(),
        sim.makespan
    );

    // Top-ranked intervention: speed one link 2x, re-simulate for real.
    let top = dag.interventions(2.0, 1);
    assert!(
        !top.is_empty(),
        "a nonzero makespan must offer interventions"
    );
    let w = top[0];
    assert!(w.delta_ms > 0.0);
    let resim = execute_listed(&order, &apply_speedup(&inst.matrix, w.src, w.dst, 2.0));
    let realized = schedule.completion_time().as_ms() - resim.completion_time().as_ms();
    assert!(
        realized >= 0.5 * w.delta_ms - 1e-9,
        "link {}->{}: predicted {} ms, realized {realized} ms",
        w.src,
        w.dst,
        w.delta_ms
    );
}

/// What-if projections are monotone in the speedup factor and exactly
/// zero for links carrying no critical-path time.
#[test]
fn what_if_is_monotone_and_zero_off_the_critical_path() {
    let inst = Scenario::Mixed.instance(8, 4);
    let schedule = OpenShop.schedule(&inst.matrix);
    let dag = dag_of(&schedule);
    let blame = dag.blame();
    let hot = blame
        .links
        .first()
        .expect("nonempty run has a hottest link");

    let mut last = 0.0;
    for k in [1.5, 2.0, 4.0] {
        let w = dag.what_if(hot.src, hot.dst, k);
        assert!(
            w.delta_ms >= last - 1e-9,
            "delta must not shrink as the speedup grows: k={k}"
        );
        assert!(w.delta_ms >= 0.0 && w.predicted_ms <= dag.completion_ms() + 1e-9);
        last = w.delta_ms;
    }

    // A link with zero blame cannot shorten the run.
    let on_path: std::collections::HashSet<(usize, usize)> =
        blame.links.iter().map(|l| (l.src, l.dst)).collect();
    let off = dag
        .transfers()
        .iter()
        .map(|t| (t.src, t.dst))
        .find(|key| !on_path.contains(key))
        .expect("P=8 all-to-all has off-path links");
    let w = dag.what_if(off.0, off.1, 4.0);
    assert_eq!(w.delta_ms, 0.0, "off-path link {off:?} must project zero");
}

/// The committed capture fixtures — two captures of the same run — must
/// parse, analyze, and diff to zero regressions (the `obs-diff`
/// acceptance criterion).
#[test]
fn committed_captures_self_diff_to_zero() {
    let base = include_str!("data/explain_base.jsonl");
    let head = include_str!("data/explain_head.jsonl");

    let transfers = adaptcomm::obs::causal::transfers_from_text(base).unwrap();
    assert!(!transfers.is_empty(), "fixture must hold transfer spans");
    let dag = adaptcomm::obs::causal::CausalDag::new(transfers);
    assert!(dag.completion_ms() > 0.0);

    let diff = diff_captures(base, head).unwrap();
    assert!(
        diff.worst_regression().is_none(),
        "identical captures must not regress: {:?}",
        diff.worst_regression()
    );
    assert!(diff.render().contains("no regressions"));
}

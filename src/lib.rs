//! `adaptcomm` — adaptive communication scheduling for distributed
//! heterogeneous systems.
//!
//! A Rust reproduction of *Bhat, Prasanna & Raghavendra, "Adaptive
//! Communication Algorithms for Distributed Heterogeneous Systems"*
//! (HPDC 1998). This facade crate re-exports the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`obs`] | `adaptcomm-obs` | counters/histograms/spans with JSONL, Prometheus and Chrome-trace exporters |
//! | [`model`] | `adaptcomm-model` | cost model `T_ij + m/B_ij`, GUSTO data, topology, drift traces |
//! | [`lap`] | `adaptcomm-lap` | Jonker–Volgenant / Hungarian assignment solvers |
//! | [`directory`] | `adaptcomm-directory` | MDS-style directory service |
//! | [`scheduling`] | `adaptcomm-core` | the paper's total-exchange schedulers |
//! | [`sim`] | `adaptcomm-sim` | discrete-event execution, §6 model variants |
//! | [`runtime`] | `adaptcomm-runtime` | live execution: real threads, shaped channels / TCP, §6.4 adapt loop |
//! | [`chaos`] | `adaptcomm-chaos` | seeded fault injection: crashes, partitions, lying links, recovery SLOs |
//! | [`collectives`] | `adaptcomm-collectives` | broadcast/scatter/gather/reduce/all-to-some |
//! | [`staging`] | `adaptcomm-staging` | BADD-style deadline-driven data staging (§2, §6.4) |
//! | [`mapping`] | `adaptcomm-mapping` | MSHN task mapping: OLB/MET/MCT/min-min/max-min/sufferage (§2) |
//! | [`workloads`] | `adaptcomm-workloads` | the §5 evaluation scenarios |
//! | [`plansrv`] | `adaptcomm-plansrv` | scheduling-as-a-service: multi-tenant TCP plan server, fingerprint-keyed plan cache, §6 QoS admission |
//!
//! # Quick start
//!
//! ```
//! use adaptcomm::prelude::*;
//!
//! // Network state, as a directory service would report it.
//! let network = adaptcomm::model::gusto::gusto_params();
//! // Total exchange of 1 MB messages across the 5 GUSTO sites.
//! let matrix = CommMatrix::uniform_message(&network, Bytes::MB);
//! // Schedule it with the paper's best heuristic.
//! let schedule = OpenShop.schedule(&matrix);
//! assert!(schedule.validate().is_ok());
//! // Theorem 3: within twice the lower bound, in practice much closer.
//! assert!(schedule.lb_ratio() <= 2.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use adaptcomm_chaos as chaos;
pub use adaptcomm_collectives as collectives;
pub use adaptcomm_core as scheduling;
pub use adaptcomm_directory as directory;
pub use adaptcomm_lap as lap;
pub use adaptcomm_mapping as mapping;
pub use adaptcomm_model as model;
pub use adaptcomm_obs as obs;
pub use adaptcomm_plansrv as plansrv;
pub use adaptcomm_runtime as runtime;
pub use adaptcomm_sim as sim;
pub use adaptcomm_staging as staging;
pub use adaptcomm_workloads as workloads;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use adaptcomm_chaos::{run_chaos, ChaosPlan, ChaosReport};
    pub use adaptcomm_core::algorithms::{
        all_schedulers, Baseline, Greedy, MatchingKind, MatchingScheduler, OpenShop, Scheduler,
    };
    pub use adaptcomm_core::matrix::CommMatrix;
    pub use adaptcomm_core::schedule::{Schedule, ScheduledEvent, SendOrder};
    pub use adaptcomm_core::timing::TimingDiagram;
    pub use adaptcomm_directory::DirectoryService;
    pub use adaptcomm_model::units::{Bandwidth, Bytes, Millis};
    pub use adaptcomm_model::NetParams;
    pub use adaptcomm_runtime::{
        execute, execute_adaptive, execute_adaptive_monitored, AdaptSettings, BackendKind,
        CheckpointedRun, DetectorSettings, FrozenNetwork, ReplanTrigger, RunReport, RuntimeError,
        ShapedConfig,
    };
    pub use adaptcomm_workloads::{Scenario, SizeMatrix};
}
